//! Determinism and replay properties of the serving loop: a horizon is
//! bit-identical across worker-pool widths {1, 2, 8}, exactly
//! replayable from its seed + fault tape (full `ServingReport` equality,
//! per-epoch records and merged latency histogram included, plus obs
//! counter equality), and its SLA accounting is internally consistent.

use netsmith_obs::{MemoryRecorder, Obs};
use netsmith_pool::WorkerPool;
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig, RoutingTable, VcAllocation};
use netsmith_serve::{serve, LoadSpec, PolicyKind, ServingConfig, ServingInputs, TapeSpec};
use netsmith_sim::{ParallelMode, SimConfig};
use netsmith_topo::{expert, Layout, Topology};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn network(choice: u8) -> (Topology, RoutingTable, VcAllocation) {
    let layout = Layout::noi_4x5();
    let topo = match choice % 3 {
        0 => expert::folded_torus(&layout),
        1 => expert::kite_medium(&layout),
        _ => expert::butter_donut(&layout),
    };
    let table = mclb_route(&all_shortest_paths(&topo), &MclbConfig::default());
    let vcs = allocate_vcs(&table, 6, 11).unwrap();
    (topo, table, vcs)
}

fn policy(choice: u8) -> PolicyKind {
    match choice % 3 {
        0 => PolicyKind::AlwaysOn,
        1 => PolicyKind::LinkSleep {
            idle_threshold: 0.12,
        },
        _ => PolicyKind::Dvfs,
    }
}

fn config(seed: u64, policy_choice: u8, faults: f64, parallel: ParallelMode) -> ServingConfig {
    ServingConfig {
        epochs: 24,
        load: LoadSpec {
            period_epochs: 12,
            ..LoadSpec::default()
        },
        tape: TapeSpec {
            expected_faults: faults,
            seed: seed ^ 0xFA17,
        },
        policy: policy(policy_choice),
        sim: SimConfig {
            warmup_cycles: 80,
            measure_cycles: 300,
            drain_cycles: 150,
            parallel,
            ..SimConfig::default()
        },
        seed,
        ..ServingConfig::default()
    }
}

fn counters(recorder: &MemoryRecorder) -> BTreeMap<String, u64> {
    recorder.snapshot().counters
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A full serving horizon is bit-identical across worker counts
    /// {1, 2, 8} with the parallel arbitration path forced on, and
    /// exactly replayable: every run of the same seed + fault tape gives
    /// the same `ServingReport` (per-epoch records and merged latency
    /// histogram included) and the same obs counters.
    #[test]
    fn horizon_is_bit_identical_across_workers_and_replays(
        topo_choice in 0u8..3,
        policy_choice in 0u8..3,
        seed in 0u64..50_000,
        faults in 0f64..3.0,
    ) {
        let (topo, table, vcs) = network(topo_choice);
        let cfg = config(seed, policy_choice, faults, ParallelMode::Off);
        let baseline_recorder = MemoryRecorder::new();
        let expected = serve(
            &ServingInputs::new(&topo, &table, &vcs),
            &cfg,
            &Obs::to(baseline_recorder.clone()),
        );
        // Replay: same seed + tape, fresh recorder — everything equal.
        let replay_recorder = MemoryRecorder::new();
        let replay = serve(
            &ServingInputs::new(&topo, &table, &vcs),
            &cfg,
            &Obs::to(replay_recorder.clone()),
        );
        prop_assert_eq!(&replay, &expected);
        prop_assert_eq!(counters(&replay_recorder), counters(&baseline_recorder));
        // Worker-pool widths: forced-parallel runs reproduce the
        // sequential horizon bit-for-bit, counters included.
        let forced = config(seed, policy_choice, faults, ParallelMode::Force);
        for workers in [1usize, 2, 8] {
            let pool = WorkerPool::new(workers);
            let recorder = MemoryRecorder::new();
            let report = serve(
                &ServingInputs::new(&topo, &table, &vcs).on_pool(&pool),
                &forced,
                &Obs::to(recorder.clone()),
            );
            prop_assert_eq!(&report, &expected, "workers {}", workers);
            prop_assert_eq!(counters(&recorder), counters(&baseline_recorder), "workers {}", workers);
        }
    }

    /// SLA accounting is internally consistent: availability in [0, 1],
    /// epoch records sum to the horizon totals, the merged histogram
    /// counts every delivered packet, and downtime epochs deliver
    /// nothing.
    #[test]
    fn report_accounting_is_consistent(
        topo_choice in 0u8..3,
        policy_choice in 0u8..3,
        seed in 0u64..50_000,
        faults in 0f64..4.0,
    ) {
        let (topo, table, vcs) = network(topo_choice);
        let cfg = config(seed, policy_choice, faults, ParallelMode::Off);
        let report = serve(&ServingInputs::new(&topo, &table, &vcs), &cfg, &Obs::noop());
        prop_assert_eq!(report.records.len() as u64, cfg.epochs);
        prop_assert!(report.availability >= 0.0 && report.availability <= 1.0 + 1e-12);
        prop_assert_eq!(report.faults_injected, cfg.tape.expected_faults.round() as u64);
        prop_assert_eq!(
            report.records.iter().map(|r| r.delivered_flits).sum::<u64>(),
            report.delivered_flits
        );
        let energy_sum: f64 = report.records.iter().map(|r| r.energy_pj).sum();
        prop_assert!((energy_sum - report.energy_pj).abs() < 1e-6 * report.energy_pj.max(1.0));
        prop_assert_eq!(
            report.records.iter().filter(|r| !r.routable).count() as u64,
            report.downtime_epochs
        );
        for r in report.records.iter().filter(|r| !r.routable) {
            prop_assert_eq!(r.delivered_flits, 0);
            prop_assert_eq!(r.energy_pj, 0.0);
        }
        if report.delivered_flits > 0 {
            prop_assert!(report.energy_per_flit_pj > 0.0);
            prop_assert!(report.p99_latency_cycles >= report.p95_latency_cycles);
            prop_assert!(report.latency.count() > 0);
        }
    }
}

/// The headline serving property on a healthy fabric: the closed-loop
/// link-sleep policy spends less energy per delivered flit than
/// always-on across a diurnal horizon — and pays for it with no
/// availability loss.
#[test]
fn link_sleep_saves_energy_without_losing_availability() {
    let (topo, table, vcs) = network(0);
    let base = config(0xD1A2_2026, 0, 0.0, ParallelMode::Off);
    let mut results = Vec::new();
    for policy in PolicyKind::standard(0.12) {
        let cfg = ServingConfig {
            policy,
            ..base.clone()
        };
        results.push(serve(
            &ServingInputs::new(&topo, &table, &vcs),
            &cfg,
            &Obs::noop(),
        ));
    }
    let always_on = &results[0];
    let link_sleep = &results[1];
    assert!(link_sleep.gated_pair_epochs > 0, "nothing was ever gated");
    assert!(
        link_sleep.low_load_energy_per_flit_pj < always_on.low_load_energy_per_flit_pj,
        "link_sleep {} >= always_on {} pJ/flit at low load",
        link_sleep.low_load_energy_per_flit_pj,
        always_on.low_load_energy_per_flit_pj,
    );
    assert!(link_sleep.availability >= always_on.availability - 0.01);
}
