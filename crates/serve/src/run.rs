//! The epoch-driven serving loop.
//!
//! One call to [`serve`] plays a whole lifetime: the [`LoadProcess`]
//! schedules per-epoch offered loads and traffic mixes, the
//! [`FaultTape`] lands permanent faults at epoch boundaries (repaired
//! online by [`RerouteRepair`]; an irreparable fabric serves nothing and
//! the lost epochs count as downtime), and the configured online policy
//! re-decides its operating point each epoch from the *previous* epoch's
//! measured [`ActivityProfile`](netsmith_sim::ActivityProfile) — a
//! closed loop, not an oracle.  Every served epoch is one `run` segment
//! on the compiled simulator with the epoch probe enabled, and the
//! horizon's latency tail is the exact merge of every epoch's histogram.

use crate::load::{LoadProcess, LoadSpec};
use crate::report::{EpochRecord, ServingReport};
use crate::tape::{FaultTape, TapeSpec};
use netsmith_energy::{Dvfs, DvfsLevel, EnergyConfig, EnergyContext, GatedNetwork, LinkSleep};
use netsmith_fault::{Fault, FaultScenario, RepairConfig, RepairPolicy, RerouteRepair};
use netsmith_obs::{Attr, Obs};
use netsmith_pool::WorkerPool;
use netsmith_power::power_report_from_activity;
use netsmith_route::{RoutingTable, VcAllocation};
use netsmith_sim::{splitmix64, LatencyStats, NetworkSim, SimConfig, SimReport};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::{RouterId, Topology};
use netsmith_trace::Trace;
use serde::{Deserialize, Serialize};

/// Surviving-link utilization at which a LinkSleep horizon stops
/// re-gating and runs one epoch fully awake.  Gated links are invisible
/// to the next measurement, so without this valve the plan can only
/// ratchet tighter as the survivors absorb more traffic.
const WAKE_UTILIZATION: f64 = 0.25;

/// Delivered fraction below which LinkSleep treats the previous epoch as
/// congested and wakes the whole fabric regardless of utilization.
const WAKE_DELIVERED_FLOOR: f64 = 0.985;

/// The online policy a serving run re-decides every epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Every link powered, nominal clock — the baseline.
    AlwaysOn,
    /// Power-gate links that looked idle in the previous epoch
    /// (threshold on the busier direction's utilization); traffic is
    /// re-routed off the sleeping links, which stay connected and
    /// deadlock-free by construction.
    LinkSleep { idle_threshold: f64 },
    /// Clock/voltage scaling to the previous epoch's utilization.
    Dvfs,
}

impl PolicyKind {
    /// The CSV/report label; matches `fig12_energy`'s policy naming.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::AlwaysOn => "always_on",
            PolicyKind::LinkSleep { .. } => "link_sleep",
            PolicyKind::Dvfs => "dvfs",
        }
    }

    /// The three standard policies compared by `fig16_serving`.
    pub fn standard(idle_threshold: f64) -> Vec<PolicyKind> {
        vec![
            PolicyKind::AlwaysOn,
            PolicyKind::LinkSleep { idle_threshold },
            PolicyKind::Dvfs,
        ]
    }
}

/// Everything a serving horizon needs beyond the prepared network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Horizon length in epochs.
    pub epochs: u64,
    /// Load-process shape.
    pub load: LoadSpec,
    /// Lifetime fault-process shape.
    pub tape: TapeSpec,
    /// The online policy under test.
    pub policy: PolicyKind,
    /// Synthetic traffic pattern each epoch draws from.
    pub pattern: TrafficPattern,
    /// Per-epoch simulator segment: the warmup/measure/drain windows and
    /// the clock.  `seed`, `data_fraction` and `epoch_cycles` are
    /// overridden per epoch by the loop.
    pub sim: SimConfig,
    /// Technology constants for the energy accounting.
    pub energy: EnergyConfig,
    /// Budget/seed for online re-route repair.
    pub repair: RepairConfig,
    /// Epochs offered less than this count as "low-load" in the report.
    pub low_load_threshold: f64,
    /// Master seed: derives the load process, the per-epoch simulator
    /// seeds, and (together with the tape seed) the whole lifetime.
    pub seed: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            epochs: 256,
            load: LoadSpec::default(),
            tape: TapeSpec::default(),
            policy: PolicyKind::AlwaysOn,
            pattern: TrafficPattern::UniformRandom,
            sim: SimConfig {
                warmup_cycles: 100,
                measure_cycles: 400,
                drain_cycles: 200,
                ..SimConfig::default()
            },
            energy: EnergyConfig::default(),
            repair: RepairConfig::default(),
            low_load_threshold: 0.12,
            seed: 0x5E7E_2024,
        }
    }
}

/// The prepared network a horizon starts from, plus optional extras.
pub struct ServingInputs<'a> {
    /// The healthy topology (faults degrade a clone of it).
    pub topology: &'a Topology,
    /// Its routing table.
    pub routing: &'a RoutingTable,
    /// Its deadlock-free VC allocation.
    pub vcs: &'a VcAllocation,
    /// Optional trace whose demand shape modulates the load process.
    pub modulation: Option<&'a Trace>,
    /// Optional worker pool for the per-epoch simulations (the global
    /// pool when absent); results are bit-identical either way.
    pub pool: Option<&'a WorkerPool>,
}

impl<'a> ServingInputs<'a> {
    pub fn new(topology: &'a Topology, routing: &'a RoutingTable, vcs: &'a VcAllocation) -> Self {
        ServingInputs {
            topology,
            routing,
            vcs,
            modulation: None,
            pool: None,
        }
    }

    pub fn modulated_by(mut self, trace: &'a Trace) -> Self {
        self.modulation = Some(trace);
        self
    }

    pub fn on_pool(mut self, pool: &'a WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }
}

/// The fabric currently serving traffic: the healthy network at first,
/// then whatever the online repair last produced.
struct Fabric {
    topology: Topology,
    routing: RoutingTable,
    vcs: VcAllocation,
    failed: Vec<RouterId>,
}

/// Play one serving horizon and return its SLA report.
///
/// Deterministic: the report (including every per-epoch record and the
/// merged latency histogram) is a pure function of the inputs and the
/// config, for any worker pool width.
pub fn serve(inputs: &ServingInputs<'_>, config: &ServingConfig, obs: &Obs) -> ServingReport {
    let span = obs.span("serve.horizon");
    let process = LoadProcess::new(&config.load, config.epochs, config.seed, inputs.modulation);
    let tape = FaultTape::sample(inputs.topology, &config.tape, config.epochs);
    let epochs_counter = obs.counter("serve.epochs");
    let sleep = match config.policy {
        PolicyKind::LinkSleep { idle_threshold } => LinkSleep {
            idle_threshold,
            ..LinkSleep::default()
        },
        _ => LinkSleep::default(),
    };
    let dvfs = Dvfs::default();

    let mut fabric = Some(Fabric {
        topology: inputs.topology.clone(),
        routing: inputs.routing.clone(),
        vcs: inputs.vcs.clone(),
        failed: Vec::new(),
    });
    let mut accumulated_faults: Vec<Fault> = Vec::new();
    let mut prev_report: Option<SimReport> = None;
    let mut prev_gated: Vec<(RouterId, RouterId)> = Vec::new();

    let mut records = Vec::with_capacity(config.epochs as usize);
    let mut horizon_stats = LatencyStats::new();
    let mut availability_sum = 0.0;
    let mut repairs_ok = 0u64;
    let mut downtime_epochs = 0u64;
    let mut delivered_total = 0u64;
    let mut energy_total_pj = 0.0;
    let mut low_load_epochs = 0u64;
    let mut low_energy_pj = 0.0;
    let mut low_delivered = 0u64;
    let mut gated_pair_epochs = 0u64;

    for e in 0..config.epochs {
        epochs_counter.add(1);
        // -- Lifetime events: faults land at this boundary, repair runs
        // online on the cumulative degradation of the *healthy* network.
        let arrivals: Vec<Fault> = tape.arrivals_at(e).collect();
        let fault_arrived = !arrivals.is_empty();
        if fault_arrived {
            obs.add("serve.faults", arrivals.len() as u64);
            accumulated_faults.extend(arrivals);
            let scenario = FaultScenario::new(accumulated_faults.clone());
            let degraded = scenario.apply(inputs.topology);
            match RerouteRepair.repair(&degraded, &config.repair) {
                Ok(repaired) => {
                    repairs_ok += 1;
                    obs.add("serve.repairs_ok", 1);
                    fabric = Some(Fabric {
                        failed: repaired.failed_routers(),
                        topology: repaired.topology,
                        routing: repaired.routing,
                        vcs: repaired.vcs,
                    });
                }
                Err(_) => {
                    obs.add("serve.repairs_infeasible", 1);
                    fabric = None;
                }
            }
            // The fabric changed (or died): last epoch's activity no
            // longer describes it, so the closed loop restarts cold.
            prev_report = None;
            prev_gated.clear();
        }

        let el = process.epoch(e);
        let Some(fab) = fabric.as_ref() else {
            // Repair was infeasible: the epoch is downtime, not a panic.
            downtime_epochs += 1;
            obs.add("serve.downtime_epochs", 1);
            if el.offered < config.low_load_threshold {
                low_load_epochs += 1;
            }
            records.push(EpochRecord {
                epoch: e,
                offered: el.offered,
                data_fraction: el.data_fraction,
                routable: false,
                delivered_fraction: 0.0,
                delivered_flits: 0,
                total_mw: 0.0,
                energy_pj: 0.0,
                avg_link_utilization: 0.0,
                mean_latency_cycles: 0.0,
                p95_latency_cycles: 0.0,
                gated_pairs: 0,
                freq_scale: 0.0,
                fault_arrived,
            });
            continue;
        };

        // -- Online policy: re-decide from the previous epoch's measured
        // activity (closed loop — epoch 0 and post-repair epochs run at
        // the always-on operating point until a measurement exists).
        let mut epoch_cfg = config.sim.clone();
        epoch_cfg.seed = splitmix64(config.seed ^ (e + 1));
        epoch_cfg.data_fraction = el.data_fraction;

        let mut level = DvfsLevel::nominal();
        let mut gate_plan: Option<GatedNetwork> = None;
        match (config.policy, prev_report.as_ref()) {
            (PolicyKind::Dvfs, Some(prev)) => {
                level = dvfs.select_level(prev.activity.avg_link_utilization());
            }
            (PolicyKind::LinkSleep { .. }, Some(prev)) => {
                // Wake on pressure: links gated last epoch are absent
                // from `prev`'s activity, so a naive re-gate would hold
                // them asleep forever (the survivors absorb the traffic
                // and the sleepers always read idle).  When the surviving
                // links run warm — or delivery slipped — the whole fabric
                // wakes for one epoch, gets measured in full, and only
                // genuinely idle links go back to sleep.
                let pressured = prev.activity.avg_link_utilization() >= WAKE_UTILIZATION
                    || prev.delivered_fraction() < WAKE_DELIVERED_FLOOR;
                if !pressured {
                    let ctx = EnergyContext {
                        topology: &fab.topology,
                        routing: &fab.routing,
                        vcs: &fab.vcs,
                        sim: &epoch_cfg,
                        report: prev,
                        config: &config.energy,
                    };
                    if let Ok(plan) = sleep.gate(&ctx) {
                        if !plan.gated_pairs.is_empty() {
                            gate_plan = Some(plan);
                        }
                    }
                }
            }
            _ => {}
        }
        // Demand-preserving DVFS: the epoch covers a fixed slice of wall
        // time, so a downclocked epoch has proportionally fewer cycles
        // and a proportionally higher per-cycle injection rate — the
        // offered traffic per nanosecond is the same operating point the
        // nominal clock would serve, just on a slower fabric.
        if level.freq_scale < 1.0 {
            let scale = |c: u64| ((c as f64 * level.freq_scale).round() as u64).max(1);
            epoch_cfg.warmup_cycles = scale(epoch_cfg.warmup_cycles);
            epoch_cfg.measure_cycles = scale(epoch_cfg.measure_cycles);
            epoch_cfg.drain_cycles = scale(epoch_cfg.drain_cycles);
            epoch_cfg.clock_ghz *= level.freq_scale;
        }
        epoch_cfg.epoch_cycles = epoch_cfg.measure_cycles.max(1);
        let offered = (el.offered / level.freq_scale).min(1.0);
        let (topo, routing, vcs) = match gate_plan.as_ref() {
            Some(plan) => (&plan.topology, &plan.routing, &plan.vcs),
            None => (&fab.topology, &fab.routing, &fab.vcs),
        };

        // -- One epoch = one run segment on the compiled engine, with the
        // per-epoch probe enabled.
        let mut builder = NetworkSim::builder(topo, routing)
            .vcs(vcs)
            .pattern(config.pattern.clone())
            .failed_routers(&fab.failed)
            .config(epoch_cfg.clone());
        if let Some(pool) = inputs.pool {
            builder = builder.pool(pool);
        }
        let report = builder.compile().run(offered);

        // -- Energy accounting over the epoch's wall-clock duration.
        let gated: &[(RouterId, RouterId)] = gate_plan
            .as_ref()
            .map(|p| p.gated_pairs.as_slice())
            .unwrap_or(&[]);
        let power =
            power_report_from_activity(topo, &config.energy.power, &epoch_cfg, &report.activity);
        let mut static_mw = power.static_mw;
        let mut dynamic_mw = power.dynamic_mw;
        // Gated links leak a residual fraction even while asleep (they
        // are absent from the gated topology, so the baseline above does
        // not count them at all).
        let layout = fab.topology.layout();
        for &(i, j) in gated {
            static_mw += (layout.distance_mm(i, j) * config.energy.power.wire_leakage_mw_per_mm
                + config.energy.power.link_port_leakage_mw)
                * config.energy.gated_leakage_fraction;
        }
        // `epoch_cfg` already carries the DVFS-scaled clock and windows,
        // so the wall-clock slice is level-independent and the measured
        // flits/ns are the true downclocked throughput; what remains is
        // the voltage scaling — V² on switching energy, V on leakage.
        let epoch_ns = epoch_cfg.measure_cycles as f64 / epoch_cfg.clock_ghz;
        if config.policy == PolicyKind::Dvfs {
            dynamic_mw *= level.voltage_scale.powi(2);
            static_mw *= level.voltage_scale;
        }
        // Pairs woken at this boundary pay their wake energy, spread over
        // the epoch (1 pJ/ns = 1 mW).
        let woken = prev_gated.iter().filter(|p| !gated.contains(p)).count();
        dynamic_mw += woken as f64 * config.energy.wake_energy_pj / epoch_ns;
        let total_mw = static_mw + dynamic_mw;
        let energy_pj = total_mw * epoch_ns;

        let n = fab.topology.num_routers() as f64;
        let delivered = (report.accepted_flits_per_node_cycle * n * epoch_cfg.measure_cycles as f64)
            .round() as u64;

        horizon_stats.merge(&report.latency);
        availability_sum += report.delivered_fraction();
        delivered_total += delivered;
        energy_total_pj += energy_pj;
        gated_pair_epochs += gated.len() as u64;
        if el.offered < config.low_load_threshold {
            low_load_epochs += 1;
            low_energy_pj += energy_pj;
            low_delivered += delivered;
        }

        records.push(EpochRecord {
            epoch: e,
            offered: el.offered,
            data_fraction: el.data_fraction,
            routable: true,
            delivered_fraction: report.delivered_fraction(),
            delivered_flits: delivered,
            total_mw,
            energy_pj,
            avg_link_utilization: report.activity.avg_link_utilization(),
            mean_latency_cycles: report.avg_latency_cycles,
            p95_latency_cycles: report.p95_latency_cycles,
            gated_pairs: gated.len() as u32,
            freq_scale: level.freq_scale,
            fault_arrived,
        });
        prev_gated = gated.to_vec();
        prev_report = Some(report);
    }

    if obs.enabled() {
        emit_series(obs, config, &tape, &records);
    }
    span.close();

    let per_flit = |pj: f64, flits: u64| if flits == 0 { 0.0 } else { pj / flits as f64 };
    ServingReport {
        policy: config.policy.label().to_string(),
        epochs: config.epochs,
        faults_injected: tape.len() as u64,
        repairs_ok,
        downtime_epochs,
        availability: if config.epochs == 0 {
            0.0
        } else {
            availability_sum / config.epochs as f64
        },
        delivered_flits: delivered_total,
        energy_pj: energy_total_pj,
        energy_per_flit_pj: per_flit(energy_total_pj, delivered_total),
        low_load_epochs,
        low_load_energy_per_flit_pj: per_flit(low_energy_pj, low_delivered),
        p95_latency_cycles: horizon_stats.percentile(0.95),
        p99_latency_cycles: horizon_stats.percentile(0.99),
        mean_latency_cycles: horizon_stats.mean(),
        latency: horizon_stats,
        gated_pair_epochs,
        records,
    }
}

/// Publish the per-epoch series through the recorder.
fn emit_series(obs: &Obs, config: &ServingConfig, tape: &FaultTape, records: &[EpochRecord]) {
    let rows = records
        .iter()
        .map(|r| {
            vec![
                r.epoch as f64,
                r.offered,
                r.data_fraction,
                if r.routable { 1.0 } else { 0.0 },
                r.delivered_fraction,
                r.delivered_flits as f64,
                r.total_mw,
                r.energy_pj,
                r.avg_link_utilization,
                r.mean_latency_cycles,
                r.p95_latency_cycles,
                r.gated_pairs as f64,
                r.freq_scale,
                if r.fault_arrived { 1.0 } else { 0.0 },
            ]
        })
        .collect();
    obs.series(
        "serve.horizon",
        vec![
            Attr::new("policy", config.policy.label()),
            Attr::new("tape", tape.label()),
        ],
        &[
            "epoch",
            "offered",
            "data_fraction",
            "routable",
            "delivered_fraction",
            "delivered_flits",
            "total_mw",
            "energy_pj",
            "avg_link_utilization",
            "mean_latency_cycles",
            "p95_latency_cycles",
            "gated_pairs",
            "freq_scale",
            "fault_arrived",
        ],
        rows,
    );
}
