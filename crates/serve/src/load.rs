//! The seeded load process that drives a serving horizon.
//!
//! Per-epoch offered loads compose three multiplicative ingredients:
//!
//! * a **diurnal sinusoid** — the slow day/night swing every serving
//!   fleet sees (`base · (1 + amplitude·sin)`),
//! * **ON/OFF bursts** — a seeded two-state Markov chain that multiplies
//!   the load by `burst_factor` while ON, modelling flash crowds, and
//! * optional **trace-derived modulation** — the per-window demand shape
//!   of a [`netsmith_trace::Trace`], normalized to mean 1, so a measured
//!   workload's burstiness can be stamped onto the horizon.
//!
//! The whole horizon is precomputed at construction from the seed, so an
//! epoch's load is a pure function of `(spec, trace, horizon, seed)` —
//! the property the replay proptests pin down.

use netsmith_trace::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape parameters of the load process (everything but the horizon and
/// the seed, which the serving config owns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSpec {
    /// Mean offered load, in flits per node per cycle.
    pub base: f64,
    /// Diurnal swing as a fraction of `base` (0.8 ⇒ ±80%).
    pub amplitude: f64,
    /// Diurnal period in epochs.
    pub period_epochs: u64,
    /// Per-epoch probability of entering a burst while OFF.
    pub burst_rate: f64,
    /// Mean burst length in epochs (geometric exit).
    pub burst_mean_epochs: f64,
    /// Load multiplier while a burst is ON.
    pub burst_factor: f64,
    /// Data-packet fraction of the traffic mix at the diurnal trough.
    pub mix_low: f64,
    /// Data-packet fraction of the traffic mix at the diurnal peak.
    pub mix_high: f64,
    /// Offered load is clamped to `[min_load, max_load]` after all
    /// modulation, keeping every epoch inside the simulable range.
    pub min_load: f64,
    pub max_load: f64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            base: 0.22,
            amplitude: 0.75,
            period_epochs: 96,
            burst_rate: 0.04,
            burst_mean_epochs: 6.0,
            burst_factor: 1.8,
            mix_low: 0.35,
            mix_high: 0.65,
            min_load: 0.01,
            max_load: 0.85,
        }
    }
}

/// One epoch's operating point: the offered load and the traffic mix
/// (the data-packet fraction fed to the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochLoad {
    pub offered: f64,
    pub data_fraction: f64,
    /// Whether the ON/OFF chain was bursting this epoch.
    pub burst: bool,
}

/// The materialized load process: one [`EpochLoad`] per epoch of the
/// horizon, precomputed from the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProcess {
    epochs: Vec<EpochLoad>,
}

/// How many windows the modulation trace is folded into.  Epochs map to
/// windows round-robin, so a short trace still modulates a long horizon.
const MODULATION_WINDOWS: usize = 64;

/// Modulation factors are clamped to this band: a silent trace window
/// dims the epoch, it does not switch the fabric off.
const MODULATION_BAND: (f64, f64) = (0.25, 3.0);

impl LoadProcess {
    /// Materialize `horizon` epochs of load from the spec and seed,
    /// optionally modulated by a trace's per-window demand shape.
    pub fn new(spec: &LoadSpec, horizon: u64, seed: u64, modulation: Option<&Trace>) -> Self {
        let shape = modulation.map(trace_shape).unwrap_or_default();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB005_7ED0_DEAD_BEEF);
        let mut bursting = false;
        let exit_p = 1.0 / spec.burst_mean_epochs.max(1.0);
        let mut epochs = Vec::with_capacity(horizon as usize);
        for e in 0..horizon {
            // Markov burst chain: one uniform draw per epoch either way,
            // so the tape is independent of the branch taken.
            let draw: f64 = rng.gen();
            bursting = if bursting {
                draw >= exit_p
            } else {
                draw < spec.burst_rate
            };
            let phase = if spec.period_epochs == 0 {
                0.0
            } else {
                2.0 * std::f64::consts::PI * e as f64 / spec.period_epochs as f64
            };
            let diurnal = 1.0 + spec.amplitude * phase.sin();
            let mut offered = spec.base * diurnal.max(0.0);
            if bursting {
                offered *= spec.burst_factor;
            }
            if !shape.is_empty() {
                offered *= shape[e as usize % shape.len()];
            }
            let day = (phase.sin() + 1.0) / 2.0;
            epochs.push(EpochLoad {
                offered: offered.clamp(spec.min_load, spec.max_load),
                data_fraction: spec.mix_low + (spec.mix_high - spec.mix_low) * day,
                burst: bursting,
            });
        }
        LoadProcess { epochs }
    }

    /// The operating point of epoch `e` (pure lookup).
    pub fn epoch(&self, e: u64) -> EpochLoad {
        self.epochs[e as usize]
    }

    /// Number of materialized epochs.
    pub fn horizon(&self) -> u64 {
        self.epochs.len() as u64
    }
}

/// Fold a trace into [`MODULATION_WINDOWS`] per-window flit counts and
/// normalize them to mean 1 inside [`MODULATION_BAND`].
fn trace_shape(trace: &Trace) -> Vec<f64> {
    if trace.header.horizon == 0 || trace.messages.is_empty() {
        return Vec::new();
    }
    let mut flits = vec![0u64; MODULATION_WINDOWS];
    let span = trace.header.horizon;
    for m in &trace.messages {
        let w =
            (m.issue.min(span - 1) as u128 * MODULATION_WINDOWS as u128 / span as u128) as usize;
        flits[w] += m.flits as u64;
    }
    let mean = flits.iter().sum::<u64>() as f64 / MODULATION_WINDOWS as f64;
    if mean <= 0.0 {
        return Vec::new();
    }
    flits
        .iter()
        .map(|&f| (f as f64 / mean).clamp(MODULATION_BAND.0, MODULATION_BAND.1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_trace::TraceMessage;

    #[test]
    fn loads_stay_in_band_and_are_deterministic() {
        let spec = LoadSpec::default();
        let a = LoadProcess::new(&spec, 300, 42, None);
        let b = LoadProcess::new(&spec, 300, 42, None);
        assert_eq!(a, b);
        for e in 0..a.horizon() {
            let l = a.epoch(e);
            assert!(l.offered >= spec.min_load && l.offered <= spec.max_load);
            assert!(l.data_fraction >= spec.mix_low - 1e-12);
            assert!(l.data_fraction <= spec.mix_high + 1e-12);
        }
        let c = LoadProcess::new(&spec, 300, 43, None);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn diurnal_trough_is_lighter_than_peak() {
        let spec = LoadSpec {
            burst_rate: 0.0,
            ..LoadSpec::default()
        };
        let p = LoadProcess::new(&spec, spec.period_epochs, 7, None);
        let peak = p.epoch(spec.period_epochs / 4).offered;
        let trough = p.epoch(3 * spec.period_epochs / 4).offered;
        assert!(trough < peak / 2.0, "trough {trough} vs peak {peak}");
    }

    #[test]
    fn trace_modulation_reshapes_the_horizon() {
        // All traffic in the first tenth of the trace: early windows are
        // amplified, late windows dimmed to the clamp floor.
        let messages = (0..100)
            .map(|i| TraceMessage {
                src: 0,
                dst: 1,
                flits: 5,
                issue: i,
            })
            .collect();
        let trace = Trace::new(4, 1_000, messages);
        let spec = LoadSpec {
            amplitude: 0.0,
            burst_rate: 0.0,
            ..LoadSpec::default()
        };
        let flat = LoadProcess::new(&spec, 64, 9, None);
        let shaped = LoadProcess::new(&spec, 64, 9, Some(&trace));
        assert!(shaped.epoch(0).offered > flat.epoch(0).offered);
        assert!(shaped.epoch(40).offered < flat.epoch(40).offered);
    }
}
