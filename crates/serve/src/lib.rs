//! # netsmith-serve — lifetime serving simulation
//!
//! The energy ([`netsmith_energy`]) and resilience ([`netsmith_fault`])
//! subsystems evaluate stationary snapshots; this crate composes them
//! into a **long-horizon serving scenario**: a seeded time-varying
//! [`LoadProcess`] (diurnal sinusoid × ON/OFF bursts × optional
//! trace-derived modulation), a lifetime [`FaultTape`] of
//! Poisson-arriving permanent faults repaired online at epoch
//! boundaries, and an online [`PolicyKind`] (always-on / link-sleep /
//! DVFS) that re-decides its operating point every epoch from the
//! *previous* epoch's measured activity — a closed loop.
//!
//! [`serve`] plays the horizon — each epoch one `run` segment on the
//! compiled simulator — and returns a [`ServingReport`] with SLA-level
//! metrics: availability (routable × delivered fraction per epoch),
//! energy per delivered flit over the whole horizon, **horizon-exact**
//! p95/p99 latency (per-epoch [`netsmith_sim::LatencyStats`] histograms
//! merged, not averaged), downtime epochs, and a per-epoch series
//! published through [`netsmith_obs`].
//!
//! Everything is deterministic: the report is a pure function of the
//! prepared network, the config, and the seeds — bit-identical across
//! worker-pool widths and exactly replayable, which the proptests pin.
//!
//! ```
//! use netsmith_route::paths::all_shortest_paths;
//! use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
//! use netsmith_serve::{serve, PolicyKind, ServingConfig, ServingInputs};
//! use netsmith_topo::{expert, Layout};
//!
//! let layout = Layout::noi_4x5();
//! let topo = expert::folded_torus(&layout);
//! let table = mclb_route(&all_shortest_paths(&topo), &MclbConfig::default());
//! let vcs = allocate_vcs(&table, 6, 11).unwrap();
//! let config = ServingConfig {
//!     epochs: 16,
//!     policy: PolicyKind::LinkSleep { idle_threshold: 0.12 },
//!     ..ServingConfig::default()
//! };
//! let report = serve(
//!     &ServingInputs::new(&topo, &table, &vcs),
//!     &config,
//!     &netsmith_obs::Obs::noop(),
//! );
//! assert_eq!(report.epochs, 16);
//! assert!(report.availability > 0.0);
//! ```

pub mod load;
pub mod report;
pub mod run;
pub mod tape;

pub use load::{EpochLoad, LoadProcess, LoadSpec};
pub use report::{EpochRecord, ServingReport};
pub use run::{serve, PolicyKind, ServingConfig, ServingInputs};
pub use tape::{FaultEvent, FaultTape, TapeSpec};
