//! The lifetime fault tape: permanent faults arriving over the horizon.
//!
//! Arrivals follow a Poisson process *conditioned on its count*: a
//! Poisson process with `N` arrivals in a window places them as uniform
//! order statistics, so sampling exactly `round(expected_faults)`
//! uniform epochs is distribution-faithful while keeping the tape size
//! deterministic (a harness that promises "≥ 1 injected fault" must not
//! flake on an unlucky draw).  The faults themselves come from
//! [`netsmith_fault::FaultModel`], which guarantees distinct,
//! canonically-ordered link faults.

use netsmith_fault::{Fault, FaultModel};
use netsmith_topo::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape of the lifetime fault process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TapeSpec {
    /// Expected fault arrivals over the horizon; the tape carries exactly
    /// `round(expected_faults)` events.
    pub expected_faults: f64,
    /// Seed of both the fault sampler and the arrival clock.
    pub seed: u64,
}

impl Default for TapeSpec {
    fn default() -> Self {
        TapeSpec {
            expected_faults: 2.0,
            seed: 0x5EED_FA17,
        }
    }
}

/// One scheduled permanent fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Epoch boundary at which the fault lands (repair runs before the
    /// epoch is served).
    pub epoch: u64,
    pub fault: Fault,
}

/// The full schedule of lifetime faults, sorted by arrival epoch.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultTape {
    pub events: Vec<FaultEvent>,
}

impl FaultTape {
    /// Sample a tape for `topo` over `horizon` epochs.  Pure function of
    /// `(topo, spec, horizon)`: the same inputs always yield the same
    /// tape, which is what makes a serving run replayable.
    pub fn sample(topo: &Topology, spec: &TapeSpec, horizon: u64) -> FaultTape {
        let count = spec.expected_faults.round().max(0.0) as usize;
        if count == 0 || horizon < 2 {
            return FaultTape::default();
        }
        let faults: Vec<Fault> = FaultModel::links(1, spec.seed)
            .sample_scenarios(topo, count)
            .into_iter()
            .flat_map(|s| s.faults)
            .collect();
        // Arrival epochs: uniform order statistics in [1, horizon), drawn
        // from a clock RNG independent of the fault sampler.
        let mut clock = SmallRng::seed_from_u64(spec.seed ^ 0xC10C_4A11_0000_0001);
        let mut epochs: Vec<u64> = (0..faults.len())
            .map(|_| clock.gen_range(1..horizon))
            .collect();
        epochs.sort_unstable();
        let events = epochs
            .into_iter()
            .zip(faults)
            .map(|(epoch, fault)| FaultEvent { epoch, fault })
            .collect();
        FaultTape { events }
    }

    /// Faults landing exactly at epoch `e`.
    pub fn arrivals_at(&self, e: u64) -> impl Iterator<Item = Fault> + '_ {
        self.events
            .iter()
            .filter(move |ev| ev.epoch == e)
            .map(|ev| ev.fault)
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compact human-readable label, e.g. `"l3-7@41+l0-5@180"`.
    pub fn label(&self) -> String {
        if self.events.is_empty() {
            return "none".into();
        }
        self.events
            .iter()
            .map(|ev| match ev.fault {
                Fault::Link(a, b) => format!("l{a}-{b}@{}", ev.epoch),
                Fault::Router(r) => format!("r{r}@{}", ev.epoch),
            })
            .collect::<Vec<_>>()
            .join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_topo::{expert, Layout};

    #[test]
    fn tape_is_deterministic_sorted_and_sized() {
        let layout = Layout::noi_4x5();
        let topo = expert::folded_torus(&layout);
        let spec = TapeSpec {
            expected_faults: 3.0,
            seed: 99,
        };
        let a = FaultTape::sample(&topo, &spec, 400);
        let b = FaultTape::sample(&topo, &spec, 400);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.events.windows(2).all(|w| w[0].epoch <= w[1].epoch));
        assert!(a.events.iter().all(|ev| ev.epoch >= 1 && ev.epoch < 400));
        // Distinct faults (FaultModel guarantees scenario distinctness).
        let mut faults: Vec<Fault> = a.events.iter().map(|e| e.fault).collect();
        faults.sort();
        faults.dedup();
        assert_eq!(faults.len(), 3);
    }

    #[test]
    fn zero_expected_faults_is_an_empty_tape() {
        let layout = Layout::noi_4x5();
        let topo = expert::mesh(&layout);
        let spec = TapeSpec {
            expected_faults: 0.0,
            seed: 1,
        };
        assert!(FaultTape::sample(&topo, &spec, 100).is_empty());
    }
}
