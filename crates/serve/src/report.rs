//! SLA-level output of a serving horizon.

use netsmith_sim::LatencyStats;
use serde::{Deserialize, Serialize};

/// One served (or lost) epoch of the horizon, in arrival order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    pub epoch: u64,
    /// Offered load the load process scheduled for this epoch.
    pub offered: f64,
    /// Data-packet fraction of the epoch's traffic mix.
    pub data_fraction: f64,
    /// Whether the fabric could route at all this epoch (false = downtime).
    pub routable: bool,
    /// Delivered fraction of the epoch's injected traffic (0 in downtime).
    pub delivered_fraction: f64,
    /// Flits delivered inside the epoch's measurement window.
    pub delivered_flits: u64,
    /// Total power over the epoch, in mW (0 in downtime).
    pub total_mw: f64,
    /// Energy spent over the epoch, in pJ.
    pub energy_pj: f64,
    /// Mean utilization over the links that served the epoch — the
    /// signal the next epoch's policy decision reads (0 in downtime).
    pub avg_link_utilization: f64,
    /// Mean packet latency in cycles (0 when nothing was delivered).
    pub mean_latency_cycles: f64,
    /// In-epoch p95 latency in cycles.
    pub p95_latency_cycles: f64,
    /// Full-duplex pairs the online policy kept gated this epoch.
    pub gated_pairs: u32,
    /// DVFS frequency scale the epoch ran at (1.0 = nominal).
    pub freq_scale: f64,
    /// Whether a fault landed at this epoch's boundary.
    pub fault_arrived: bool,
}

/// Horizon-level SLA report of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Label of the online policy that ran the horizon.
    pub policy: String,
    /// Epochs in the horizon (served + downtime).
    pub epochs: u64,
    /// Faults injected by the tape over the horizon.
    pub faults_injected: u64,
    /// Faults whose online repair succeeded.
    pub repairs_ok: u64,
    /// Epochs lost because the surviving fabric could not be repaired.
    pub downtime_epochs: u64,
    /// Availability: mean over epochs of `routable × delivered_fraction`.
    pub availability: f64,
    /// Flits delivered across the whole horizon.
    pub delivered_flits: u64,
    /// Energy spent across the whole horizon, in pJ.
    pub energy_pj: f64,
    /// Horizon energy per delivered flit, in pJ.
    pub energy_per_flit_pj: f64,
    /// Epochs whose offered load sat below the low-load threshold.
    pub low_load_epochs: u64,
    /// Energy per delivered flit restricted to low-load epochs — the
    /// column the "LinkSleep saves energy at low load" assertion reads.
    pub low_load_energy_per_flit_pj: f64,
    /// The merged latency histogram of every served epoch; horizon-exact
    /// percentiles come from here, not from averaging per-epoch tails.
    pub latency: LatencyStats,
    /// Horizon-exact tail latencies, in cycles at the nominal clock.
    pub p95_latency_cycles: f64,
    pub p99_latency_cycles: f64,
    /// Mean latency over every delivered packet of the horizon, cycles.
    pub mean_latency_cycles: f64,
    /// Gated pair-epochs accumulated by LinkSleep (0 for other policies).
    pub gated_pair_epochs: u64,
    /// Per-epoch series, one record per epoch of the horizon.
    pub records: Vec<EpochRecord>,
}

impl ServingReport {
    /// Horizon-exact percentile in nanoseconds at the given clock.
    pub fn percentile_ns(&self, p: f64, clock_ghz: f64) -> f64 {
        self.latency.percentile(p) / clock_ghz
    }
}
