//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] names the *matrix* a figure evaluates — candidate
//! topologies (expert designs by name, or synthesis specs as objective
//! descriptions), workloads (a traffic pattern or a replayed trace ×
//! offered loads × simulator profile) and declarative assertions over the
//! emitted rows — as plain data.  Specs round-trip through JSON ([`ExperimentSpec::to_json_string`]
//! / [`ExperimentSpec::from_json_str`]) so a figure can be stored, diffed
//! and replayed; the figure-specific *measurement* (which columns a cell
//! produces) stays code, attached by the harness as a closure next to the
//! spec.

use crate::json::Json;
use netsmith::gen::Objective;
use netsmith::prelude::RoutingScheme;
use netsmith_sim::SimConfig;
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::{expert, Layout, LinkClass, Topology};
use netsmith_trace::{generate_named, Trace, TraceStats};
use serde::{Deserialize, Serialize};

/// The interposer layouts of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutSpec {
    /// 20 routers, 4x5 (the paper's primary configuration).
    Noi4x5,
    /// 30 routers, 6x5.
    Noi6x5,
    /// 48 routers, 8x6 (the scalability study).
    Noi8x6,
}

impl LayoutSpec {
    /// Materialize the layout.
    pub fn layout(&self) -> Layout {
        match self {
            LayoutSpec::Noi4x5 => Layout::noi_4x5(),
            LayoutSpec::Noi6x5 => Layout::noi_6x5(),
            LayoutSpec::Noi8x6 => Layout::noi_8x6(),
        }
    }

    /// Label used in CSV rows ("4x5").
    pub fn label(&self) -> &'static str {
        match self {
            LayoutSpec::Noi4x5 => "4x5",
            LayoutSpec::Noi6x5 => "6x5",
            LayoutSpec::Noi8x6 => "8x6",
        }
    }

    fn from_label(label: &str) -> Result<Self, String> {
        match label {
            "4x5" => Ok(LayoutSpec::Noi4x5),
            "6x5" => Ok(LayoutSpec::Noi6x5),
            "8x6" => Ok(LayoutSpec::Noi8x6),
            other => Err(format!("unknown layout {other:?}")),
        }
    }
}

/// A synthesis objective as declarative data; demand-weighted objectives
/// name a traffic pattern and derive the demand matrix from the cell's
/// layout at resolution time, keeping specs compact and layout-portable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObjectiveSpec {
    LatOp,
    SCOp,
    EnergyOp {
        edp_weight: f64,
    },
    /// [`Objective::fault_op_default`].
    FaultOp,
    /// Pattern-weighted latency (`NS-ShufOpt` style).
    PatternLatOp {
        pattern: TrafficPattern,
    },
    /// Trace-weighted latency: the flit-weighted demand matrix extracted
    /// from a replayed trace ([`TraceStats`]), so synthesis can target a
    /// recorded or generated workload instead of an analytic pattern.
    TraceLatOp {
        trace: TraceSpec,
    },
    /// An arbitrary non-negative weighted combination of the axis
    /// objectives above, folded term-by-term (shared terms collapse).
    Composite {
        parts: Vec<(f64, ObjectiveSpec)>,
    },
}

impl ObjectiveSpec {
    /// Resolve to a concrete [`Objective`] for a layout.
    ///
    /// Panics when a [`ObjectiveSpec::TraceLatOp`] trace cannot be
    /// materialized (missing file, router-count mismatch, unknown model) —
    /// the runner treats an unservable candidate as fatal, exactly like an
    /// unpreparable topology.
    pub fn resolve(&self, layout: &Layout) -> Objective {
        match self {
            ObjectiveSpec::LatOp => Objective::LatOp,
            ObjectiveSpec::SCOp => Objective::SCOp,
            ObjectiveSpec::EnergyOp { edp_weight } => Objective::EnergyOp {
                edp_weight: *edp_weight,
            },
            ObjectiveSpec::FaultOp => Objective::fault_op_default(),
            ObjectiveSpec::PatternLatOp { pattern } => {
                Objective::PatternLatOp(pattern.demand_matrix(layout))
            }
            ObjectiveSpec::TraceLatOp { trace } => {
                let resolved = trace
                    .resolve(layout.num_routers())
                    .unwrap_or_else(|e| panic!("trace objective cannot be resolved: {e}"));
                Objective::PatternLatOp(TraceStats::of(&resolved).demand_matrix().clone())
            }
            ObjectiveSpec::Composite { parts } => {
                // Fold by term so axes sharing a term (Hops appears in both
                // LatOp and FaultOp) collapse into one weighted entry.
                let mut terms: Vec<(f64, netsmith::gen::Term)> = Vec::new();
                for (scale, part) in parts {
                    for wt in part.resolve(layout).decomposition() {
                        match terms.iter_mut().find(|(_, t)| *t == wt.term) {
                            Some((w, _)) => *w += scale * wt.weight,
                            None => terms.push((scale * wt.weight, wt.term)),
                        }
                    }
                }
                Objective::composite(terms)
            }
        }
    }

    fn to_json(&self) -> Json {
        match self {
            ObjectiveSpec::LatOp => Json::Str("lat-op".into()),
            ObjectiveSpec::SCOp => Json::Str("sc-op".into()),
            ObjectiveSpec::FaultOp => Json::Str("fault-op".into()),
            ObjectiveSpec::EnergyOp { edp_weight } => Json::Obj(vec![
                ("objective".into(), Json::Str("energy-op".into())),
                ("edp_weight".into(), Json::Num(*edp_weight)),
            ]),
            ObjectiveSpec::PatternLatOp { pattern } => Json::Obj(vec![
                ("objective".into(), Json::Str("pattern-lat-op".into())),
                ("pattern".into(), pattern_to_json(pattern)),
            ]),
            ObjectiveSpec::TraceLatOp { trace } => Json::Obj(vec![
                ("objective".into(), Json::Str("trace-lat-op".into())),
                ("trace".into(), trace.to_json()),
            ]),
            ObjectiveSpec::Composite { parts } => Json::Obj(vec![
                ("objective".into(), Json::Str("composite".into())),
                (
                    "parts".into(),
                    Json::Arr(
                        parts
                            .iter()
                            .map(|(w, o)| Json::Arr(vec![Json::Num(*w), o.to_json()]))
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        if let Ok(tag) = json.as_str() {
            return match tag {
                "lat-op" => Ok(ObjectiveSpec::LatOp),
                "sc-op" => Ok(ObjectiveSpec::SCOp),
                "fault-op" => Ok(ObjectiveSpec::FaultOp),
                other => Err(format!("unknown objective {other:?}")),
            };
        }
        match json.require("objective")?.as_str()? {
            "energy-op" => Ok(ObjectiveSpec::EnergyOp {
                edp_weight: json.require("edp_weight")?.as_f64()?,
            }),
            "pattern-lat-op" => Ok(ObjectiveSpec::PatternLatOp {
                pattern: pattern_from_json(json.require("pattern")?)?,
            }),
            "trace-lat-op" => Ok(ObjectiveSpec::TraceLatOp {
                trace: TraceSpec::from_json(json.require("trace")?)?,
            }),
            "composite" => {
                let mut parts = Vec::new();
                for item in json.require("parts")?.as_arr()? {
                    let pair = item.as_arr()?;
                    if pair.len() != 2 {
                        return Err("composite part must be [weight, objective]".into());
                    }
                    parts.push((pair[0].as_f64()?, ObjectiveSpec::from_json(&pair[1])?));
                }
                Ok(ObjectiveSpec::Composite { parts })
            }
            other => Err(format!("unknown objective {other:?}")),
        }
    }
}

/// One candidate topology of a spec's line-up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CandidateSpec {
    /// A named expert design (routed with NDBT, like the paper).  When
    /// `only_class` is set the candidate is instantiated only under that
    /// link class (the 48-router study hand-picks which expert designs
    /// scale).
    Expert {
        name: String,
        only_class: Option<LinkClass>,
    },
    /// Every expert baseline registered for the cell's link class.
    ExpertBaselines,
    /// A topology synthesized by the NetSmith annealer (routed with MCLB),
    /// discovered at most once per suite run for a given
    /// (objective-decomposition, layout, class, seed, budget) key.
    Synth {
        objective: ObjectiveSpec,
        /// Force symmetric (paired) links — constraint C9.
        symmetric: bool,
    },
}

impl CandidateSpec {
    /// Shorthand for a named expert candidate available in every class.
    pub fn expert(name: &str) -> Self {
        CandidateSpec::Expert {
            name: name.into(),
            only_class: None,
        }
    }

    /// Shorthand for an expert candidate pinned to one class.
    pub fn expert_in(name: &str, class: LinkClass) -> Self {
        CandidateSpec::Expert {
            name: name.into(),
            only_class: Some(class),
        }
    }

    /// Shorthand for an asymmetric synthesis candidate.
    pub fn synth(objective: ObjectiveSpec) -> Self {
        CandidateSpec::Synth {
            objective,
            symmetric: false,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            CandidateSpec::Expert { name, only_class } => {
                let mut members = vec![("expert".into(), Json::Str(name.clone()))];
                if let Some(class) = only_class {
                    members.push(("only_class".into(), Json::Str(class.name())));
                }
                Json::Obj(members)
            }
            CandidateSpec::ExpertBaselines => Json::Str("expert-baselines".into()),
            CandidateSpec::Synth {
                objective,
                symmetric,
            } => {
                let mut members = vec![("synth".into(), objective.to_json())];
                if *symmetric {
                    members.push(("symmetric".into(), Json::Bool(true)));
                }
                Json::Obj(members)
            }
        }
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        if let Ok(tag) = json.as_str() {
            return match tag {
                "expert-baselines" => Ok(CandidateSpec::ExpertBaselines),
                other => Err(format!("unknown candidate {other:?}")),
            };
        }
        if let Some(name) = json.get("expert") {
            return Ok(CandidateSpec::Expert {
                name: name.as_str()?.into(),
                only_class: match json.get("only_class") {
                    Some(class) => Some(class_from_name(class.as_str()?)?),
                    None => None,
                },
            });
        }
        if let Some(objective) = json.get("synth") {
            return Ok(CandidateSpec::Synth {
                objective: ObjectiveSpec::from_json(objective)?,
                symmetric: match json.get("symmetric") {
                    Some(flag) => flag.as_bool()?,
                    None => false,
                },
            });
        }
        Err(format!("unknown candidate {json:?}"))
    }
}

/// Resolve an expert-topology name ("mesh", "folded-torus", …).
pub fn expert_by_name(name: &str, layout: &Layout) -> Result<Topology, String> {
    match name {
        "mesh" => Ok(expert::mesh(layout)),
        "folded-torus" => Ok(expert::folded_torus(layout)),
        "kite-small" => Ok(expert::kite_small(layout)),
        "kite-medium" => Ok(expert::kite_medium(layout)),
        "kite-large" => Ok(expert::kite_large(layout)),
        "butter-donut" => Ok(expert::butter_donut(layout)),
        "double-butterfly" => Ok(expert::double_butterfly(layout)),
        "lpbt-hops" => Ok(expert::lpbt_hops(layout)),
        "lpbt-power" => Ok(expert::lpbt_power(layout)),
        other => Err(format!("unknown expert topology {other:?}")),
    }
}

/// Which [`SimConfig`] a workload's measurements run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimProfile {
    /// [`SimConfig::for_class`] — the per-class clocks of the paper.
    ClassDefault,
    /// [`SimConfig::quick`] at the quick profile's default clock.
    Quick,
    /// [`SimConfig::quick`] with the cell's class clock (structurally quick
    /// but comparable across classes).
    QuickClassClock,
    /// Per-class config with explicit warmup/measure/drain windows (the CI
    /// smoke configuration of the energy study).
    ClassWithWindows {
        warmup: u64,
        measure: u64,
        drain: u64,
    },
}

impl SimProfile {
    /// Materialize the simulator configuration for a link class.
    pub fn resolve(&self, class: LinkClass) -> SimConfig {
        match self {
            SimProfile::ClassDefault => SimConfig::for_class(class),
            SimProfile::Quick => SimConfig::quick(),
            SimProfile::QuickClassClock => SimConfig {
                clock_ghz: class.clock_ghz(),
                ..SimConfig::quick()
            },
            SimProfile::ClassWithWindows {
                warmup,
                measure,
                drain,
            } => SimConfig {
                warmup_cycles: *warmup,
                measure_cycles: *measure,
                drain_cycles: *drain,
                ..SimConfig::for_class(class)
            },
        }
    }

    fn to_json(self) -> Json {
        match self {
            SimProfile::ClassDefault => Json::Str("class-default".into()),
            SimProfile::Quick => Json::Str("quick".into()),
            SimProfile::QuickClassClock => Json::Str("quick-class-clock".into()),
            SimProfile::ClassWithWindows {
                warmup,
                measure,
                drain,
            } => Json::Obj(vec![
                ("warmup".into(), Json::Num(warmup as f64)),
                ("measure".into(), Json::Num(measure as f64)),
                ("drain".into(), Json::Num(drain as f64)),
            ]),
        }
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        if let Ok(tag) = json.as_str() {
            return match tag {
                "class-default" => Ok(SimProfile::ClassDefault),
                "quick" => Ok(SimProfile::Quick),
                "quick-class-clock" => Ok(SimProfile::QuickClassClock),
                other => Err(format!("unknown sim profile {other:?}")),
            };
        }
        Ok(SimProfile::ClassWithWindows {
            warmup: json.require("warmup")?.as_u64()?,
            measure: json.require("measure")?.as_u64()?,
            drain: json.require("drain")?.as_u64()?,
        })
    }
}

/// Where a trace workload's messages come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceSpec {
    /// A trace file on disk: the `netsmith-trace` binary format, or the
    /// JSON encoding when the path ends in `.json`.
    File { path: String },
    /// A named generator model ([`netsmith_trace::TraceModel::by_name`]),
    /// materialized for the cell's router count at resolution time so one
    /// spec serves every layout.
    Generator {
        model: String,
        horizon: u64,
        seed: u64,
    },
}

impl TraceSpec {
    /// Shorthand for a generator-backed trace.
    pub fn generator(model: &str, horizon: u64, seed: u64) -> Self {
        TraceSpec::Generator {
            model: model.into(),
            horizon,
            seed,
        }
    }

    /// Label printed in rows ("trace:onoff-hotspot", "trace:parsec_x264").
    pub fn label(&self) -> String {
        match self {
            TraceSpec::File { path } => {
                let stem = std::path::Path::new(path)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.clone());
                format!("trace:{stem}")
            }
            TraceSpec::Generator { model, .. } => format!("trace:{model}"),
        }
    }

    /// Materialize the trace for a network of `routers` routers.  File
    /// traces must match the router count exactly; generator traces are
    /// produced for it.
    pub fn resolve(&self, routers: usize) -> Result<Trace, String> {
        let trace = match self {
            TraceSpec::File { path } => {
                let bytes = std::fs::read(path).map_err(|e| format!("trace file {path:?}: {e}"))?;
                let trace = if path.ends_with(".json") {
                    Trace::from_json_str(
                        std::str::from_utf8(&bytes)
                            .map_err(|e| format!("trace file {path:?}: {e}"))?,
                    )
                } else {
                    Trace::read_binary(&mut bytes.as_slice())
                }
                .map_err(|e| format!("trace file {path:?}: {e}"))?;
                if trace.header.routers as usize != routers {
                    return Err(format!(
                        "trace file {path:?} has {} routers, cell needs {routers}",
                        trace.header.routers
                    ));
                }
                trace
            }
            TraceSpec::Generator {
                model,
                horizon,
                seed,
            } => generate_named(model, routers as u32, *horizon, *seed)
                .ok_or_else(|| format!("unknown trace model {model:?}"))?,
        };
        trace.validate().map_err(|e| format!("trace: {e}"))?;
        Ok(trace)
    }

    fn to_json(&self) -> Json {
        match self {
            TraceSpec::File { path } => Json::Obj(vec![("file".into(), Json::Str(path.clone()))]),
            TraceSpec::Generator {
                model,
                horizon,
                seed,
            } => Json::Obj(vec![
                ("generator".into(), Json::Str(model.clone())),
                ("horizon".into(), Json::Num(*horizon as f64)),
                ("seed".into(), Json::Num(*seed as f64)),
            ]),
        }
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        if let Some(path) = json.get("file") {
            return Ok(TraceSpec::File {
                path: path.as_str()?.into(),
            });
        }
        if let Some(model) = json.get("generator") {
            return Ok(TraceSpec::Generator {
                model: model.as_str()?.into(),
                horizon: json.require("horizon")?.as_u64()?,
                seed: json.require("seed")?.as_u64()?,
            });
        }
        Err(format!("unknown trace spec {json:?}"))
    }
}

/// A lifetime-serving workload: the knobs `netsmith-serve` needs to play
/// a long horizon — the serving analogue of a load sweep.  Kept as plain
/// numbers so the spec layer stays independent of the serve crate; the
/// measuring figure assembles the full `ServingConfig` from these plus
/// the cell's sim profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSpec {
    /// Horizon length in epochs.
    pub epochs: u64,
    /// Diurnal period of the load process, in epochs.
    pub period_epochs: u64,
    /// Expected permanent faults over the horizon.
    pub expected_faults: f64,
    /// Offered load below which an epoch counts as low-load.
    pub low_load_threshold: f64,
    /// Master serving seed (load process + per-epoch simulator seeds).
    pub seed: u64,
    /// Fault-tape seed.
    pub tape_seed: u64,
}

impl ServingSpec {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("epochs".into(), Json::Num(self.epochs as f64)),
            ("period_epochs".into(), Json::Num(self.period_epochs as f64)),
            ("expected_faults".into(), Json::Num(self.expected_faults)),
            (
                "low_load_threshold".into(),
                Json::Num(self.low_load_threshold),
            ),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("tape_seed".into(), Json::Num(self.tape_seed as f64)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        Ok(ServingSpec {
            epochs: json.require("epochs")?.as_u64()?,
            period_epochs: json.require("period_epochs")?.as_u64()?,
            expected_faults: json.require("expected_faults")?.as_f64()?,
            low_load_threshold: json.require("low_load_threshold")?.as_f64()?,
            seed: json.require("seed")?.as_u64()?,
            tape_seed: json.require("tape_seed")?.as_u64()?,
        })
    }
}

/// What a workload injects: a synthetic pattern sampled per cycle, a
/// trace replayed deterministically (stretched to the offered load), or
/// a lifetime serving horizon played by `netsmith-serve`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSource {
    Pattern(TrafficPattern),
    Trace(TraceSpec),
    Serving(ServingSpec),
}

/// A workload cell: traffic source × offered loads × simulator profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Label printed in rows; defaults to the source's own name.
    pub label: Option<String>,
    pub source: WorkloadSource,
    /// Offered loads in flits/node/cycle.
    pub loads: Vec<f64>,
    pub sim: SimProfile,
}

impl WorkloadSpec {
    /// A pattern-driven workload over `loads` with a sim profile.
    pub fn new(pattern: TrafficPattern, loads: Vec<f64>, sim: SimProfile) -> Self {
        WorkloadSpec {
            label: None,
            source: WorkloadSource::Pattern(pattern),
            loads,
            sim,
        }
    }

    /// A trace-driven workload over `loads` with a sim profile.
    pub fn trace(trace: TraceSpec, loads: Vec<f64>, sim: SimProfile) -> Self {
        WorkloadSpec {
            label: None,
            source: WorkloadSource::Trace(trace),
            loads,
            sim,
        }
    }

    /// A lifetime-serving workload.  The load schedule comes from the
    /// serving horizon's own load process, so `loads` stays empty.
    pub fn serving(spec: ServingSpec, sim: SimProfile) -> Self {
        WorkloadSpec {
            label: None,
            source: WorkloadSource::Serving(spec),
            loads: Vec::new(),
            sim,
        }
    }

    /// Attach a row label.
    pub fn labeled(mut self, label: &str) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The traffic pattern of a pattern-driven workload.  Panics for
    /// trace-driven cells — figures that declare only pattern workloads
    /// use this accessor; trace-aware measurements match on
    /// [`WorkloadSpec::source`] instead.
    pub fn pattern(&self) -> &TrafficPattern {
        match &self.source {
            WorkloadSource::Pattern(pattern) => pattern,
            WorkloadSource::Trace(trace) => {
                panic!(
                    "workload {} is trace-driven, not pattern-driven",
                    trace.label()
                )
            }
            WorkloadSource::Serving(_) => {
                panic!("workload is serving-driven, not pattern-driven")
            }
        }
    }

    /// The trace spec of a trace-driven workload, if any.
    pub fn trace_spec(&self) -> Option<&TraceSpec> {
        match &self.source {
            WorkloadSource::Trace(trace) => Some(trace),
            _ => None,
        }
    }

    /// The serving spec of a serving-driven workload, if any.
    pub fn serving_spec(&self) -> Option<&ServingSpec> {
        match &self.source {
            WorkloadSource::Serving(spec) => Some(spec),
            _ => None,
        }
    }

    /// The label printed in rows.
    pub fn name(&self) -> String {
        self.label.clone().unwrap_or_else(|| match &self.source {
            WorkloadSource::Pattern(pattern) => pattern.name(),
            WorkloadSource::Trace(trace) => trace.label(),
            WorkloadSource::Serving(spec) => format!("serving{}", spec.epochs),
        })
    }

    fn to_json(&self) -> Json {
        let mut members = Vec::new();
        if let Some(label) = &self.label {
            members.push(("label".into(), Json::Str(label.clone())));
        }
        match &self.source {
            WorkloadSource::Pattern(pattern) => {
                members.push(("pattern".into(), pattern_to_json(pattern)));
            }
            WorkloadSource::Trace(trace) => {
                members.push(("trace".into(), trace.to_json()));
            }
            WorkloadSource::Serving(spec) => {
                members.push(("serving".into(), spec.to_json()));
            }
        }
        members.push((
            "loads".into(),
            Json::Arr(self.loads.iter().map(|&l| Json::Num(l)).collect()),
        ));
        members.push(("sim".into(), self.sim.to_json()));
        Json::Obj(members)
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let source = match (json.get("pattern"), json.get("trace"), json.get("serving")) {
            (Some(pattern), None, None) => WorkloadSource::Pattern(pattern_from_json(pattern)?),
            (None, Some(trace), None) => WorkloadSource::Trace(TraceSpec::from_json(trace)?),
            (None, None, Some(spec)) => WorkloadSource::Serving(ServingSpec::from_json(spec)?),
            _ => {
                return Err(
                    "workload needs exactly one of \"pattern\", \"trace\" or \"serving\"".into(),
                )
            }
        };
        Ok(WorkloadSpec {
            label: match json.get("label") {
                Some(label) => Some(label.as_str()?.into()),
                None => None,
            },
            source,
            loads: json
                .require("loads")?
                .as_arr()?
                .iter()
                .map(|l| l.as_f64())
                .collect::<Result<_, _>>()?,
            sim: SimProfile::from_json(json.require("sim")?)?,
        })
    }
}

/// A declarative invariant over the emitted rows, checked by the runner
/// after every cell has completed (figure-specific invariants that need
/// code stay in the harness's `check` hook).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Assertion {
    /// At least `count` rows were emitted.
    MinRows { count: usize },
    /// Every value in `column` parses as a float strictly greater than 0.
    ColumnPositive { column: String },
    /// Every value in `column` is the literal `true`.
    ColumnAllTrue { column: String },
    /// Within every group keyed by `keys`, the `column` value of the row
    /// whose `pivot` column starts with `lesser` is strictly below the one
    /// whose `pivot` starts with `greater`.  Rows failing any
    /// `(column, value)` filter are ignored.
    GroupedLess {
        keys: Vec<String>,
        pivot: String,
        lesser: String,
        greater: String,
        column: String,
        filters: Vec<(String, String)>,
    },
}

impl Assertion {
    fn to_json(&self) -> Json {
        match self {
            Assertion::MinRows { count } => {
                Json::Obj(vec![("min_rows".into(), Json::Num(*count as f64))])
            }
            Assertion::ColumnPositive { column } => {
                Json::Obj(vec![("column_positive".into(), Json::Str(column.clone()))])
            }
            Assertion::ColumnAllTrue { column } => {
                Json::Obj(vec![("column_all_true".into(), Json::Str(column.clone()))])
            }
            Assertion::GroupedLess {
                keys,
                pivot,
                lesser,
                greater,
                column,
                filters,
            } => Json::Obj(vec![(
                "grouped_less".into(),
                Json::Obj(vec![
                    (
                        "keys".into(),
                        Json::Arr(keys.iter().map(|k| Json::Str(k.clone())).collect()),
                    ),
                    ("pivot".into(), Json::Str(pivot.clone())),
                    ("lesser".into(), Json::Str(lesser.clone())),
                    ("greater".into(), Json::Str(greater.clone())),
                    ("column".into(), Json::Str(column.clone())),
                    (
                        "filters".into(),
                        Json::Arr(
                            filters
                                .iter()
                                .map(|(c, v)| {
                                    Json::Arr(vec![Json::Str(c.clone()), Json::Str(v.clone())])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            )]),
        }
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        if let Some(count) = json.get("min_rows") {
            return Ok(Assertion::MinRows {
                count: count.as_usize()?,
            });
        }
        if let Some(column) = json.get("column_positive") {
            return Ok(Assertion::ColumnPositive {
                column: column.as_str()?.into(),
            });
        }
        if let Some(column) = json.get("column_all_true") {
            return Ok(Assertion::ColumnAllTrue {
                column: column.as_str()?.into(),
            });
        }
        if let Some(body) = json.get("grouped_less") {
            let strings = |key: &str| -> Result<Vec<String>, String> {
                body.require(key)?
                    .as_arr()?
                    .iter()
                    .map(|s| s.as_str().map(String::from))
                    .collect()
            };
            let mut filters = Vec::new();
            for item in body.require("filters")?.as_arr()? {
                let pair = item.as_arr()?;
                if pair.len() != 2 {
                    return Err("filter must be [column, value]".into());
                }
                filters.push((pair[0].as_str()?.into(), pair[1].as_str()?.into()));
            }
            return Ok(Assertion::GroupedLess {
                keys: strings("keys")?,
                pivot: body.require("pivot")?.as_str()?.into(),
                lesser: body.require("lesser")?.as_str()?.into(),
                greater: body.require("greater")?.as_str()?.into(),
                column: body.require("column")?.as_str()?.into(),
                filters,
            });
        }
        Err(format!("unknown assertion {json:?}"))
    }
}

/// A complete experiment matrix: the declarative half of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Figure name ("fig06_synthetic").
    pub name: String,
    pub layouts: Vec<LayoutSpec>,
    pub classes: Vec<LinkClass>,
    pub candidates: Vec<CandidateSpec>,
    /// When set, every candidate is evaluated once per scheme in the list
    /// instead of its default scheme (the routing-isolation study).
    pub scheme_override: Option<Vec<RoutingScheme>>,
    /// Workload cells; an empty list runs one analytic cell per candidate.
    pub workloads: Vec<WorkloadSpec>,
    pub assertions: Vec<Assertion>,
}

impl ExperimentSpec {
    /// A spec with no workloads or assertions for `name`.
    pub fn new(name: &str) -> Self {
        ExperimentSpec {
            name: name.into(),
            layouts: vec![LayoutSpec::Noi4x5],
            classes: LinkClass::STANDARD.to_vec(),
            candidates: Vec::new(),
            scheme_override: None,
            workloads: Vec::new(),
            assertions: Vec::new(),
        }
    }

    /// Encode as a JSON document.
    pub fn to_json_string(&self) -> String {
        let mut members = vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "layouts".into(),
                Json::Arr(
                    self.layouts
                        .iter()
                        .map(|l| Json::Str(l.label().into()))
                        .collect(),
                ),
            ),
            (
                "classes".into(),
                Json::Arr(self.classes.iter().map(|c| Json::Str(c.name())).collect()),
            ),
            (
                "candidates".into(),
                Json::Arr(self.candidates.iter().map(|c| c.to_json()).collect()),
            ),
        ];
        if let Some(schemes) = &self.scheme_override {
            members.push((
                "scheme_override".into(),
                Json::Arr(
                    schemes
                        .iter()
                        .map(|s| Json::Str(s.label().into()))
                        .collect(),
                ),
            ));
        }
        members.push((
            "workloads".into(),
            Json::Arr(self.workloads.iter().map(|w| w.to_json()).collect()),
        ));
        members.push((
            "assertions".into(),
            Json::Arr(self.assertions.iter().map(|a| a.to_json()).collect()),
        ));
        Json::Obj(members).to_string()
    }

    /// Decode a JSON document produced by [`ExperimentSpec::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let json = Json::parse(text)?;
        let mut layouts = Vec::new();
        for l in json.require("layouts")?.as_arr()? {
            layouts.push(LayoutSpec::from_label(l.as_str()?)?);
        }
        let mut classes = Vec::new();
        for c in json.require("classes")?.as_arr()? {
            classes.push(class_from_name(c.as_str()?)?);
        }
        let mut candidates = Vec::new();
        for c in json.require("candidates")?.as_arr()? {
            candidates.push(CandidateSpec::from_json(c)?);
        }
        let scheme_override = match json.get("scheme_override") {
            None => None,
            Some(schemes) => {
                let mut out = Vec::new();
                for s in schemes.as_arr()? {
                    out.push(match s.as_str()? {
                        "MCLB" => RoutingScheme::Mclb,
                        "NDBT" => RoutingScheme::Ndbt,
                        other => return Err(format!("unknown scheme {other:?}")),
                    });
                }
                Some(out)
            }
        };
        let mut workloads = Vec::new();
        for w in json.require("workloads")?.as_arr()? {
            workloads.push(WorkloadSpec::from_json(w)?);
        }
        let mut assertions = Vec::new();
        for a in json.require("assertions")?.as_arr()? {
            assertions.push(Assertion::from_json(a)?);
        }
        Ok(ExperimentSpec {
            name: json.require("name")?.as_str()?.into(),
            layouts,
            classes,
            candidates,
            scheme_override,
            workloads,
            assertions,
        })
    }
}

fn class_from_name(name: &str) -> Result<LinkClass, String> {
    match name {
        "small" => Ok(LinkClass::Small),
        "medium" => Ok(LinkClass::Medium),
        "large" => Ok(LinkClass::Large),
        other => Err(format!("unknown link class {other:?}")),
    }
}

fn pattern_to_json(pattern: &TrafficPattern) -> Json {
    match pattern {
        TrafficPattern::UniformRandom => Json::Str("uniform_random".into()),
        TrafficPattern::Shuffle => Json::Str("shuffle".into()),
        TrafficPattern::Transpose => Json::Str("transpose".into()),
        TrafficPattern::Memory => Json::Str("memory".into()),
        TrafficPattern::Coherence => Json::Str("coherence".into()),
        TrafficPattern::BitComplement => Json::Str("bit_complement".into()),
        TrafficPattern::Tornado => Json::Str("tornado".into()),
        TrafficPattern::Hotspot { targets, fraction } => Json::Obj(vec![
            (
                "hotspot".into(),
                Json::Arr(targets.iter().map(|&t| Json::Num(t as f64)).collect()),
            ),
            ("fraction".into(), Json::Num(*fraction)),
        ]),
    }
}

fn pattern_from_json(json: &Json) -> Result<TrafficPattern, String> {
    if let Ok(tag) = json.as_str() {
        return match tag {
            "uniform_random" => Ok(TrafficPattern::UniformRandom),
            "shuffle" => Ok(TrafficPattern::Shuffle),
            "transpose" => Ok(TrafficPattern::Transpose),
            "memory" => Ok(TrafficPattern::Memory),
            "coherence" => Ok(TrafficPattern::Coherence),
            "bit_complement" => Ok(TrafficPattern::BitComplement),
            "tornado" => Ok(TrafficPattern::Tornado),
            other => Err(format!("unknown traffic pattern {other:?}")),
        };
    }
    Ok(TrafficPattern::Hotspot {
        targets: json
            .require("hotspot")?
            .as_arr()?
            .iter()
            .map(|t| t.as_usize())
            .collect::<Result<_, _>>()?,
        fraction: json.require("fraction")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "fig_test".into(),
            layouts: vec![LayoutSpec::Noi4x5, LayoutSpec::Noi8x6],
            classes: vec![LinkClass::Medium, LinkClass::Large],
            candidates: vec![
                CandidateSpec::ExpertBaselines,
                CandidateSpec::expert_in("mesh", LinkClass::Small),
                CandidateSpec::synth(ObjectiveSpec::LatOp),
                CandidateSpec::Synth {
                    objective: ObjectiveSpec::Composite {
                        parts: vec![
                            (1.0, ObjectiveSpec::LatOp),
                            (0.25, ObjectiveSpec::EnergyOp { edp_weight: 5.0 }),
                        ],
                    },
                    symmetric: true,
                },
                CandidateSpec::synth(ObjectiveSpec::PatternLatOp {
                    pattern: TrafficPattern::Shuffle,
                }),
                CandidateSpec::synth(ObjectiveSpec::TraceLatOp {
                    trace: TraceSpec::generator("onoff-hotspot", 4_096, 11),
                }),
            ],
            scheme_override: Some(vec![RoutingScheme::Ndbt, RoutingScheme::Mclb]),
            workloads: vec![
                WorkloadSpec::new(
                    TrafficPattern::UniformRandom,
                    vec![0.05, 0.3],
                    SimProfile::QuickClassClock,
                )
                .labeled("coherence"),
                WorkloadSpec::new(
                    TrafficPattern::Hotspot {
                        targets: vec![2, 17],
                        fraction: 0.6,
                    },
                    vec![0.02],
                    SimProfile::ClassWithWindows {
                        warmup: 500,
                        measure: 3_000,
                        drain: 1_500,
                    },
                ),
                WorkloadSpec::trace(
                    TraceSpec::generator("pointer-chase", 2_048, 7),
                    vec![0.05, 0.1],
                    SimProfile::Quick,
                ),
                WorkloadSpec::trace(
                    TraceSpec::File {
                        path: "traces/parsec_x264.nstr".into(),
                    },
                    vec![0.08],
                    SimProfile::QuickClassClock,
                )
                .labeled("x264"),
            ],
            assertions: vec![
                Assertion::MinRows { count: 4 },
                Assertion::ColumnPositive {
                    column: "latency_ns".into(),
                },
                Assertion::GroupedLess {
                    keys: vec!["class".into(), "topology".into()],
                    pivot: "policy".into(),
                    lesser: "link_sleep".into(),
                    greater: "always_on".into(),
                    column: "total_mw".into(),
                    filters: vec![("load".into(), "0.02".into())],
                },
            ],
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = sample_spec();
        let text = spec.to_json_string();
        let back = ExperimentSpec::from_json_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn composite_objective_folds_shared_terms() {
        let layout = Layout::noi_4x5();
        let spec = ObjectiveSpec::Composite {
            parts: vec![(1.0, ObjectiveSpec::LatOp), (0.5, ObjectiveSpec::FaultOp)],
        };
        // LatOp contributes Hops(1.0) and FaultOp contributes Hops(0.5), so
        // the folded composite has a single Hops term of weight 1.5.
        let decomposition = spec.resolve(&layout).decomposition();
        let hops: Vec<_> = decomposition
            .iter()
            .filter(|wt| wt.term == netsmith::gen::Term::Hops)
            .collect();
        assert_eq!(hops.len(), 1);
        assert!((hops[0].weight - 1.5).abs() < 1e-12);
    }

    #[test]
    fn corner_composites_share_the_axis_decomposition() {
        // A pure corner resolves to exactly the axis objective's
        // decomposition — the property that makes corner discoveries cache
        // hits against the single-objective candidates.
        let layout = Layout::noi_4x5();
        let corner = ObjectiveSpec::Composite {
            parts: vec![(1.0, ObjectiveSpec::FaultOp)],
        };
        assert_eq!(
            corner.resolve(&layout).decomposition(),
            Objective::fault_op_default().decomposition()
        );
    }

    #[test]
    fn trace_objective_resolves_to_a_skewed_demand_matrix() {
        let layout = Layout::noi_4x5();
        let spec = ObjectiveSpec::TraceLatOp {
            trace: TraceSpec::generator("onoff-hotspot", 4_096, 11),
        };
        match spec.resolve(&layout) {
            Objective::PatternLatOp(demand) => {
                assert_eq!(demand.num_nodes(), 20);
                assert!((demand.total() - 1.0).abs() < 1e-9, "normalized demand");
                // The hotspot generator concentrates traffic on a few
                // destinations; uniform demand would give every column 5%.
                let max = (0..20)
                    .map(|d| (0..20).map(|s| demand.demand(s, d)).sum::<f64>())
                    .fold(0.0, f64::max);
                assert!(max > 0.15, "hottest destination draws {max}");
            }
            other => panic!("expected PatternLatOp, got {other:?}"),
        }
    }

    #[test]
    fn trace_spec_resolution_reports_failures() {
        assert!(TraceSpec::generator("no-such-model", 64, 0)
            .resolve(20)
            .unwrap_err()
            .contains("unknown trace model"));
        assert!(TraceSpec::File {
            path: "/nonexistent/trace.nstr".into()
        }
        .resolve(20)
        .unwrap_err()
        .contains("trace file"));
    }

    #[test]
    fn workload_names_cover_both_sources() {
        let pattern =
            WorkloadSpec::new(TrafficPattern::UniformRandom, vec![0.1], SimProfile::Quick);
        assert_eq!(pattern.name(), "uniform_random");
        assert!(pattern.trace_spec().is_none());
        let trace = WorkloadSpec::trace(
            TraceSpec::generator("pointer-chase", 1_024, 3),
            vec![0.1],
            SimProfile::Quick,
        );
        assert_eq!(trace.name(), "trace:pointer-chase");
        assert!(trace.trace_spec().is_some());
        let file = WorkloadSpec::trace(
            TraceSpec::File {
                path: "traces/parsec_x264.nstr".into(),
            },
            vec![0.1],
            SimProfile::Quick,
        );
        assert_eq!(file.name(), "trace:parsec_x264");
    }

    #[test]
    #[should_panic(expected = "trace-driven")]
    fn pattern_accessor_rejects_trace_workloads() {
        let w = WorkloadSpec::trace(
            TraceSpec::generator("pointer-chase", 1_024, 3),
            vec![0.1],
            SimProfile::Quick,
        );
        let _ = w.pattern();
    }

    #[test]
    fn expert_names_resolve() {
        let layout = Layout::noi_4x5();
        for name in [
            "mesh",
            "folded-torus",
            "kite-small",
            "kite-medium",
            "kite-large",
            "butter-donut",
            "double-butterfly",
            "lpbt-hops",
            "lpbt-power",
        ] {
            expert_by_name(name, &layout).unwrap();
        }
        assert!(expert_by_name("hypercube", &layout).is_err());
    }
}
