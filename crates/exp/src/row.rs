//! Structured result rows and the CSV/JSON sinks they flow through.
//!
//! Every figure declares a fixed CSV header; cells emit [`Row`]s whose
//! values render into exactly the column format the hand-rolled binaries
//! used to `println!`, so downstream tooling sees byte-compatible CSV.  The
//! JSON sink re-reads the rendered columns and emits one object per row
//! (JSON Lines), inferring numbers and booleans from the rendered text so
//! both sinks stay in lock-step by construction.

use crate::json::Json;
use std::fmt::Write as _;

/// One rendered cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    /// Float rendered as `{:.precision$}` (matching the legacy harness's
    /// per-column formats).
    Float {
        value: f64,
        precision: usize,
    },
    /// Optional float: `None` renders as the empty column the resilience
    /// harness prints for unmeasured aggregates.
    OptFloat {
        value: Option<f64>,
        precision: usize,
    },
    Bool(bool),
    /// A preformatted CSV fragment spanning one or more columns (used to
    /// splice in existing `csv_row()` style formatters unchanged).
    Raw(String),
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Value::Str(s) => out.push_str(s),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float { value, precision } => {
                let _ = write!(out, "{value:.precision$}");
            }
            Value::OptFloat { value, precision } => {
                if let Some(value) = value {
                    let _ = write!(out, "{value:.precision$}");
                }
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Raw(s) => out.push_str(s),
        }
    }
}

/// One result row: an ordered list of values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    pub fn new() -> Self {
        Row::default()
    }

    /// Append a string column.
    pub fn str(mut self, value: impl Into<String>) -> Self {
        self.values.push(Value::Str(value.into()));
        self
    }

    /// Append an integer column.
    pub fn int(mut self, value: i64) -> Self {
        self.values.push(Value::Int(value));
        self
    }

    /// Append a float column rendered with `precision` decimals.
    pub fn float(mut self, value: f64, precision: usize) -> Self {
        self.values.push(Value::Float { value, precision });
        self
    }

    /// Append an optional float column (`None` renders empty).
    pub fn opt_float(mut self, value: Option<f64>, precision: usize) -> Self {
        self.values.push(Value::OptFloat { value, precision });
        self
    }

    /// Append a boolean column.
    pub fn bool(mut self, value: bool) -> Self {
        self.values.push(Value::Bool(value));
        self
    }

    /// Append a preformatted CSV fragment (may span several columns).
    pub fn raw(mut self, fragment: impl Into<String>) -> Self {
        self.values.push(Value::Raw(fragment.into()));
        self
    }

    /// Push a value in place (for post-processing passes).
    pub fn push(&mut self, value: Value) {
        self.values.push(value);
    }

    /// Render the CSV line.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, value) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            value.render(&mut out);
        }
        out
    }

    /// The rendered columns (splitting preformatted fragments on commas, so
    /// the result aligns with the figure's header).
    pub fn columns(&self) -> Vec<String> {
        self.to_csv().split(',').map(String::from).collect()
    }
}

/// How a figure's rows reach stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Header line + one CSV line per row (the default).
    Csv,
    /// Raw pass-through of single-value rows, no header (the DOT figure).
    Raw,
}

/// Render rows to stdout in the requested format.
pub fn emit(header: &str, rows: &[Row], mode: OutputMode, json: bool) {
    match (mode, json) {
        (OutputMode::Raw, _) => {
            for row in rows {
                println!("{}", row.to_csv());
            }
        }
        (OutputMode::Csv, false) => {
            println!("{header}");
            for row in rows {
                println!("{}", row.to_csv());
            }
        }
        (OutputMode::Csv, true) => {
            let names: Vec<&str> = header.split(',').collect();
            for row in rows {
                println!("{}", row_to_json(&names, row));
            }
        }
    }
}

/// One row as a JSON object keyed by the header's column names; numbers and
/// booleans are inferred from the rendered column text.
pub fn row_to_json(names: &[&str], row: &Row) -> Json {
    let members = names
        .iter()
        .zip(row.columns())
        .map(|(&name, column)| (name.to_string(), infer_json(&column)))
        .collect();
    Json::Obj(members)
}

fn infer_json(column: &str) -> Json {
    match column {
        "" => Json::Null,
        "true" => Json::Bool(true),
        "false" => Json::Bool(false),
        other => match other.parse::<f64>() {
            Ok(n) if n.is_finite() => Json::Num(n),
            _ => Json::Str(other.to_string()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_legacy_formats() {
        let row = Row::new()
            .str("Mesh")
            .float(2.533, 3)
            .opt_float(None, 4)
            .opt_float(Some(0.25), 4)
            .bool(true)
            .int(-3)
            .raw("a,b");
        assert_eq!(row.to_csv(), "Mesh,2.533,,0.2500,true,-3,a,b");
        assert_eq!(row.columns().len(), 8);
    }

    #[test]
    fn json_rows_infer_types() {
        let row = Row::new().str("Mesh").float(1.5, 2).bool(false).raw("x,7");
        let names = ["topology", "hops", "ok", "tag", "n"];
        let json = row_to_json(&names, &row);
        assert_eq!(json.get("topology"), Some(&Json::Str("Mesh".into())));
        assert_eq!(json.get("hops"), Some(&Json::Num(1.5)));
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(json.get("n"), Some(&Json::Num(7.0)));
    }
}
