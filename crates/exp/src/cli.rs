//! Uniform command-line entry points for the figure binaries and the suite.
//!
//! Every figure binary accepts the same flags:
//!
//! * `--quick` — the CI smoke matrix (small discovery budget, reduced
//!   classes/loads/windows as declared by the figure's quick spec).
//! * `--json` — emit rows as JSON Lines instead of CSV.
//! * `--seed N` — override the harness seed (changes every discovery and
//!   routing seed coherently).
//! * `--obs FILE.jsonl` — record the run's instrumentation (spans,
//!   counters, simulator time-series) to a JSON-Lines event log, plus a
//!   `FILE.manifest.json` run manifest; env fallback `NETSMITH_OBS`.
//!
//! Budget configuration flows through [`RunProfile`] with the historical
//! `NETSMITH_EVALS` / `NETSMITH_WORKERS` environment variables as
//! fallbacks, so scripted runs keep working while tests construct profiles
//! directly instead of mutating process-global state.

use crate::cache::SuiteCache;
use crate::row::emit;
use crate::runner::{Figure, Runner};
use crate::spec::CandidateSpec;
use netsmith_obs::{JsonlRecorder, Obs};
use netsmith_pool::WorkerPool;
use netsmith_topo::json::Json;
use std::path::{Path, PathBuf};

/// Deterministic seed shared by the harness so repeated runs reproduce the
/// same topologies (and so every figure's candidates share cache entries).
pub const DEFAULT_SEED: u64 = 20_240_402;

/// Per-worker annealing budget used by `--quick` runs.
pub const QUICK_EVALS: u64 = 1_500;

/// Worker count used by `--quick` runs.
pub const QUICK_WORKERS: usize = 2;

/// Search-budget and mode configuration for a run.  Construct directly in
/// tests; CLI entry points build it from flags with env fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProfile {
    /// Per-worker annealing evaluation budget.
    pub evals: u64,
    /// Parallel annealing workers per discovery.
    pub workers: usize,
    /// Base seed for discovery, routing and VC allocation.
    pub seed: u64,
    /// Whether the quick (CI smoke) matrix was requested.
    pub quick: bool,
}

impl Default for RunProfile {
    fn default() -> Self {
        RunProfile {
            evals: 30_000,
            workers: 4,
            seed: DEFAULT_SEED,
            quick: false,
        }
    }
}

impl RunProfile {
    /// The default profile with `NETSMITH_EVALS` / `NETSMITH_WORKERS`
    /// applied as fallbacks when present.
    pub fn from_env() -> Self {
        let mut profile = RunProfile::default();
        if let Some(evals) = std::env::var("NETSMITH_EVALS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            profile.evals = evals;
        }
        if let Some(workers) = std::env::var("NETSMITH_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            profile.workers = workers;
        }
        profile
    }

    /// The CI smoke profile: fixed small budget regardless of environment.
    pub fn quick() -> Self {
        RunProfile {
            evals: QUICK_EVALS,
            workers: QUICK_WORKERS,
            quick: true,
            ..RunProfile::default()
        }
    }
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    pub profile: RunProfile,
    /// Emit JSON Lines instead of CSV.
    pub json: bool,
    /// Instrumentation event-log path (`--obs`, env fallback
    /// `NETSMITH_OBS`); `None` leaves the run unobserved.
    pub obs_path: Option<PathBuf>,
}

impl CliOptions {
    /// Parse `--quick` / `--json` / `--seed N` / `--obs PATH` from an
    /// argument list (without the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut profile = RunProfile::from_env();
        let mut json = false;
        let mut obs_path = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    profile.quick = true;
                    profile.evals = QUICK_EVALS;
                    profile.workers = QUICK_WORKERS;
                }
                "--json" => json = true,
                "--seed" => {
                    let value = args.next().ok_or("--seed requires a value")?;
                    profile.seed = value
                        .parse()
                        .map_err(|_| format!("invalid --seed value {value:?}"))?;
                }
                "--obs" => {
                    let value = args.next().ok_or("--obs requires a path")?;
                    obs_path = Some(PathBuf::from(value));
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        let obs_path = obs_path.or_else(|| std::env::var_os("NETSMITH_OBS").map(PathBuf::from));
        Ok(CliOptions {
            profile,
            json,
            obs_path,
        })
    }

    fn from_process_args() -> Self {
        match CliOptions::parse(std::env::args().skip(1)) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("usage: <figure> [--quick] [--json] [--seed N] [--obs FILE.jsonl]");
                std::process::exit(2);
            }
        }
    }

    /// The instrumentation handle for this invocation: a JSON-Lines sink
    /// when `--obs` (or `NETSMITH_OBS`) names a path, the no-op handle
    /// otherwise.
    fn obs(&self) -> Obs {
        match &self.obs_path {
            None => Obs::noop(),
            Some(path) => match JsonlRecorder::create(path) {
                Ok(recorder) => Obs::to(recorder),
                Err(e) => {
                    eprintln!("error: cannot create obs event log {}: {e}", path.display());
                    std::process::exit(2);
                }
            },
        }
    }
}

/// Does a spec reference at least one synthesized candidate?
fn references_synth(figure: &Figure) -> bool {
    figure
        .spec
        .candidates
        .iter()
        .any(|c| matches!(c, CandidateSpec::Synth { .. }))
}

/// One figure's summary entry in the run manifest.
struct FigureRecord {
    name: String,
    rows: usize,
    seconds: f64,
    status: &'static str,
}

/// The manifest path derived from an event-log path: `run.jsonl` →
/// `run.manifest.json`.
fn manifest_path(event_log: &Path) -> PathBuf {
    event_log.with_extension("manifest.json")
}

/// Build the run manifest: invocation parameters, per-figure outcomes,
/// cache accounting and the aggregated span/counter totals.
fn build_manifest(
    command: &str,
    options: &CliOptions,
    figures: &[FigureRecord],
    cache: &SuiteCache,
    snapshot: &netsmith_obs::MetricsSnapshot,
) -> Json {
    let num = |n: u64| Json::Num(n as f64);
    Json::Obj(vec![
        ("command".into(), Json::Str(command.into())),
        ("seed".into(), num(options.profile.seed)),
        ("evals".into(), num(options.profile.evals)),
        ("workers".into(), num(options.profile.workers as u64)),
        ("quick".into(), Json::Bool(options.profile.quick)),
        (
            "figures".into(),
            Json::Arr(
                figures
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(f.name.clone())),
                            ("rows".into(), num(f.rows as u64)),
                            ("seconds".into(), Json::Num(f.seconds)),
                            ("status".into(), Json::Str(f.status.into())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "cache".into(),
            Json::Obj(vec![
                ("discoveries".into(), num(cache.discoveries() as u64)),
                ("references".into(), num(cache.references() as u64)),
            ]),
        ),
        (
            "counters".into(),
            Json::Obj(
                snapshot
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), num(*v)))
                    .collect(),
            ),
        ),
        (
            "spans".into(),
            Json::Obj(
                snapshot
                    .spans
                    .iter()
                    .map(|(k, s)| {
                        (
                            k.clone(),
                            Json::Obj(vec![
                                ("count".into(), num(s.count)),
                                ("total_us".into(), num(s.total_us)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Re-read and parse both artifacts, proving the run left a complete,
/// machine-readable account: every event-log line parses, every figure has
/// a closed span, the manifest lists every figure, and (for suite runs) at
/// least one simulator time-series was captured.
fn verify_artifacts(
    event_log: &Path,
    manifest: &Path,
    figures: &[FigureRecord],
    require_series: bool,
) -> Result<(), String> {
    let text = std::fs::read_to_string(event_log)
        .map_err(|e| format!("cannot re-read {}: {e}", event_log.display()))?;
    let mut closed_spans = std::collections::HashSet::new();
    let mut series = 0usize;
    for (i, line) in text.lines().enumerate() {
        let json = Json::parse(line)
            .map_err(|e| format!("{}:{}: unparsable event: {e}", event_log.display(), i + 1))?;
        match json.require("ev")?.as_str()? {
            "span_close" => {
                closed_spans.insert(json.require("name")?.as_str()?.to_string());
            }
            "series" => series += 1,
            _ => {}
        }
    }
    for figure in figures {
        if !closed_spans.contains(&figure.name) {
            return Err(format!(
                "event log {} has no span for figure {}",
                event_log.display(),
                figure.name
            ));
        }
    }
    if require_series && series == 0 {
        return Err(format!(
            "event log {} captured no simulator time-series",
            event_log.display()
        ));
    }
    let manifest_text = std::fs::read_to_string(manifest)
        .map_err(|e| format!("cannot re-read {}: {e}", manifest.display()))?;
    let parsed = Json::parse(&manifest_text)
        .map_err(|e| format!("{}: unparsable manifest: {e}", manifest.display()))?;
    let listed = parsed.require("figures")?.as_arr()?.len();
    if listed != figures.len() {
        return Err(format!(
            "{} lists {listed} figures, expected {}",
            manifest.display(),
            figures.len()
        ));
    }
    Ok(())
}

/// Finalize an observed run: publish the worker pool's counters, flush the
/// sink (which appends every counter total), check the obs counters against
/// the cache's own accounting, write the manifest, and self-verify both
/// artifacts.  A no-op when the run is unobserved.
fn finish_obs(
    command: &str,
    options: &CliOptions,
    obs: &Obs,
    cache: &SuiteCache,
    figures: &[FigureRecord],
    require_series: bool,
) -> Result<(), String> {
    let Some(event_log) = &options.obs_path else {
        return Ok(());
    };
    let stats = WorkerPool::global().stats();
    obs.add("pool.batches", stats.batches);
    obs.add("pool.tasks", stats.tasks);
    obs.add("pool.queue_wait_us", stats.queue_wait_us);
    obs.flush();
    let snapshot = obs.snapshot().expect("an observed run has a recorder");
    let hits = snapshot.counter("cache.hits") as usize;
    let misses = snapshot.counter("cache.misses") as usize;
    if misses != cache.discoveries() || hits + misses != cache.references() {
        return Err(format!(
            "obs counters disagree with cache accounting: {hits} hits + {misses} misses \
             vs {} discoveries / {} references",
            cache.discoveries(),
            cache.references()
        ));
    }
    let manifest = manifest_path(event_log);
    let doc = build_manifest(command, options, figures, cache, &snapshot);
    std::fs::write(&manifest, format!("{doc}\n"))
        .map_err(|e| format!("cannot write {}: {e}", manifest.display()))?;
    verify_artifacts(event_log, &manifest, figures, require_series)?;
    eprintln!(
        "# obs: event log {} + manifest {} (verified)",
        event_log.display(),
        manifest.display()
    );
    Ok(())
}

/// Run one figure as a standalone binary: parse flags, execute, print rows,
/// verify assertions (after printing, like the legacy binaries), exit
/// non-zero on failure.
pub fn run_figure(build: fn(&RunProfile) -> Figure) {
    let options = CliOptions::from_process_args();
    let obs = options.obs();
    let cache = SuiteCache::new().with_obs(obs.clone());
    let runner = Runner::new(options.profile, &cache).with_obs(obs.clone());
    let figure = build(&runner.profile);
    let name = figure.spec.name.clone();
    let started = std::time::Instant::now();
    let mut span = obs.span(&name);
    let output = match runner.run(&figure) {
        Ok(output) => output,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };
    span.attr("rows", output.rows.len() as u64);
    span.close();
    emit(&output.header, &output.rows, figure.output, options.json);
    eprintln!(
        "# {}: {} rows; candidate cache: {} discoveries / {} references",
        output.name,
        output.rows.len(),
        cache.discoveries(),
        cache.references()
    );
    let record = FigureRecord {
        name,
        rows: output.rows.len(),
        seconds: started.elapsed().as_secs_f64(),
        status: "ok",
    };
    if let Err(message) = finish_obs("figure", &options, &obs, &cache, &[record], false) {
        eprintln!("OBS FAILED: {message}");
        std::process::exit(1);
    }
    if let Err(message) = runner.verify(&figure, &output) {
        eprintln!("ASSERTION FAILED: {message}");
        std::process::exit(1);
    }
}

/// A named figure constructor, as registered in a suite.
pub type FigureEntry = (&'static str, fn(&RunProfile) -> Figure);

/// Run every registered figure against one shared cache: the suite mode CI
/// smokes.  Prints each figure's CSV (section-prefixed) to stdout, verifies
/// every declared assertion, and fails unless the shared candidate cache
/// demonstrably collapsed discovery work (total discovery invocations <
/// number of figure specs referencing synthesized candidates).
pub fn run_suite(registry: &[FigureEntry]) {
    let options = CliOptions::from_process_args();
    let obs = options.obs();
    let cache = SuiteCache::new().with_obs(obs.clone());
    let runner = Runner::new(options.profile, &cache).with_obs(obs.clone());
    let mut failures: Vec<String> = Vec::new();
    let mut records: Vec<FigureRecord> = Vec::new();
    let mut synth_specs = 0usize;
    let started = std::time::Instant::now();
    for (name, build) in registry {
        let figure = build(&runner.profile);
        if references_synth(&figure) {
            synth_specs += 1;
        }
        let figure_started = std::time::Instant::now();
        let mut span = obs.span(name);
        let outcome = runner.run(&figure);
        let mut record = FigureRecord {
            name: name.to_string(),
            rows: 0,
            seconds: 0.0,
            status: "failed",
        };
        match outcome {
            Ok(output) => {
                span.attr("rows", output.rows.len() as u64);
                span.close();
                record.rows = output.rows.len();
                println!("# figure: {name}");
                emit(&output.header, &output.rows, figure.output, options.json);
                if let Err(message) = runner.verify(&figure, &output) {
                    eprintln!("# {name}: ASSERTION FAILED: {message}");
                    failures.push(format!("{name}: {message}"));
                } else {
                    record.status = "ok";
                    eprintln!(
                        "# {name}: ok ({} rows, {:.1}s)",
                        output.rows.len(),
                        figure_started.elapsed().as_secs_f64()
                    );
                }
            }
            Err(message) => {
                eprintln!("# {name}: RUN FAILED: {message}");
                failures.push(format!("{name}: {message}"));
            }
        }
        record.seconds = figure_started.elapsed().as_secs_f64();
        records.push(record);
    }
    eprintln!(
        "# suite: {} figures in {:.1}s; candidate cache: {} discoveries / {} references \
         across {synth_specs} synth-referencing specs",
        registry.len(),
        started.elapsed().as_secs_f64(),
        cache.discoveries(),
        cache.references()
    );
    // The cache-effectiveness invariant is defined on the quick matrix
    // (ISSUE acceptance criterion): full runs sweep more classes/layouts,
    // so their distinct-key count legitimately exceeds the spec count.
    if options.profile.quick && synth_specs > 1 && cache.discoveries() >= synth_specs {
        failures.push(format!(
            "candidate cache ineffective: {} discoveries for {synth_specs} synth-referencing specs",
            cache.discoveries()
        ));
    }
    if let Err(message) = finish_obs("suite", &options, &obs, &cache, &records, true) {
        eprintln!("# suite: OBS FAILED: {message}");
        failures.push(format!("obs: {message}"));
    }
    if !failures.is_empty() {
        eprintln!("# suite: {} failure(s)", failures.len());
        for failure in &failures {
            eprintln!("#   {failure}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_handles_all_flags() {
        let options = CliOptions::parse(
            ["--quick", "--json", "--seed", "42", "--obs", "run.jsonl"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert!(options.profile.quick);
        assert!(options.json);
        assert_eq!(options.profile.seed, 42);
        assert_eq!(options.profile.evals, QUICK_EVALS);
        assert_eq!(options.profile.workers, QUICK_WORKERS);
        assert_eq!(options.obs_path, Some(PathBuf::from("run.jsonl")));
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(CliOptions::parse(["--fast".to_string()]).is_err());
        assert!(CliOptions::parse(["--seed".to_string()]).is_err());
        assert!(CliOptions::parse(["--seed".to_string(), "x".to_string()]).is_err());
        assert!(CliOptions::parse(["--obs".to_string()]).is_err());
    }

    #[test]
    fn manifest_path_swaps_the_extension() {
        assert_eq!(
            manifest_path(Path::new("out/run.jsonl")),
            PathBuf::from("out/run.manifest.json")
        );
    }

    #[test]
    fn profile_defaults_are_sane_without_env() {
        // Reads (never mutates) the environment: defaults apply when the
        // variables are unset, and any value present must parse into the
        // profile unchanged.
        let profile = RunProfile::from_env();
        assert!(profile.evals > 0);
        assert!(profile.workers >= 1);
        assert_eq!(profile.seed, DEFAULT_SEED);
        assert!(!profile.quick);
    }
}
