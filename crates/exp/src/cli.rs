//! Uniform command-line entry points for the figure binaries and the suite.
//!
//! Every figure binary accepts the same flags:
//!
//! * `--quick` — the CI smoke matrix (small discovery budget, reduced
//!   classes/loads/windows as declared by the figure's quick spec).
//! * `--json` — emit rows as JSON Lines instead of CSV.
//! * `--seed N` — override the harness seed (changes every discovery and
//!   routing seed coherently).
//!
//! Budget configuration flows through [`RunProfile`] with the historical
//! `NETSMITH_EVALS` / `NETSMITH_WORKERS` environment variables as
//! fallbacks, so scripted runs keep working while tests construct profiles
//! directly instead of mutating process-global state.

use crate::cache::SuiteCache;
use crate::row::emit;
use crate::runner::{Figure, Runner};
use crate::spec::CandidateSpec;

/// Deterministic seed shared by the harness so repeated runs reproduce the
/// same topologies (and so every figure's candidates share cache entries).
pub const DEFAULT_SEED: u64 = 20_240_402;

/// Per-worker annealing budget used by `--quick` runs.
pub const QUICK_EVALS: u64 = 1_500;

/// Worker count used by `--quick` runs.
pub const QUICK_WORKERS: usize = 2;

/// Search-budget and mode configuration for a run.  Construct directly in
/// tests; CLI entry points build it from flags with env fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProfile {
    /// Per-worker annealing evaluation budget.
    pub evals: u64,
    /// Parallel annealing workers per discovery.
    pub workers: usize,
    /// Base seed for discovery, routing and VC allocation.
    pub seed: u64,
    /// Whether the quick (CI smoke) matrix was requested.
    pub quick: bool,
}

impl Default for RunProfile {
    fn default() -> Self {
        RunProfile {
            evals: 30_000,
            workers: 4,
            seed: DEFAULT_SEED,
            quick: false,
        }
    }
}

impl RunProfile {
    /// The default profile with `NETSMITH_EVALS` / `NETSMITH_WORKERS`
    /// applied as fallbacks when present.
    pub fn from_env() -> Self {
        let mut profile = RunProfile::default();
        if let Some(evals) = std::env::var("NETSMITH_EVALS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            profile.evals = evals;
        }
        if let Some(workers) = std::env::var("NETSMITH_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            profile.workers = workers;
        }
        profile
    }

    /// The CI smoke profile: fixed small budget regardless of environment.
    pub fn quick() -> Self {
        RunProfile {
            evals: QUICK_EVALS,
            workers: QUICK_WORKERS,
            quick: true,
            ..RunProfile::default()
        }
    }
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    pub profile: RunProfile,
    /// Emit JSON Lines instead of CSV.
    pub json: bool,
}

impl CliOptions {
    /// Parse `--quick` / `--json` / `--seed N` from an argument list
    /// (without the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut profile = RunProfile::from_env();
        let mut json = false;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    profile.quick = true;
                    profile.evals = QUICK_EVALS;
                    profile.workers = QUICK_WORKERS;
                }
                "--json" => json = true,
                "--seed" => {
                    let value = args.next().ok_or("--seed requires a value")?;
                    profile.seed = value
                        .parse()
                        .map_err(|_| format!("invalid --seed value {value:?}"))?;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(CliOptions { profile, json })
    }

    fn from_process_args() -> Self {
        match CliOptions::parse(std::env::args().skip(1)) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("usage: <figure> [--quick] [--json] [--seed N]");
                std::process::exit(2);
            }
        }
    }
}

/// Does a spec reference at least one synthesized candidate?
fn references_synth(figure: &Figure) -> bool {
    figure
        .spec
        .candidates
        .iter()
        .any(|c| matches!(c, CandidateSpec::Synth { .. }))
}

/// Run one figure as a standalone binary: parse flags, execute, print rows,
/// verify assertions (after printing, like the legacy binaries), exit
/// non-zero on failure.
pub fn run_figure(build: fn(&RunProfile) -> Figure) {
    let options = CliOptions::from_process_args();
    let cache = SuiteCache::new();
    let runner = Runner::new(options.profile, &cache);
    let figure = build(&runner.profile);
    let output = match runner.run(&figure) {
        Ok(output) => output,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };
    emit(&output.header, &output.rows, figure.output, options.json);
    eprintln!(
        "# {}: {} rows; candidate cache: {} discoveries / {} references",
        output.name,
        output.rows.len(),
        cache.discoveries(),
        cache.references()
    );
    if let Err(message) = runner.verify(&figure, &output) {
        eprintln!("ASSERTION FAILED: {message}");
        std::process::exit(1);
    }
}

/// A named figure constructor, as registered in a suite.
pub type FigureEntry = (&'static str, fn(&RunProfile) -> Figure);

/// Run every registered figure against one shared cache: the suite mode CI
/// smokes.  Prints each figure's CSV (section-prefixed) to stdout, verifies
/// every declared assertion, and fails unless the shared candidate cache
/// demonstrably collapsed discovery work (total discovery invocations <
/// number of figure specs referencing synthesized candidates).
pub fn run_suite(registry: &[FigureEntry]) {
    let options = CliOptions::from_process_args();
    let cache = SuiteCache::new();
    let runner = Runner::new(options.profile, &cache);
    let mut failures: Vec<String> = Vec::new();
    let mut synth_specs = 0usize;
    let started = std::time::Instant::now();
    for (name, build) in registry {
        let figure = build(&runner.profile);
        if references_synth(&figure) {
            synth_specs += 1;
        }
        let figure_started = std::time::Instant::now();
        match runner.run(&figure) {
            Ok(output) => {
                println!("# figure: {name}");
                emit(&output.header, &output.rows, figure.output, options.json);
                if let Err(message) = runner.verify(&figure, &output) {
                    eprintln!("# {name}: ASSERTION FAILED: {message}");
                    failures.push(format!("{name}: {message}"));
                } else {
                    eprintln!(
                        "# {name}: ok ({} rows, {:.1}s)",
                        output.rows.len(),
                        figure_started.elapsed().as_secs_f64()
                    );
                }
            }
            Err(message) => {
                eprintln!("# {name}: RUN FAILED: {message}");
                failures.push(format!("{name}: {message}"));
            }
        }
    }
    eprintln!(
        "# suite: {} figures in {:.1}s; candidate cache: {} discoveries / {} references \
         across {synth_specs} synth-referencing specs",
        registry.len(),
        started.elapsed().as_secs_f64(),
        cache.discoveries(),
        cache.references()
    );
    // The cache-effectiveness invariant is defined on the quick matrix
    // (ISSUE acceptance criterion): full runs sweep more classes/layouts,
    // so their distinct-key count legitimately exceeds the spec count.
    if options.profile.quick && synth_specs > 1 && cache.discoveries() >= synth_specs {
        failures.push(format!(
            "candidate cache ineffective: {} discoveries for {synth_specs} synth-referencing specs",
            cache.discoveries()
        ));
    }
    if !failures.is_empty() {
        eprintln!("# suite: {} failure(s)", failures.len());
        for failure in &failures {
            eprintln!("#   {failure}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_handles_all_flags() {
        let options = CliOptions::parse(
            ["--quick", "--json", "--seed", "42"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert!(options.profile.quick);
        assert!(options.json);
        assert_eq!(options.profile.seed, 42);
        assert_eq!(options.profile.evals, QUICK_EVALS);
        assert_eq!(options.profile.workers, QUICK_WORKERS);
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(CliOptions::parse(["--fast".to_string()]).is_err());
        assert!(CliOptions::parse(["--seed".to_string()]).is_err());
        assert!(CliOptions::parse(["--seed".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn profile_defaults_are_sane_without_env() {
        // Reads (never mutates) the environment: defaults apply when the
        // variables are unset, and any value present must parse into the
        // profile unchanged.
        let profile = RunProfile::from_env();
        assert!(profile.evals > 0);
        assert!(profile.workers >= 1);
        assert_eq!(profile.seed, DEFAULT_SEED);
        assert!(!profile.quick);
    }
}
