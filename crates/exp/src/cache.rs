//! The suite-wide candidate discovery cache.
//!
//! Discovery is the expensive step of every figure (~10⁵ annealer
//! evaluations per candidate at full budget), and most figures ask for the
//! same handful of candidates (`NS-LatOp-medium`, `NS-SCOp-large`, …).  The
//! cache keys a discovery by everything that determines its outcome — the
//! *resolved objective decomposition* (so a pure-corner composite and the
//! axis objective it equals share one entry), the layout, link class,
//! symmetric-links flag, seed and search budget — and runs it at most once
//! per suite, handing every later reference the same `Arc`'d result
//! bit-for-bit.

use netsmith::gen::{DiscoveryResult, NetSmith, Term, WeightedTerm};
use netsmith_obs::Obs;
use netsmith_topo::traffic::DemandMatrix;
use netsmith_topo::{Layout, LinkClass};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Everything that determines a discovery's outcome.
#[derive(Debug, Clone)]
pub struct DiscoveryRequest {
    pub layout: Layout,
    pub layout_label: String,
    pub class: LinkClass,
    pub objective: netsmith::gen::Objective,
    pub symmetric: bool,
    pub seed: u64,
    pub evaluations: u64,
    pub workers: usize,
}

impl DiscoveryRequest {
    /// The canonical cache key.  Weights and floating-point parameters are
    /// keyed by their bit patterns, so two requests collide exactly when
    /// their searches would be identical.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}|{}|sym={}|seed={}|evals={}|workers={}|",
            self.layout_label,
            self.class.name(),
            self.symmetric,
            self.seed,
            self.evaluations,
            self.workers
        );
        for WeightedTerm { weight, term } in self.objective.decomposition() {
            let _ = write!(key, "{:016x}x", weight.to_bits());
            match term {
                Term::Hops => key.push_str("hops"),
                Term::SparsestCut => key.push_str("cut"),
                Term::CriticalLinks => key.push_str("crit"),
                Term::SpareCapacity => key.push_str("spare"),
                Term::EnergyProxy { edp_weight } => {
                    let _ = write!(key, "energy[{:016x}]", edp_weight.to_bits());
                }
                Term::PatternHops(demand) => {
                    let _ = write!(key, "pattern[{:016x}]", demand_fingerprint(&demand));
                }
            }
            key.push('+');
        }
        key
    }
}

/// FNV-1a over the demand matrix's bit patterns: distinct demand matrices
/// must key distinct discoveries.
fn demand_fingerprint(demand: &DemandMatrix) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let n = demand.num_nodes();
    for s in 0..n {
        for d in 0..n {
            for byte in demand.demand(s, d).to_bits().to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    hash
}

/// Shared discovery cache with invocation accounting.  Every lookup is
/// counted on the attached [`Obs`] handle as `cache.hits` / `cache.misses`
/// (hits + misses = references, misses = discoveries), and discoveries run
/// with the same handle so annealer spans and move counters land on the
/// suite's recorder.
#[derive(Default)]
pub struct SuiteCache {
    entries: Mutex<HashMap<String, Arc<DiscoveryResult>>>,
    discoveries: AtomicUsize,
    references: AtomicUsize,
    obs: Obs,
}

impl SuiteCache {
    pub fn new() -> Self {
        SuiteCache::default()
    }

    /// Attach an instrumentation handle; defaults to the no-op handle.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Discoveries actually run (cache misses).
    pub fn discoveries(&self) -> usize {
        self.discoveries.load(Ordering::SeqCst)
    }

    /// Candidate references served (hits + misses).
    pub fn references(&self) -> usize {
        self.references.load(Ordering::SeqCst)
    }

    /// Resolve a discovery request through the cache.  The lock is held
    /// across the search itself so concurrent requests for the same key
    /// never duplicate work (the annealer parallelizes internally).
    pub fn discover(&self, request: &DiscoveryRequest) -> Arc<DiscoveryResult> {
        self.references.fetch_add(1, Ordering::SeqCst);
        let key = request.key();
        let mut entries = self.entries.lock().unwrap();
        if let Some(result) = entries.get(&key) {
            self.obs.add("cache.hits", 1);
            return Arc::clone(result);
        }
        self.discoveries.fetch_add(1, Ordering::SeqCst);
        self.obs.add("cache.misses", 1);
        let mut span = self.obs.span("cache.discover");
        span.attr("key", key.as_str());
        let result = Arc::new(
            NetSmith::new(request.layout.clone(), request.class)
                .objective(request.objective.clone())
                .symmetric_links(request.symmetric)
                .evaluations(request.evaluations)
                .workers(request.workers)
                .seed(request.seed)
                .obs(self.obs.clone())
                .discover(),
        );
        span.close();
        entries.insert(key, Arc::clone(&result));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith::gen::Objective;

    fn request(objective: Objective) -> DiscoveryRequest {
        DiscoveryRequest {
            layout: Layout::noi_4x5(),
            layout_label: "4x5".into(),
            class: LinkClass::Medium,
            objective,
            symmetric: false,
            seed: 7,
            evaluations: 400,
            workers: 1,
        }
    }

    #[test]
    fn corner_composites_key_like_their_axis_objective() {
        let axis = request(Objective::fault_op_default());
        let corner = request(Objective::Composite(
            Objective::fault_op_default().decomposition(),
        ));
        assert_eq!(axis.key(), corner.key());
        // But a different weighting keys differently.
        let other = request(Objective::FaultOp {
            articulation_penalty: 2.0e5,
            spare_capacity_weight: 40.0,
        });
        assert_ne!(axis.key(), other.key());
    }

    #[test]
    fn budget_and_symmetry_key_separately() {
        let base = request(Objective::LatOp);
        let mut budget = request(Objective::LatOp);
        budget.evaluations = 800;
        let mut symmetric = request(Objective::LatOp);
        symmetric.symmetric = true;
        assert_ne!(base.key(), budget.key());
        assert_ne!(base.key(), symmetric.key());
    }

    #[test]
    fn cache_runs_each_key_once_and_shares_the_result() {
        let recorder = netsmith_obs::MemoryRecorder::new();
        let cache = SuiteCache::new().with_obs(Obs::to(recorder.clone()));
        let a = cache.discover(&request(Objective::LatOp));
        let b = cache.discover(&request(Objective::LatOp));
        assert_eq!(cache.discoveries(), 1);
        assert_eq!(cache.references(), 2);
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counter("cache.misses"), 1);
        assert_eq!(snapshot.counter("cache.hits"), 1);
        assert_eq!(snapshot.span_count("cache.discover"), 1);
        // The discovery ran under the cache's obs handle, so the annealer's
        // counters surface on the same recorder.
        assert!(snapshot.counter("anneal.evaluations") >= 400);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.discover(&request(Objective::SCOp));
        assert_eq!(cache.discoveries(), 2);
        assert_eq!(recorder.snapshot().counter("cache.misses"), 2);
        assert_eq!(c.topology.name(), "NS-SCOp-medium");
    }
}
