//! The experiment runner: candidate resolution through the suite cache,
//! parallel cell execution, declarative assertion checking.

use crate::cache::{DiscoveryRequest, SuiteCache};
use crate::cli::RunProfile;
use crate::row::{OutputMode, Row};
use crate::spec::{
    expert_by_name, Assertion, CandidateSpec, ExperimentSpec, LayoutSpec, WorkloadSpec,
};
use netsmith::gen::DiscoveryResult;
use netsmith::pipeline::{EvaluatedNetwork, RoutingScheme};
use netsmith_obs::Obs;
use netsmith_pool::WorkerPool;
use netsmith_sim::SimConfig;
use netsmith_topo::{expert, Layout, LinkClass, PipelineError, Topology};
use std::sync::{Arc, OnceLock};

/// The paper's virtual-channel budget, shared by every figure.
pub const VC_BUDGET: usize = 6;

/// A candidate instantiated for one (layout, class) cell of the matrix,
/// with its routed/allocated network prepared lazily and shared across
/// every workload cell that touches it.
#[derive(Clone)]
pub struct ResolvedCandidate {
    pub layout_spec: LayoutSpec,
    pub layout: Layout,
    pub class: LinkClass,
    pub scheme: RoutingScheme,
    pub topology: Arc<Topology>,
    /// Present for synthesized candidates (progress traces, bounds, gaps).
    pub discovery: Option<Arc<DiscoveryResult>>,
    /// The objective spec a synthesized candidate was resolved from, so
    /// measurements never have to reconstruct it from cell indices.
    pub objective: Option<crate::spec::ObjectiveSpec>,
    prepare_seed: u64,
    #[allow(clippy::type_complexity)]
    prepared: Arc<OnceLock<Result<Arc<EvaluatedNetwork>, PipelineError>>>,
}

impl ResolvedCandidate {
    /// The routed, VC-allocated network; prepared on first use and shared.
    /// The typed error names why preparation failed.
    pub fn try_network(&self) -> Result<Arc<EvaluatedNetwork>, PipelineError> {
        self.prepared
            .get_or_init(|| {
                EvaluatedNetwork::prepare(&self.topology, self.scheme, VC_BUDGET, self.prepare_seed)
                    .map(Arc::new)
            })
            .clone()
    }

    /// The prepared network, panicking with the typed error's message when
    /// the candidate cannot be served (figures treat that as fatal, exactly
    /// like the legacy binaries did).
    pub fn network(&self) -> Arc<EvaluatedNetwork> {
        self.try_network()
            .unwrap_or_else(|e| panic!("{} cannot be prepared: {e}", self.topology.name()))
    }
}

/// One executable cell: a resolved candidate crossed with a workload (or
/// with nothing, for analytic figures).  Cells borrow the runner so
/// measurements can resolve auxiliary candidates through the same cache.
pub struct Cell<'r> {
    pub runner: &'r Runner<'r>,
    pub candidate: ResolvedCandidate,
    pub workload: Option<WorkloadSpec>,
    /// Index of the candidate in the resolved candidate list.
    pub candidate_index: usize,
    /// Index of the workload in the spec (0 when the spec has none).
    pub workload_index: usize,
}

impl Cell<'_> {
    pub fn profile(&self) -> &RunProfile {
        &self.runner.profile
    }

    /// The runner's instrumentation handle, so measurements can emit
    /// domain-specific events (the trace figure publishes per-epoch
    /// simulator time-series through this).
    pub fn obs(&self) -> &Obs {
        &self.runner.obs
    }

    /// The workload's simulator configuration for this cell's class.
    pub fn sim_config(&self) -> SimConfig {
        self.workload
            .as_ref()
            .expect("cell has no workload")
            .sim
            .resolve(self.candidate.class)
    }
}

/// How candidate × workload cells are ordered (and therefore how rows are
/// grouped in the output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellOrder {
    /// All workloads of a candidate together (the default).
    #[default]
    CandidateMajor,
    /// All candidates of a workload together (the synthetic-traffic
    /// figures group by traffic class first).
    WorkloadMajor,
}

/// A figure: the declarative spec plus the measurement and (optional)
/// post-processing / invariant code the spec cannot express.
pub struct Figure {
    pub spec: ExperimentSpec,
    /// The exact CSV header (held stable across the port of the legacy
    /// binaries; guarded by a golden-header test).
    pub header: String,
    pub output: OutputMode,
    pub cell_order: CellOrder,
    /// Measure one cell into zero or more rows.
    #[allow(clippy::type_complexity)]
    pub measure: Box<dyn Fn(&Cell<'_>) -> Vec<Row> + Send + Sync>,
    /// Whole-output pass run after all cells (cross-row columns such as a
    /// Pareto-front flag).
    #[allow(clippy::type_complexity)]
    pub postprocess: Option<Box<dyn Fn(&mut Vec<Row>) + Send + Sync>>,
    /// Figure-specific invariants that need code; declarative invariants
    /// belong in `spec.assertions`.
    #[allow(clippy::type_complexity)]
    pub check: Option<Box<dyn Fn(&RunOutput, &Runner<'_>) -> Result<(), String> + Send + Sync>>,
}

impl Figure {
    /// A CSV figure with default ordering and no extra hooks.
    pub fn new(
        spec: ExperimentSpec,
        header: &str,
        measure: impl Fn(&Cell<'_>) -> Vec<Row> + Send + Sync + 'static,
    ) -> Self {
        Figure {
            spec,
            header: header.into(),
            output: OutputMode::Csv,
            cell_order: CellOrder::CandidateMajor,
            measure: Box::new(measure),
            postprocess: None,
            check: None,
        }
    }

    pub fn with_order(mut self, order: CellOrder) -> Self {
        self.cell_order = order;
        self
    }

    pub fn with_output(mut self, output: OutputMode) -> Self {
        self.output = output;
        self
    }

    pub fn with_postprocess(
        mut self,
        postprocess: impl Fn(&mut Vec<Row>) + Send + Sync + 'static,
    ) -> Self {
        self.postprocess = Some(Box::new(postprocess));
        self
    }

    pub fn with_check(
        mut self,
        check: impl Fn(&RunOutput, &Runner<'_>) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        self.check = Some(Box::new(check));
        self
    }
}

/// The collected result of running one figure.
pub struct RunOutput {
    pub name: String,
    pub header: String,
    pub rows: Vec<Row>,
    pub candidates: Vec<ResolvedCandidate>,
}

impl RunOutput {
    /// Index of a header column.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.header.split(',').position(|c| c == name)
    }

    /// Rendered value of a row's column.
    pub fn value(&self, row: usize, column: &str) -> Option<String> {
        let idx = self.column(column)?;
        self.rows.get(row)?.columns().into_iter().nth(idx)
    }

    /// A row's column parsed as a float.
    pub fn float(&self, row: usize, column: &str) -> Option<f64> {
        self.value(row, column)?.parse().ok()
    }
}

/// Executes figures against a shared profile and candidate cache.
pub struct Runner<'c> {
    pub profile: RunProfile,
    pub cache: &'c SuiteCache,
    /// Maximum cells measured concurrently.
    pub parallelism: usize,
    /// Instrumentation handle: every measured cell runs under a `cell`
    /// span, and measurements reach it through [`Cell::obs`].
    pub obs: Obs,
}

impl<'c> Runner<'c> {
    pub fn new(profile: RunProfile, cache: &'c SuiteCache) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 8);
        Runner {
            profile,
            cache,
            parallelism,
            obs: Obs::noop(),
        }
    }

    /// Attach an instrumentation handle (defaults to the no-op handle).
    /// Usually the same handle the [`SuiteCache`] was built with, so cache
    /// counters, annealer spans and cell spans share one recorder.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Resolve a synthesis candidate through the suite cache (the same path
    /// spec candidates take; exposed so measurements can resolve auxiliary
    /// candidates such as a symmetric-links twin).
    pub fn resolve_synth(
        &self,
        layout_spec: LayoutSpec,
        class: LinkClass,
        objective: &crate::spec::ObjectiveSpec,
        symmetric: bool,
    ) -> ResolvedCandidate {
        let layout = layout_spec.layout();
        let discovery = self.cache.discover(&DiscoveryRequest {
            layout: layout.clone(),
            layout_label: layout_spec.label().into(),
            class,
            objective: objective.resolve(&layout),
            symmetric,
            seed: self.profile.seed,
            evaluations: self.profile.evals,
            workers: self.profile.workers,
        });
        ResolvedCandidate {
            layout_spec,
            layout,
            class,
            scheme: RoutingScheme::Mclb,
            topology: Arc::new(discovery.topology.clone()),
            discovery: Some(discovery),
            objective: Some(objective.clone()),
            prepare_seed: self.profile.seed,
            prepared: Arc::new(OnceLock::new()),
        }
    }

    /// Resolve an expert candidate (no discovery, NDBT routing).
    pub fn resolve_expert(
        &self,
        layout_spec: LayoutSpec,
        class: LinkClass,
        topology: Topology,
    ) -> ResolvedCandidate {
        ResolvedCandidate {
            layout_spec,
            layout: layout_spec.layout(),
            class,
            scheme: RoutingScheme::Ndbt,
            topology: Arc::new(topology),
            discovery: None,
            objective: None,
            prepare_seed: self.profile.seed,
            prepared: Arc::new(OnceLock::new()),
        }
    }

    /// Expand a spec's candidate matrix into resolved candidates, in
    /// (layout, class, candidate, scheme) order.
    pub fn resolve_candidates(
        &self,
        spec: &ExperimentSpec,
    ) -> Result<Vec<ResolvedCandidate>, String> {
        let mut resolved = Vec::new();
        for &layout_spec in &spec.layouts {
            let layout = layout_spec.layout();
            for &class in &spec.classes {
                for candidate in &spec.candidates {
                    let base: Vec<ResolvedCandidate> = match candidate {
                        CandidateSpec::Expert { name, only_class } => {
                            if only_class.is_some_and(|c| c != class) {
                                continue;
                            }
                            vec![self.resolve_expert(
                                layout_spec,
                                class,
                                expert_by_name(name, &layout)?,
                            )]
                        }
                        CandidateSpec::ExpertBaselines => {
                            expert::baselines_for_class(&layout, class)
                                .into_iter()
                                .map(|t| self.resolve_expert(layout_spec, class, t))
                                .collect()
                        }
                        CandidateSpec::Synth {
                            objective,
                            symmetric,
                        } => {
                            vec![self.resolve_synth(layout_spec, class, objective, *symmetric)]
                        }
                    };
                    match &spec.scheme_override {
                        None => resolved.extend(base),
                        Some(schemes) => {
                            for candidate in base {
                                for &scheme in schemes {
                                    let mut rerouted = candidate.clone();
                                    rerouted.scheme = scheme;
                                    // A different scheme is a different
                                    // preparation; drop the shared slot.
                                    rerouted.prepared = Arc::new(OnceLock::new());
                                    resolved.push(rerouted);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(resolved)
    }

    /// Run a figure: resolve its candidates, execute every cell (in
    /// parallel, deterministic row order), post-process.  Assertions are
    /// *not* checked here — the CLI emits rows first, then verifies, so a
    /// failing run still prints its data like the legacy binaries did.
    pub fn run(&self, figure: &Figure) -> Result<RunOutput, String> {
        let candidates = self.resolve_candidates(&figure.spec)?;

        // Build the cell list in the figure's grouping order.
        let mut cells: Vec<(usize, usize)> = Vec::new(); // (candidate, workload)
        let workload_count = figure.spec.workloads.len().max(1);
        match figure.cell_order {
            CellOrder::CandidateMajor => {
                for c in 0..candidates.len() {
                    for w in 0..workload_count {
                        cells.push((c, w));
                    }
                }
            }
            CellOrder::WorkloadMajor => {
                for w in 0..workload_count {
                    for c in 0..candidates.len() {
                        cells.push((c, w));
                    }
                }
            }
        }

        let measure_cell = |c: usize, w: usize| -> Vec<Row> {
            let cell = Cell {
                runner: self,
                candidate: candidates[c].clone(),
                workload: figure.spec.workloads.get(w).cloned(),
                candidate_index: c,
                workload_index: w,
            };
            let mut span = self.obs.span("cell");
            let rows = (figure.measure)(&cell);
            span.attr("figure", figure.spec.name.as_str());
            span.attr("candidate", c as u64);
            span.attr("workload", w as u64);
            span.attr("rows", rows.len() as u64);
            span.close();
            rows
        };
        let mut row_groups: Vec<Vec<Row>> = Vec::with_capacity(cells.len());
        for batch in cells.chunks(self.parallelism.max(1)) {
            let batch_rows: Vec<Vec<Row>> = if batch.len() == 1 || self.parallelism <= 1 {
                batch.iter().map(|&(c, w)| measure_cell(c, w)).collect()
            } else {
                WorkerPool::global().run(
                    batch
                        .iter()
                        .map(|&(c, w)| {
                            let measure_cell = &measure_cell;
                            Box::new(move || measure_cell(c, w))
                                as Box<dyn FnOnce() -> Vec<Row> + Send + '_>
                        })
                        .collect(),
                )
            };
            row_groups.extend(batch_rows);
        }
        let mut rows: Vec<Row> = row_groups.into_iter().flatten().collect();
        if let Some(postprocess) = &figure.postprocess {
            postprocess(&mut rows);
        }
        Ok(RunOutput {
            name: figure.spec.name.clone(),
            header: figure.header.clone(),
            rows,
            candidates,
        })
    }

    /// Check the spec's declarative assertions, then the figure's code
    /// check.
    pub fn verify(&self, figure: &Figure, output: &RunOutput) -> Result<(), String> {
        check_assertions(output, &figure.spec.assertions)?;
        if let Some(check) = &figure.check {
            check(output, self)?;
        }
        Ok(())
    }
}

/// Evaluate declarative assertions against an output's rendered rows.
pub fn check_assertions(output: &RunOutput, assertions: &[Assertion]) -> Result<(), String> {
    let columns: Vec<&str> = output.header.split(',').collect();
    let index = |name: &str| -> Result<usize, String> {
        columns
            .iter()
            .position(|c| *c == name)
            .ok_or_else(|| format!("{}: no column {name:?}", output.name))
    };
    let rendered: Vec<Vec<String>> = output.rows.iter().map(|r| r.columns()).collect();
    for assertion in assertions {
        match assertion {
            Assertion::MinRows { count } => {
                if rendered.len() < *count {
                    return Err(format!(
                        "{}: expected at least {count} rows, got {}",
                        output.name,
                        rendered.len()
                    ));
                }
            }
            Assertion::ColumnPositive { column } => {
                let idx = index(column)?;
                for (i, row) in rendered.iter().enumerate() {
                    let value: f64 = row[idx]
                        .parse()
                        .map_err(|_| format!("{}: row {i} {column}={:?}", output.name, row[idx]))?;
                    if value <= 0.0 {
                        return Err(format!(
                            "{}: row {i} has non-positive {column} = {value}",
                            output.name
                        ));
                    }
                }
            }
            Assertion::ColumnAllTrue { column } => {
                let idx = index(column)?;
                for (i, row) in rendered.iter().enumerate() {
                    if row[idx] != "true" {
                        return Err(format!(
                            "{}: row {i} has {column} = {:?}, expected true",
                            output.name, row[idx]
                        ));
                    }
                }
            }
            Assertion::GroupedLess {
                keys,
                pivot,
                lesser,
                greater,
                column,
                filters,
            } => {
                let key_idx: Vec<usize> =
                    keys.iter().map(|k| index(k)).collect::<Result<_, _>>()?;
                let pivot_idx = index(pivot)?;
                let value_idx = index(column)?;
                let filter_idx: Vec<(usize, &String)> = filters
                    .iter()
                    .map(|(c, v)| Ok((index(c)?, v)))
                    .collect::<Result<_, String>>()?;
                use std::collections::HashMap;
                let mut groups: HashMap<Vec<&str>, (Vec<f64>, Vec<f64>)> = HashMap::new();
                for row in &rendered {
                    if filter_idx.iter().any(|&(idx, v)| &row[idx] != v) {
                        continue;
                    }
                    let key: Vec<&str> = key_idx.iter().map(|&i| row[i].as_str()).collect();
                    let value: f64 = row[value_idx].parse().map_err(|_| {
                        format!("{}: unparsable {column} {:?}", output.name, row[value_idx])
                    })?;
                    let entry = groups.entry(key).or_default();
                    if row[pivot_idx].starts_with(lesser.as_str()) {
                        entry.0.push(value);
                    } else if row[pivot_idx].starts_with(greater.as_str()) {
                        entry.1.push(value);
                    }
                }
                if groups.is_empty() {
                    return Err(format!(
                        "{}: grouped_less on {column} matched no rows",
                        output.name
                    ));
                }
                for (key, (lo, hi)) in &groups {
                    if lo.is_empty() || hi.is_empty() {
                        return Err(format!(
                            "{}: group {key:?} is missing a {lesser:?} or {greater:?} row",
                            output.name
                        ));
                    }
                    let worst_lo = lo.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let best_hi = hi.iter().copied().fold(f64::INFINITY, f64::min);
                    if worst_lo >= best_hi {
                        return Err(format!(
                            "{}: group {key:?}: {lesser} {column} {worst_lo} is not below {greater} {best_hi}",
                            output.name
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}
