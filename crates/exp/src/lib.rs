//! # netsmith-exp
//!
//! The declarative experiment API over the NetSmith pipeline.
//!
//! The paper's contribution is an *evaluation matrix* — candidates ×
//! routing schemes × traffic patterns × loads — and every figure of the
//! reproduction is one slice of it.  This crate turns that matrix into
//! data:
//!
//! * [`ExperimentSpec`] declares candidates (expert topologies by name, or
//!   synthesis objectives), workloads (a pattern or a replayed trace ×
//!   loads × [`SimProfile`]) and declarative [`Assertion`]s, and
//!   round-trips through JSON.
//! * [`Runner`] resolves candidates through a shared [`SuiteCache`] — each
//!   synthesis spec is discovered at most once per suite run, keyed by its
//!   objective decomposition, layout, class, seed and budget — prepares
//!   each candidate once (typed [`PipelineError`]s on failure), executes
//!   cells in parallel, and collects structured [`Row`]s.
//! * [`cli`] gives every figure binary uniform `--quick` / `--json` /
//!   `--seed` handling, with `NETSMITH_EVALS` / `NETSMITH_WORKERS` as
//!   environment fallbacks via [`RunProfile`].
//!
//! ## Example: a 2-candidate × 3-workload experiment
//!
//! ```
//! use netsmith_exp::prelude::*;
//! use netsmith_topo::metrics::weighted_average_hops;
//! use netsmith_topo::traffic::TrafficPattern;
//! use netsmith_trace::TraceStats;
//!
//! // Declare the matrix: one expert baseline and one synthesized
//! // candidate, each scored under two traffic patterns and one
//! // generated trace replayed deterministically.
//! let mut spec = ExperimentSpec::new("doc_example");
//! spec.classes = vec![LinkClass::Medium];
//! spec.candidates = vec![
//!     CandidateSpec::expert("folded-torus"),
//!     CandidateSpec::synth(ObjectiveSpec::LatOp),
//! ];
//! spec.workloads = vec![
//!     WorkloadSpec::new(TrafficPattern::UniformRandom, vec![], SimProfile::Quick),
//!     WorkloadSpec::new(TrafficPattern::Shuffle, vec![], SimProfile::Quick),
//!     WorkloadSpec::trace(
//!         TraceSpec::generator("onoff-hotspot", 512, 7),
//!         vec![],
//!         SimProfile::Quick,
//!     ),
//! ];
//! spec.assertions = vec![
//!     Assertion::MinRows { count: 6 },
//!     Assertion::ColumnPositive { column: "weighted_hops".into() },
//! ];
//!
//! // Specs are data: they round-trip through JSON.
//! let replayed = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
//! assert_eq!(replayed, spec);
//!
//! // Attach the measurement (the code half of a figure) and run.  Both
//! // workload sources yield a demand matrix: patterns analytically,
//! // traces through their replay statistics.
//! let figure = Figure::new(
//!     spec,
//!     "topology,workload,weighted_hops",
//!     |cell: &Cell<'_>| {
//!         let network = cell.candidate.network();
//!         let workload = cell.workload.as_ref().unwrap();
//!         let demand = match &workload.source {
//!             WorkloadSource::Pattern(pattern) => {
//!                 pattern.demand_matrix(&cell.candidate.layout)
//!             }
//!             WorkloadSource::Trace(trace) => {
//!                 let trace = trace
//!                     .resolve(cell.candidate.layout.num_routers())
//!                     .unwrap();
//!                 TraceStats::of(&trace).demand_matrix().clone()
//!             }
//!             // Serving workloads drive their own lifetime loop; see
//!             // `WorkloadSpec::serving` and the fig16 harness.
//!             WorkloadSource::Serving(_) => unreachable!(),
//!         };
//!         vec![Row::new()
//!             .str(network.topology.name())
//!             .str(workload.name())
//!             .float(weighted_average_hops(&network.topology, &demand), 3)]
//!     },
//! );
//! let cache = SuiteCache::new();
//! let profile = RunProfile { evals: 400, workers: 1, ..RunProfile::default() };
//! let runner = Runner::new(profile, &cache);
//! let output = runner.run(&figure).unwrap();
//! runner.verify(&figure, &output).unwrap();
//! assert_eq!(output.rows.len(), 6);
//! assert_eq!(cache.discoveries(), 1); // NS-LatOp discovered once, reused
//! assert!(output.float(0, "weighted_hops").unwrap() > 1.0);
//! ```
//!
//! [`PipelineError`]: netsmith_topo::PipelineError

pub mod cache;
pub mod cli;
pub mod row;
pub mod runner;
pub mod spec;

pub use cache::{DiscoveryRequest, SuiteCache};
pub use cli::{CliOptions, RunProfile, DEFAULT_SEED};
/// The shared JSON tree (now home in `netsmith-topo`; re-exported so
/// `netsmith_exp::json::Json` keeps working).
pub use netsmith_topo::json;
pub use netsmith_topo::json::Json;
pub use row::{OutputMode, Row, Value};
pub use runner::{Cell, CellOrder, Figure, ResolvedCandidate, RunOutput, Runner, VC_BUDGET};
pub use spec::{
    expert_by_name, Assertion, CandidateSpec, ExperimentSpec, LayoutSpec, ObjectiveSpec,
    ServingSpec, SimProfile, TraceSpec, WorkloadSource, WorkloadSpec,
};

/// Commonly used items for figure definitions.
pub mod prelude {
    pub use crate::cache::SuiteCache;
    pub use crate::cli::{RunProfile, DEFAULT_SEED};
    pub use crate::row::{OutputMode, Row, Value};
    pub use crate::runner::{Cell, CellOrder, Figure, RunOutput, Runner, VC_BUDGET};
    pub use crate::spec::{
        Assertion, CandidateSpec, ExperimentSpec, LayoutSpec, ObjectiveSpec, ServingSpec,
        SimProfile, TraceSpec, WorkloadSource, WorkloadSpec,
    };
    pub use netsmith_topo::{LinkClass, PipelineError};
}
