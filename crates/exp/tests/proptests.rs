//! Property tests for the experiment API: randomly generated
//! [`ExperimentSpec`]s must round-trip through JSON bit-exactly
//! (spec → JSON → spec ≡ identity), including float weights, hotspot
//! patterns and nested composite objectives.

use netsmith_exp::{
    Assertion, CandidateSpec, ExperimentSpec, LayoutSpec, ObjectiveSpec, ServingSpec, SimProfile,
    TraceSpec, WorkloadSpec,
};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::LinkClass;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_pattern(rng: &mut SmallRng) -> TrafficPattern {
    match rng.gen_range(0..8) {
        0 => TrafficPattern::UniformRandom,
        1 => TrafficPattern::Shuffle,
        2 => TrafficPattern::Transpose,
        3 => TrafficPattern::Memory,
        4 => TrafficPattern::Coherence,
        5 => TrafficPattern::BitComplement,
        6 => TrafficPattern::Tornado,
        _ => TrafficPattern::Hotspot {
            targets: (0..rng.gen_range(1..4))
                .map(|_| rng.gen_range(0..20))
                .collect(),
            fraction: rng.gen_range(0.0..1.0),
        },
    }
}

fn random_serving(rng: &mut SmallRng) -> ServingSpec {
    ServingSpec {
        epochs: rng.gen_range(8..512),
        period_epochs: rng.gen_range(4..128),
        expected_faults: rng.gen_range(0.0..4.0),
        low_load_threshold: rng.gen_range(0.02..0.3),
        // Json numbers are f64: keep seeds inside the exactly
        // representable integer range so the spec round-trips bit-exactly.
        seed: rng.gen_range(0..1u64 << 50),
        tape_seed: rng.gen_range(0..1u64 << 50),
    }
}

fn random_trace(rng: &mut SmallRng) -> TraceSpec {
    if rng.gen_bool(0.5) {
        TraceSpec::File {
            path: format!("traces/workload_{}.nstr", rng.gen_range(0..100)),
        }
    } else {
        let models = ["pointer-chase", "onoff-hotspot"];
        TraceSpec::Generator {
            model: models[rng.gen_range(0usize..2)].into(),
            horizon: rng.gen_range(1..1_000_000),
            seed: rng.gen_range(0..1_000_000),
        }
    }
}

fn random_objective(rng: &mut SmallRng, depth: usize) -> ObjectiveSpec {
    let variants = if depth == 0 { 7 } else { 6 };
    match rng.gen_range(0..variants) {
        0 => ObjectiveSpec::LatOp,
        1 => ObjectiveSpec::SCOp,
        2 => ObjectiveSpec::FaultOp,
        3 => ObjectiveSpec::EnergyOp {
            edp_weight: rng.gen_range(0.0..100.0),
        },
        4 => ObjectiveSpec::PatternLatOp {
            pattern: random_pattern(rng),
        },
        5 => ObjectiveSpec::TraceLatOp {
            trace: random_trace(rng),
        },
        _ => ObjectiveSpec::Composite {
            parts: (0..rng.gen_range(1..4))
                .map(|_| (rng.gen_range(0.0..10.0), random_objective(rng, depth + 1)))
                .collect(),
        },
    }
}

fn random_candidate(rng: &mut SmallRng) -> CandidateSpec {
    let classes = [LinkClass::Small, LinkClass::Medium, LinkClass::Large];
    let experts = [
        "mesh",
        "folded-torus",
        "kite-medium",
        "butter-donut",
        "double-butterfly",
    ];
    match rng.gen_range(0..4) {
        0 => CandidateSpec::ExpertBaselines,
        1 => CandidateSpec::Expert {
            name: experts[rng.gen_range(0usize..experts.len())].into(),
            only_class: if rng.gen_bool(0.5) {
                Some(classes[rng.gen_range(0usize..3)])
            } else {
                None
            },
        },
        _ => CandidateSpec::Synth {
            objective: random_objective(rng, 0),
            symmetric: rng.gen_bool(0.3),
        },
    }
}

fn random_spec(seed: u64) -> ExperimentSpec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let layouts = [LayoutSpec::Noi4x5, LayoutSpec::Noi6x5, LayoutSpec::Noi8x6];
    let classes = [LinkClass::Small, LinkClass::Medium, LinkClass::Large];
    let sims = [
        SimProfile::ClassDefault,
        SimProfile::Quick,
        SimProfile::QuickClassClock,
        SimProfile::ClassWithWindows {
            warmup: 500,
            measure: 3_000,
            drain: 1_500,
        },
    ];
    ExperimentSpec {
        name: format!("spec_{seed}"),
        layouts: (0..rng.gen_range(1..3))
            .map(|_| layouts[rng.gen_range(0usize..3)])
            .collect(),
        classes: (0..rng.gen_range(1..4))
            .map(|_| classes[rng.gen_range(0usize..3)])
            .collect(),
        candidates: (0..rng.gen_range(1..5))
            .map(|_| random_candidate(&mut rng))
            .collect(),
        scheme_override: if rng.gen_bool(0.25) {
            Some(vec![
                netsmith::pipeline::RoutingScheme::Ndbt,
                netsmith::pipeline::RoutingScheme::Mclb,
            ])
        } else {
            None
        },
        workloads: (0..rng.gen_range(0..3))
            .map(|_| {
                let loads: Vec<f64> = (0..rng.gen_range(0..5))
                    .map(|_| rng.gen_range(0.0..1.2))
                    .collect();
                let sim = sims[rng.gen_range(0usize..sims.len())];
                let mut w = match rng.gen_range(0u8..10) {
                    0..=2 => WorkloadSpec::trace(random_trace(&mut rng), loads, sim),
                    3..=4 => WorkloadSpec::serving(random_serving(&mut rng), sim),
                    _ => WorkloadSpec::new(random_pattern(&mut rng), loads, sim),
                };
                if rng.gen_bool(0.5) {
                    w = w.labeled("custom \"label\" with, commas");
                }
                w
            })
            .collect(),
        assertions: (0..rng.gen_range(0..3))
            .map(|_| match rng.gen_range(0..4) {
                0 => Assertion::MinRows {
                    count: rng.gen_range(0..100),
                },
                1 => Assertion::ColumnPositive {
                    column: "latency_ns".into(),
                },
                2 => Assertion::ColumnAllTrue {
                    column: "routable".into(),
                },
                _ => Assertion::GroupedLess {
                    keys: vec!["class".into(), "topology".into()],
                    pivot: "policy".into(),
                    lesser: "link_sleep".into(),
                    greater: "always_on".into(),
                    column: "total_mw".into(),
                    filters: vec![("load".into(), format!("{:.2}", rng.gen_range(0.0..1.0)))],
                },
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// spec → JSON → spec is the identity, bit-for-bit (floats included).
    #[test]
    fn experiment_spec_round_trips_through_json(seed in 0u64..100_000) {
        let spec = random_spec(seed);
        let text = spec.to_json_string();
        let back = ExperimentSpec::from_json_str(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{text}"));
        prop_assert_eq!(&back, &spec, "seed {}", seed);
        // Printing the re-parsed spec is also stable (canonical form).
        prop_assert_eq!(back.to_json_string(), text);
    }
}
