//! Optimization objectives for topology generation.
//!
//! The paper focuses on two objectives — latency (average/total hop count,
//! "LatOp") and sparsest-cut bandwidth ("SCOp") — and notes that NetSmith
//! readily accepts other objectives.  The search engines need a *scalar
//! score to minimize*; this module defines how each objective maps a
//! candidate topology to such a score, including the connectivity penalty
//! that lets the annealer recover from transiently disconnected states.
//!
//! Every objective — the legacy enum variants and arbitrary
//! [`Objective::Composite`]s alike — decomposes into weighted
//! [`ObjectiveTerm`]s ([`Objective::decomposition`]) scored over one shared
//! [`TopoAnalysis`], so exact evaluation, the annealer's cut-pool
//! surrogate, and the combinatorial lower bound all run through a single
//! code path ([`Objective::evaluate_analysis`] / [`Objective::lower_bound`]).

use crate::problem::GenerationProblem;
use crate::terms::{CutEval, ObjectiveTerm, Term, TermContext, WeightedTerm};
use netsmith_topo::analysis::TopoAnalysis;
use netsmith_topo::traffic::DemandMatrix;
use netsmith_topo::Topology;
use serde::{Deserialize, Serialize};

/// Penalty per unreachable ordered pair, large enough that any connected
/// topology scores better than any disconnected one.
const DISCONNECTION_PENALTY: f64 = 1.0e9;

/// Optimization objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize the total (equivalently average) hop count under uniform
    /// all-to-all traffic (objective O1 of Table I).
    LatOp,
    /// Maximize the sparsest-cut bandwidth (objective O2 of Table I), with
    /// total hop count as a tiebreak.
    SCOp,
    /// Minimize the demand-weighted hop count for an arbitrary traffic
    /// pattern (used for the paper's shuffle-optimized topologies).
    PatternLatOp(DemandMatrix),
    /// Weighted combination: `latency_weight * total_hops -
    /// bandwidth_weight * scaled_sparsest_cut`.  Exposes the latency/
    /// bandwidth trade-off knob that populates the Pareto frontier of
    /// Figure 1.
    Combined {
        latency_weight: f64,
        bandwidth_weight: f64,
    },
    /// Minimize an analytic energy proxy: static (leakage) power of the
    /// link/router inventory plus `edp_weight` times an energy-delay
    /// product built from the average hop count and the wire length each
    /// traversal drives.  Lets the annealer synthesize energy-optimal
    /// topologies for the `netsmith-energy` subsystem; the proxy's
    /// technology constants mirror `netsmith-power`'s defaults.
    EnergyOp { edp_weight: f64 },
    /// Fault-tolerant latency optimization for the `netsmith-fault`
    /// subsystem: total hop count (the LatOp term) plus
    /// `articulation_penalty` per *critical* full-duplex link (a link
    /// whose failure breaks strong connectivity — see
    /// [`netsmith_topo::resilience::critical_link_pairs`]), minus
    /// `spare_capacity_weight` times the spare min-cut capacity proxy
    /// [`netsmith_topo::resilience::min_directional_degree`] (every
    /// router's in/out degree is an isolating cut, so the weakest router's
    /// directional degree bounds how many link faults the fabric can
    /// absorb around it).  With the default weights the annealer drives
    /// the critical-link count to zero — any single link failure
    /// re-routes — while still competing with LatOp on hops.
    FaultOp {
        /// Score penalty per critical (articulation) duplex link.  The
        /// default of `1e5` dominates any achievable hop-count difference,
        /// making "no single points of failure" a soft constraint the
        /// annealer satisfies before trading hops.
        articulation_penalty: f64,
        /// Reward per unit of spare min-cut capacity (the minimum
        /// directional degree over routers), in total-hop units.
        spare_capacity_weight: f64,
    },
    /// An arbitrary non-negative weighted sum of objective terms — the
    /// general form every other variant is a special case of.  Build with
    /// [`Objective::composite`], which rejects negative/non-finite weights;
    /// constructing (or deserializing) the variant directly bypasses that
    /// check, and a negative weight makes [`Objective::lower_bound`]
    /// inadmissible.
    Composite(Vec<WeightedTerm>),
}

impl Objective {
    /// The `FaultOp` weighting used by the `fig13_resilience` harness:
    /// articulation links are effectively forbidden and each unit of spare
    /// min-cut capacity is worth 40 total hops (about 0.1 average hops on
    /// the 20-router layout).
    pub fn fault_op_default() -> Self {
        Objective::FaultOp {
            articulation_penalty: 1.0e5,
            spare_capacity_weight: 40.0,
        }
    }

    /// A composite objective from `(weight, term)` pairs.  Panics when a
    /// weight is negative or non-finite (the composed lower bound would no
    /// longer be admissible) or when no terms are given.
    pub fn composite(terms: impl IntoIterator<Item = (f64, Term)>) -> Self {
        let terms: Vec<WeightedTerm> = terms
            .into_iter()
            .map(|(weight, term)| WeightedTerm::new(weight, term))
            .collect();
        assert!(!terms.is_empty(), "composite objectives need >= 1 term");
        Objective::Composite(terms)
    }

    /// The weighted-term decomposition every objective scores through.
    /// Legacy variants map onto the canonical terms; `Composite` is its own
    /// decomposition.
    ///
    /// Legacy variants are decomposed verbatim — their struct fields accept
    /// any weight (as they always did), so only [`Objective::composite`]
    /// enforces the non-negativity that keeps composed lower bounds
    /// admissible.
    pub fn decomposition(&self) -> Vec<WeightedTerm> {
        let wt = |weight: f64, term: Term| WeightedTerm { weight, term };
        match self {
            Objective::LatOp => vec![wt(1.0, Term::Hops)],
            Objective::SCOp => vec![wt(1.0, Term::SparsestCut), wt(1.0, Term::Hops)],
            Objective::PatternLatOp(demand) => {
                vec![wt(1.0, Term::PatternHops(demand.clone()))]
            }
            Objective::Combined {
                latency_weight,
                bandwidth_weight,
            } => vec![
                wt(*latency_weight, Term::Hops),
                wt(*bandwidth_weight, Term::SparsestCut),
            ],
            Objective::EnergyOp { edp_weight } => vec![wt(
                1.0,
                Term::EnergyProxy {
                    edp_weight: *edp_weight,
                },
            )],
            Objective::FaultOp {
                articulation_penalty,
                spare_capacity_weight,
            } => vec![
                wt(1.0, Term::Hops),
                wt(*articulation_penalty, Term::CriticalLinks),
                wt(*spare_capacity_weight, Term::SpareCapacity),
            ],
            Objective::Composite(terms) => terms.clone(),
        }
    }

    /// Short name used in generated topology names ("LatOp", "SCOp", …).
    /// Weighted objectives encode their weights so CSV rows from different
    /// weight points stay distinguishable.
    pub fn short_name(&self) -> String {
        match self {
            Objective::LatOp => "LatOp".into(),
            Objective::SCOp => "SCOp".into(),
            Objective::PatternLatOp(_) => "ShufOpt".into(),
            Objective::Combined {
                latency_weight,
                bandwidth_weight,
            } => format!(
                "Combined[L{}+B{}]",
                crate::terms::fmt_weight(*latency_weight),
                crate::terms::fmt_weight(*bandwidth_weight)
            ),
            Objective::EnergyOp { .. } => "EnergyOp".into(),
            Objective::FaultOp { .. } => "FaultOp".into(),
            Objective::Composite(terms) => {
                let labels: Vec<String> = terms.iter().map(WeightedTerm::label).collect();
                format!("Mix[{}]", labels.join("+"))
            }
        }
    }

    /// Does the objective need sparsest-cut evaluations?
    pub fn needs_cut(&self) -> bool {
        match self {
            Objective::SCOp | Objective::Combined { .. } => true,
            Objective::Composite(terms) => terms.iter().any(|wt| wt.term.needs_cut()),
            _ => false,
        }
    }

    /// Admissible lower bound on the objective score over every topology
    /// satisfying `problem`'s radix and link-length constraints: the
    /// weighted sum of the per-term bounds.
    pub fn lower_bound(&self, problem: &GenerationProblem) -> f64 {
        self.decomposition()
            .iter()
            .map(|wt| wt.weight * wt.term.lower_bound(problem))
            .sum()
    }

    /// Evaluate a topology exactly.  Lower scores are better for every
    /// objective.
    pub fn evaluate(&self, topo: &Topology) -> ObjectiveValue {
        self.evaluate_analysis(topo, &TopoAnalysis::new(topo), CutEval::Exact)
    }

    /// Evaluate using a cheaper surrogate for the cut term: the minimum
    /// normalized bandwidth over a fixed pool of cuts (each a membership
    /// vector).  The annealer maintains such a pool as a cutting-plane-style
    /// approximation and periodically refreshes it with full heuristic cut
    /// searches.
    pub fn evaluate_with_cut_pool(
        &self,
        topo: &Topology,
        cut_pool: &[Vec<bool>],
    ) -> ObjectiveValue {
        self.evaluate_analysis(topo, &TopoAnalysis::new(topo), CutEval::Pool(cut_pool))
    }

    /// Evaluate against a pre-computed (possibly delta-updated) analysis —
    /// the single scoring path shared by [`Objective::evaluate`],
    /// [`Objective::evaluate_with_cut_pool`] and the annealer's cached move
    /// evaluation.  `analysis` must describe `topo`.
    pub fn evaluate_analysis(
        &self,
        topo: &Topology,
        analysis: &TopoAnalysis,
        cut: CutEval<'_>,
    ) -> ObjectiveValue {
        evaluate_weighted(&self.decomposition(), topo, analysis, cut)
    }
}

/// Score a weighted-term list against a cached analysis.  This is the one
/// code path behind every evaluation mode; the annealer calls it directly
/// with a decomposition computed once per run.
pub fn evaluate_weighted(
    terms: &[WeightedTerm],
    topo: &Topology,
    analysis: &TopoAnalysis,
    cut: CutEval<'_>,
) -> ObjectiveValue {
    let unreachable = analysis.unreachable_pairs();
    if unreachable > 0 {
        return ObjectiveValue {
            score: DISCONNECTION_PENALTY * unreachable as f64,
            total_hops: None,
            average_hops: f64::INFINITY,
            sparsest_cut: 0.0,
            connected: false,
        };
    }
    let needs_cut = terms.iter().any(|wt| wt.term.needs_cut());
    let sparsest_cut = crate::terms::resolve_cut(topo, cut, needs_cut);
    let ctx = TermContext {
        topology: topo,
        analysis,
        sparsest_cut,
    };
    let mut score = 0.0;
    for wt in terms {
        score += wt.weight * wt.term.score(&ctx);
    }
    ObjectiveValue {
        score,
        total_hops: analysis.total_hops(),
        average_hops: analysis.average_hops(),
        sparsest_cut,
        connected: true,
    }
}

/// Result of evaluating an objective on a topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveValue {
    /// Scalar score; lower is better for every objective.
    pub score: f64,
    /// Total hop count (None when disconnected).
    pub total_hops: Option<u64>,
    /// Average hop count.
    pub average_hops: f64,
    /// Sparsest-cut normalized bandwidth (0 when not computed).
    pub sparsest_cut: f64,
    /// Whether the topology was strongly connected.
    pub connected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_topo::expert;
    use netsmith_topo::traffic::TrafficPattern;
    use netsmith_topo::Layout;
    use netsmith_topo::LinkClass;

    #[test]
    fn latop_prefers_lower_hop_topologies() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let kite = expert::kite_small(&layout);
        let o = Objective::LatOp;
        assert!(o.evaluate(&kite).score < o.evaluate(&mesh).score);
    }

    #[test]
    fn scop_prefers_higher_cut_topologies() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let torus = expert::folded_torus(&layout);
        let o = Objective::SCOp;
        assert!(o.evaluate(&torus).score < o.evaluate(&mesh).score);
    }

    #[test]
    fn disconnected_topologies_are_heavily_penalized() {
        let layout = Layout::noi_4x5();
        let empty = netsmith_topo::Topology::empty("none", layout.clone(), LinkClass::Small);
        let mesh = expert::mesh(&layout);
        for o in [Objective::LatOp, Objective::SCOp] {
            let bad = o.evaluate(&empty);
            assert!(!bad.connected);
            assert!(bad.score > o.evaluate(&mesh).score * 1e3);
        }
    }

    #[test]
    fn pattern_objective_uses_the_demand_matrix() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let shuffle = TrafficPattern::Shuffle.demand_matrix(&layout);
        let uniform = Objective::LatOp.evaluate(&mesh);
        let pattern = Objective::PatternLatOp(shuffle).evaluate(&mesh);
        // Shuffle exercises longer-distance pairs than the uniform average
        // on a mesh, so the scores must differ.
        assert!((uniform.score - pattern.score).abs() > 1e-6);
    }

    #[test]
    fn cut_pool_never_underestimates_the_true_cut() {
        // The pool is a subset of all cuts, so its minimum is an upper bound
        // on the true sparsest cut.
        let layout = Layout::noi_4x5();
        let torus = expert::folded_torus(&layout);
        let exact = Objective::SCOp.evaluate(&torus);
        let pool: Vec<Vec<bool>> = vec![
            (0..20).map(|i| i < 10).collect(),
            (0..20).map(|i| i % 2 == 0).collect(),
        ];
        let pooled = Objective::SCOp.evaluate_with_cut_pool(&torus, &pool);
        assert!(pooled.sparsest_cut >= exact.sparsest_cut - 1e-12);
    }

    #[test]
    fn combined_objective_interpolates() {
        let layout = Layout::noi_4x5();
        let kite = expert::kite_medium(&layout);
        let pure_lat = Objective::Combined {
            latency_weight: 1.0,
            bandwidth_weight: 0.0,
        };
        let v = pure_lat.evaluate(&kite);
        let l = Objective::LatOp.evaluate(&kite);
        assert!((v.score - l.score).abs() < 1e-9);
    }

    #[test]
    fn short_names_are_stable() {
        assert_eq!(Objective::LatOp.short_name(), "LatOp");
        assert_eq!(Objective::SCOp.short_name(), "SCOp");
        assert_eq!(
            Objective::EnergyOp { edp_weight: 1.0 }.short_name(),
            "EnergyOp"
        );
        assert_eq!(Objective::fault_op_default().short_name(), "FaultOp");
    }

    #[test]
    fn combined_short_name_encodes_weights() {
        // Different weight points must produce distinguishable CSV rows.
        let a = Objective::Combined {
            latency_weight: 1.0,
            bandwidth_weight: 0.5,
        };
        let b = Objective::Combined {
            latency_weight: 2.0,
            bandwidth_weight: 0.5,
        };
        assert_eq!(a.short_name(), "Combined[L1+B0.5]");
        assert_eq!(b.short_name(), "Combined[L2+B0.5]");
        assert_ne!(a.short_name(), b.short_name());
        assert!(!a.short_name().contains(','), "names must stay CSV-safe");
    }

    #[test]
    fn composite_short_name_lists_weighted_terms() {
        let o = Objective::composite([
            (1.0, Term::Hops),
            (0.25, Term::EnergyProxy { edp_weight: 5.0 }),
        ]);
        assert_eq!(o.short_name(), "Mix[1xHops+0.25xEnergy]");
        assert!(!o.short_name().contains(','));
    }

    #[test]
    fn legacy_variants_match_their_decomposition() {
        // Scoring a legacy variant and its explicit composite decomposition
        // must agree exactly — they share the same code path.
        let layout = Layout::noi_4x5();
        let shuffle = TrafficPattern::Shuffle.demand_matrix(&layout);
        let objectives = [
            Objective::LatOp,
            Objective::SCOp,
            Objective::PatternLatOp(shuffle),
            Objective::Combined {
                latency_weight: 2.0,
                bandwidth_weight: 0.5,
            },
            Objective::EnergyOp { edp_weight: 5.0 },
            Objective::fault_op_default(),
        ];
        for topo in [expert::mesh(&layout), expert::kite_large(&layout)] {
            for o in &objectives {
                let direct = o.evaluate(&topo);
                let composite = Objective::Composite(o.decomposition()).evaluate(&topo);
                assert_eq!(direct.score, composite.score, "{}", o.short_name());
                assert_eq!(direct.sparsest_cut, composite.sparsest_cut);
            }
        }
    }

    #[test]
    fn legacy_variants_accept_any_weight_sign() {
        // The legacy struct variants never validated their weights; the
        // composite constructor's non-negativity check must not leak into
        // their evaluation path.
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let odd = Objective::Combined {
            latency_weight: 1.0,
            bandwidth_weight: -0.5,
        };
        let v = odd.evaluate(&mesh);
        assert!(v.connected);
        assert!(v.score.is_finite());
        let odd_fault = Objective::FaultOp {
            articulation_penalty: 1.0,
            spare_capacity_weight: -40.0,
        };
        assert!(odd_fault.evaluate(&mesh).score.is_finite());
    }

    #[test]
    fn composite_constructor_preserves_terms_and_order() {
        let o = Objective::composite([
            (1.0, Term::Hops),
            (0.5, Term::SparsestCut),
            (40.0, Term::SpareCapacity),
        ]);
        let decomposition = o.decomposition();
        assert_eq!(decomposition.len(), 3);
        assert_eq!(decomposition[0], WeightedTerm::new(1.0, Term::Hops));
        assert_eq!(decomposition[2].weight, 40.0);
        assert!(o.needs_cut(), "cut term must propagate needs_cut");
        assert!(!Objective::composite([(1.0, Term::Hops)]).needs_cut());
    }

    #[test]
    fn faultop_penalizes_critical_links() {
        // Removing the (0, 1) pair from the mesh leaves corner router 0
        // hanging off the single (0, 5) pair, which becomes critical.
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let mut bridged = mesh.clone();
        bridged.remove_link(0, 1);
        bridged.remove_link(1, 0);
        assert!(netsmith_topo::resilience::critical_link_pairs(&mesh).is_empty());
        assert!(!netsmith_topo::resilience::critical_link_pairs(&bridged).is_empty());
        let o = Objective::fault_op_default();
        let healthy = o.evaluate(&mesh);
        let fragile = o.evaluate(&bridged);
        // The articulation penalty dwarfs any hop-count difference.
        assert!(fragile.score > healthy.score + 1e4);
    }

    #[test]
    fn faultop_rewards_spare_min_cut_capacity() {
        // With the articulation penalty off, the spare-capacity reward must
        // separate the full mesh (weakest router keeps 2 links) from the
        // degraded one (weakest router down to 1 link) by more than their
        // hop-count difference.
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let mut degraded = mesh.clone();
        degraded.remove_link(0, 1);
        degraded.remove_link(1, 0);
        let o = Objective::FaultOp {
            articulation_penalty: 0.0,
            spare_capacity_weight: 1.0e4,
        };
        assert!(o.evaluate(&mesh).score < o.evaluate(&degraded).score);
    }

    #[test]
    fn faultop_penalizes_disconnection() {
        let layout = Layout::noi_4x5();
        let empty = netsmith_topo::Topology::empty("none", layout.clone(), LinkClass::Small);
        let o = Objective::fault_op_default();
        let bad = o.evaluate(&empty);
        assert!(!bad.connected);
        assert!(bad.score > o.evaluate(&expert::mesh(&layout)).score.abs() * 1e3);
    }

    #[test]
    fn energyop_prefers_sparser_wiring_at_zero_edp_weight() {
        // With the EDP term switched off the proxy is pure static power, so
        // the mesh (short links only) must beat the wire-hungry torus.
        let layout = Layout::noi_4x5();
        let o = Objective::EnergyOp { edp_weight: 0.0 };
        let mesh = o.evaluate(&expert::mesh(&layout));
        let torus = o.evaluate(&expert::folded_torus(&layout));
        assert!(mesh.score < torus.score);
        assert!(mesh.connected && torus.connected);
    }

    #[test]
    fn energyop_edp_weight_rewards_lower_hop_counts() {
        // Kite-Large has far fewer average hops than the mesh; with a large
        // enough EDP weight the delay term dominates static wire power and
        // the ordering flips relative to the pure-static proxy.
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let kite = expert::kite_large(&layout);
        let static_only = Objective::EnergyOp { edp_weight: 0.0 };
        assert!(static_only.evaluate(&mesh).score < static_only.evaluate(&kite).score);
        let edp_heavy = Objective::EnergyOp { edp_weight: 50.0 };
        assert!(edp_heavy.evaluate(&kite).score < edp_heavy.evaluate(&mesh).score);
    }

    #[test]
    fn energyop_penalizes_disconnection() {
        let layout = Layout::noi_4x5();
        let empty = netsmith_topo::Topology::empty("none", layout.clone(), LinkClass::Small);
        let o = Objective::EnergyOp { edp_weight: 1.0 };
        let bad = o.evaluate(&empty);
        assert!(!bad.connected);
        assert!(bad.score > o.evaluate(&expert::mesh(&layout)).score * 1e3);
    }
}
