//! Optimization objectives for topology generation.
//!
//! The paper focuses on two objectives — latency (average/total hop count,
//! "LatOp") and sparsest-cut bandwidth ("SCOp") — and notes that NetSmith
//! readily accepts other traffic patterns as inputs (the shuffle-optimized
//! topologies of Figure 10).  The search engines need a *scalar score to
//! minimize*; this module defines how each objective maps a candidate
//! topology to such a score, including the connectivity penalty that lets
//! the annealer recover from transiently disconnected states.

use netsmith_topo::cuts;
use netsmith_topo::metrics;
use netsmith_topo::resilience;
use netsmith_topo::traffic::DemandMatrix;
use netsmith_topo::Topology;
use serde::{Deserialize, Serialize};

/// Scale factor that keeps the bandwidth term dominant over the hop-count
/// tiebreak in the SCOp score.
const SCOP_BANDWIDTH_SCALE: f64 = 1.0e7;

/// Penalty per unreachable ordered pair, large enough that any connected
/// topology scores better than any disconnected one.
const DISCONNECTION_PENALTY: f64 = 1.0e9;

/// Technology constants of the analytic energy proxy used by
/// [`Objective::EnergyOp`].  They mirror `netsmith_power::PowerConfig`'s
/// defaults (kept as local constants so the search engine stays free of the
/// simulator/power dependency chain); the proxy only needs the *relative*
/// weighting of router vs. wire energy to rank candidate topologies.
pub(crate) mod energy_proxy {
    /// Router leakage per router in mW.
    pub const ROUTER_LEAKAGE_MW: f64 = 4.0;
    /// Wire leakage per millimetre in mW.
    pub const WIRE_LEAKAGE_MW_PER_MM: f64 = 0.15;
    /// Dynamic energy per flit per router traversal in pJ.
    pub const ROUTER_ENERGY_PJ: f64 = 3.0;
    /// Dynamic energy per flit per millimetre of wire in pJ.
    pub const WIRE_ENERGY_PJ_PER_MM: f64 = 0.9;

    /// Hop-count-dependent part of the proxy: energy per flit (router +
    /// wire traversals along an average path) times the delay proxy
    /// (average hops) — an analytic energy-delay product.
    pub fn edp_term(average_hops: f64, avg_link_mm: f64) -> f64 {
        let energy_per_flit_pj = (average_hops + 1.0) * ROUTER_ENERGY_PJ
            + average_hops * avg_link_mm * WIRE_ENERGY_PJ_PER_MM;
        energy_per_flit_pj * average_hops
    }
}

/// Optimization objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize the total (equivalently average) hop count under uniform
    /// all-to-all traffic (objective O1 of Table I).
    LatOp,
    /// Maximize the sparsest-cut bandwidth (objective O2 of Table I), with
    /// total hop count as a tiebreak.
    SCOp,
    /// Minimize the demand-weighted hop count for an arbitrary traffic
    /// pattern (used for the paper's shuffle-optimized topologies).
    PatternLatOp(DemandMatrix),
    /// Weighted combination: `latency_weight * total_hops -
    /// bandwidth_weight * scaled_sparsest_cut`.  Exposes the latency/
    /// bandwidth trade-off knob that populates the Pareto frontier of
    /// Figure 1.
    Combined {
        latency_weight: f64,
        bandwidth_weight: f64,
    },
    /// Minimize an analytic energy proxy: static (leakage) power of the
    /// link/router inventory plus `edp_weight` times an energy-delay
    /// product built from the average hop count and the wire length each
    /// traversal drives.  Lets the annealer synthesize energy-optimal
    /// topologies for the `netsmith-energy` subsystem; the proxy's
    /// technology constants mirror `netsmith-power`'s defaults.
    EnergyOp { edp_weight: f64 },
    /// Fault-tolerant latency optimization for the `netsmith-fault`
    /// subsystem: total hop count (the LatOp term) plus
    /// `articulation_penalty` per *critical* full-duplex link (a link
    /// whose failure breaks strong connectivity — see
    /// [`netsmith_topo::resilience::critical_link_pairs`]), minus
    /// `spare_capacity_weight` times the spare min-cut capacity proxy
    /// [`netsmith_topo::resilience::min_directional_degree`] (every
    /// router's in/out degree is an isolating cut, so the weakest router's
    /// directional degree bounds how many link faults the fabric can
    /// absorb around it).  With the default weights the annealer drives
    /// the critical-link count to zero — any single link failure
    /// re-routes — while still competing with LatOp on hops.
    FaultOp {
        /// Score penalty per critical (articulation) duplex link.  The
        /// default of `1e5` dominates any achievable hop-count difference,
        /// making "no single points of failure" a soft constraint the
        /// annealer satisfies before trading hops.
        articulation_penalty: f64,
        /// Reward per unit of spare min-cut capacity (the minimum
        /// directional degree over routers), in total-hop units.
        spare_capacity_weight: f64,
    },
}

impl Objective {
    /// The `FaultOp` weighting used by the `fig13_resilience` harness:
    /// articulation links are effectively forbidden and each unit of spare
    /// min-cut capacity is worth 40 total hops (about 0.1 average hops on
    /// the 20-router layout).
    pub fn fault_op_default() -> Self {
        Objective::FaultOp {
            articulation_penalty: 1.0e5,
            spare_capacity_weight: 40.0,
        }
    }

    /// Short name used in generated topology names ("LatOp", "SCOp", …).
    pub fn short_name(&self) -> &'static str {
        match self {
            Objective::LatOp => "LatOp",
            Objective::SCOp => "SCOp",
            Objective::PatternLatOp(_) => "ShufOpt",
            Objective::Combined { .. } => "Combined",
            Objective::EnergyOp { .. } => "EnergyOp",
            Objective::FaultOp { .. } => "FaultOp",
        }
    }

    /// Does the objective need sparsest-cut evaluations?
    pub fn needs_cut(&self) -> bool {
        matches!(self, Objective::SCOp | Objective::Combined { .. })
    }

    /// Evaluate a topology.  Lower scores are better for every objective.
    pub fn evaluate(&self, topo: &Topology) -> ObjectiveValue {
        let unreachable = metrics::unreachable_pairs(topo);
        if unreachable > 0 {
            return ObjectiveValue {
                score: DISCONNECTION_PENALTY * unreachable as f64,
                total_hops: None,
                average_hops: f64::INFINITY,
                sparsest_cut: 0.0,
                connected: false,
            };
        }
        let total_hops = metrics::total_hops(topo).expect("connected");
        let n = topo.num_routers() as f64;
        let average_hops = total_hops as f64 / (n * (n - 1.0));
        let sparsest_cut = if self.needs_cut() {
            cuts::sparsest_cut(topo).normalized_bandwidth
        } else {
            0.0
        };
        let score = match self {
            Objective::LatOp => total_hops as f64,
            Objective::SCOp => -sparsest_cut * SCOP_BANDWIDTH_SCALE + total_hops as f64,
            Objective::PatternLatOp(demand) => {
                let weighted = metrics::weighted_average_hops(topo, demand);
                // scale to the same magnitude as total hops for comparability
                weighted * n * (n - 1.0)
            }
            Objective::Combined {
                latency_weight,
                bandwidth_weight,
            } => {
                latency_weight * total_hops as f64
                    - bandwidth_weight * sparsest_cut * SCOP_BANDWIDTH_SCALE
            }
            Objective::EnergyOp { edp_weight } => {
                let wire_mm = topo.total_wire_length_mm();
                let static_mw = n * energy_proxy::ROUTER_LEAKAGE_MW
                    + wire_mm * energy_proxy::WIRE_LEAKAGE_MW_PER_MM;
                let avg_link_mm = if topo.num_links() == 0 {
                    0.0
                } else {
                    wire_mm / topo.num_links() as f64
                };
                static_mw + edp_weight * energy_proxy::edp_term(average_hops, avg_link_mm)
            }
            Objective::FaultOp {
                articulation_penalty,
                spare_capacity_weight,
            } => {
                let critical = resilience::critical_link_pairs(topo).len() as f64;
                let spare = resilience::min_directional_degree(topo) as f64;
                total_hops as f64 + articulation_penalty * critical - spare_capacity_weight * spare
            }
        };
        ObjectiveValue {
            score,
            total_hops: Some(total_hops),
            average_hops,
            sparsest_cut,
            connected: true,
        }
    }

    /// Evaluate using a cheaper surrogate for the cut term: the minimum
    /// normalized bandwidth over a fixed pool of cuts (each a membership
    /// vector).  The annealer maintains such a pool as a cutting-plane-style
    /// approximation and periodically refreshes it with full heuristic cut
    /// searches.
    pub fn evaluate_with_cut_pool(
        &self,
        topo: &Topology,
        cut_pool: &[Vec<bool>],
    ) -> ObjectiveValue {
        if !self.needs_cut() || cut_pool.is_empty() {
            return self.evaluate(topo);
        }
        let unreachable = metrics::unreachable_pairs(topo);
        if unreachable > 0 {
            return ObjectiveValue {
                score: DISCONNECTION_PENALTY * unreachable as f64,
                total_hops: None,
                average_hops: f64::INFINITY,
                sparsest_cut: 0.0,
                connected: false,
            };
        }
        let total_hops = metrics::total_hops(topo).expect("connected");
        let n = topo.num_routers() as f64;
        let average_hops = total_hops as f64 / (n * (n - 1.0));
        let mut pool_cut = f64::INFINITY;
        for membership in cut_pool {
            let (f, b) = cuts::crossing_links(topo, membership);
            let size_u = membership.iter().filter(|&&x| x).count();
            let size_v = membership.len() - size_u;
            if size_u == 0 || size_v == 0 {
                continue;
            }
            let norm = f.min(b) as f64 / (size_u * size_v) as f64;
            pool_cut = pool_cut.min(norm);
        }
        let score = match self {
            Objective::SCOp => -pool_cut * SCOP_BANDWIDTH_SCALE + total_hops as f64,
            Objective::Combined {
                latency_weight,
                bandwidth_weight,
            } => {
                latency_weight * total_hops as f64
                    - bandwidth_weight * pool_cut * SCOP_BANDWIDTH_SCALE
            }
            _ => unreachable!("guarded by needs_cut"),
        };
        ObjectiveValue {
            score,
            total_hops: Some(total_hops),
            average_hops,
            sparsest_cut: pool_cut,
            connected: true,
        }
    }
}

/// Result of evaluating an objective on a topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveValue {
    /// Scalar score; lower is better for every objective.
    pub score: f64,
    /// Total hop count (None when disconnected).
    pub total_hops: Option<u64>,
    /// Average hop count.
    pub average_hops: f64,
    /// Sparsest-cut normalized bandwidth (0 when not computed).
    pub sparsest_cut: f64,
    /// Whether the topology was strongly connected.
    pub connected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_topo::expert;
    use netsmith_topo::traffic::TrafficPattern;
    use netsmith_topo::Layout;
    use netsmith_topo::LinkClass;

    #[test]
    fn latop_prefers_lower_hop_topologies() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let kite = expert::kite_small(&layout);
        let o = Objective::LatOp;
        assert!(o.evaluate(&kite).score < o.evaluate(&mesh).score);
    }

    #[test]
    fn scop_prefers_higher_cut_topologies() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let torus = expert::folded_torus(&layout);
        let o = Objective::SCOp;
        assert!(o.evaluate(&torus).score < o.evaluate(&mesh).score);
    }

    #[test]
    fn disconnected_topologies_are_heavily_penalized() {
        let layout = Layout::noi_4x5();
        let empty = netsmith_topo::Topology::empty("none", layout.clone(), LinkClass::Small);
        let mesh = expert::mesh(&layout);
        for o in [Objective::LatOp, Objective::SCOp] {
            let bad = o.evaluate(&empty);
            assert!(!bad.connected);
            assert!(bad.score > o.evaluate(&mesh).score * 1e3);
        }
    }

    #[test]
    fn pattern_objective_uses_the_demand_matrix() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let shuffle = TrafficPattern::Shuffle.demand_matrix(&layout);
        let uniform = Objective::LatOp.evaluate(&mesh);
        let pattern = Objective::PatternLatOp(shuffle).evaluate(&mesh);
        // Shuffle exercises longer-distance pairs than the uniform average
        // on a mesh, so the scores must differ.
        assert!((uniform.score - pattern.score).abs() > 1e-6);
    }

    #[test]
    fn cut_pool_never_underestimates_the_true_cut() {
        // The pool is a subset of all cuts, so its minimum is an upper bound
        // on the true sparsest cut.
        let layout = Layout::noi_4x5();
        let torus = expert::folded_torus(&layout);
        let exact = Objective::SCOp.evaluate(&torus);
        let pool: Vec<Vec<bool>> = vec![
            (0..20).map(|i| i < 10).collect(),
            (0..20).map(|i| i % 2 == 0).collect(),
        ];
        let pooled = Objective::SCOp.evaluate_with_cut_pool(&torus, &pool);
        assert!(pooled.sparsest_cut >= exact.sparsest_cut - 1e-12);
    }

    #[test]
    fn combined_objective_interpolates() {
        let layout = Layout::noi_4x5();
        let kite = expert::kite_medium(&layout);
        let pure_lat = Objective::Combined {
            latency_weight: 1.0,
            bandwidth_weight: 0.0,
        };
        let v = pure_lat.evaluate(&kite);
        let l = Objective::LatOp.evaluate(&kite);
        assert!((v.score - l.score).abs() < 1e-9);
    }

    #[test]
    fn short_names_are_stable() {
        assert_eq!(Objective::LatOp.short_name(), "LatOp");
        assert_eq!(Objective::SCOp.short_name(), "SCOp");
        assert_eq!(
            Objective::EnergyOp { edp_weight: 1.0 }.short_name(),
            "EnergyOp"
        );
        assert_eq!(Objective::fault_op_default().short_name(), "FaultOp");
    }

    #[test]
    fn faultop_penalizes_critical_links() {
        // Removing the (0, 1) pair from the mesh leaves corner router 0
        // hanging off the single (0, 5) pair, which becomes critical.
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let mut bridged = mesh.clone();
        bridged.remove_link(0, 1);
        bridged.remove_link(1, 0);
        assert!(netsmith_topo::resilience::critical_link_pairs(&mesh).is_empty());
        assert!(!netsmith_topo::resilience::critical_link_pairs(&bridged).is_empty());
        let o = Objective::fault_op_default();
        let healthy = o.evaluate(&mesh);
        let fragile = o.evaluate(&bridged);
        // The articulation penalty dwarfs any hop-count difference.
        assert!(fragile.score > healthy.score + 1e4);
    }

    #[test]
    fn faultop_rewards_spare_min_cut_capacity() {
        // With the articulation penalty off, the spare-capacity reward must
        // separate the full mesh (weakest router keeps 2 links) from the
        // degraded one (weakest router down to 1 link) by more than their
        // hop-count difference.
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let mut degraded = mesh.clone();
        degraded.remove_link(0, 1);
        degraded.remove_link(1, 0);
        let o = Objective::FaultOp {
            articulation_penalty: 0.0,
            spare_capacity_weight: 1.0e4,
        };
        assert!(o.evaluate(&mesh).score < o.evaluate(&degraded).score);
    }

    #[test]
    fn faultop_penalizes_disconnection() {
        let layout = Layout::noi_4x5();
        let empty = netsmith_topo::Topology::empty("none", layout.clone(), LinkClass::Small);
        let o = Objective::fault_op_default();
        let bad = o.evaluate(&empty);
        assert!(!bad.connected);
        assert!(bad.score > o.evaluate(&expert::mesh(&layout)).score.abs() * 1e3);
    }

    #[test]
    fn energyop_prefers_sparser_wiring_at_zero_edp_weight() {
        // With the EDP term switched off the proxy is pure static power, so
        // the mesh (short links only) must beat the wire-hungry torus.
        let layout = Layout::noi_4x5();
        let o = Objective::EnergyOp { edp_weight: 0.0 };
        let mesh = o.evaluate(&expert::mesh(&layout));
        let torus = o.evaluate(&expert::folded_torus(&layout));
        assert!(mesh.score < torus.score);
        assert!(mesh.connected && torus.connected);
    }

    #[test]
    fn energyop_edp_weight_rewards_lower_hop_counts() {
        // Kite-Large has far fewer average hops than the mesh; with a large
        // enough EDP weight the delay term dominates static wire power and
        // the ordering flips relative to the pure-static proxy.
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let kite = expert::kite_large(&layout);
        let static_only = Objective::EnergyOp { edp_weight: 0.0 };
        assert!(static_only.evaluate(&mesh).score < static_only.evaluate(&kite).score);
        let edp_heavy = Objective::EnergyOp { edp_weight: 50.0 };
        assert!(edp_heavy.evaluate(&kite).score < edp_heavy.evaluate(&mesh).score);
    }

    #[test]
    fn energyop_penalizes_disconnection() {
        let layout = Layout::noi_4x5();
        let empty = netsmith_topo::Topology::empty("none", layout.clone(), LinkClass::Small);
        let o = Objective::EnergyOp { edp_weight: 1.0 };
        let bad = o.evaluate(&empty);
        assert!(!bad.connected);
        assert!(bad.score > o.evaluate(&expert::mesh(&layout)).score * 1e3);
    }
}
