//! The exact MIP formulation of the paper's Table I.
//!
//! Variables (naming follows the paper):
//!
//! * `M(i,j)` — binary connectivity map over the valid-link set `L`
//!   (constraint C3 is enforced by simply not creating variables for
//!   disallowed links).
//! * `O(i,j)` — one-hop distances.  These are not materialised as separate
//!   variables: `O(i,j) = 1*M(i,j) + INF*(1 - M(i,j))` is substituted as a
//!   linear expression (constraint C4), with `INF` a big-M constant.
//! * `D(i,j)` — integer shortest-path distances, constrained through the
//!   triangle-inequality recursion C5.  The `min` over intermediate routers
//!   is modelled with one-hot selector binaries `z(i,j,k)`: the selected
//!   `k` activates `D(i,j) >= D(i,k) + O(k,j)`, and the minimisation
//!   objective drives `D(i,j)` down onto the selected bound, so at the
//!   optimum `D` equals the true shortest-path distance.
//! * `B` — the sparsest-cut bandwidth (SCOp model only), constrained by an
//!   exhaustive enumeration of bipartitions exactly as constraint C6
//!   prescribes, which is why the SCOp MILP is only built for small router
//!   counts.
//!
//! The MILP path exists to preserve and validate the paper's formulation;
//! the dense-tableau branch-and-bound in `netsmith-lp` proves optimality
//! only for small layouts (it replaces Gurobi on a 32-thread server).  The
//! unit tests therefore (1) check the formulation by plugging known
//! topologies and their true distance matrices into the model and asserting
//! feasibility/objective agreement, and (2) solve tiny instances to
//! optimality and compare against exhaustive search.

use crate::objective::Objective;
use crate::problem::GenerationProblem;
use netsmith_lp::{BranchBoundConfig, Cmp, LinExpr, MilpSolver, Model, Sense, VarId, VarType};
use netsmith_topo::metrics::{all_pairs_hops, UNREACHABLE};
use netsmith_topo::{RouterId, Topology};
use std::collections::HashMap;
use std::time::Duration;

/// Big-M used for the "infinite" one-hop distance of unconnected pairs.
fn big_m(n: usize) -> f64 {
    (4 * n) as f64
}

/// Configuration for MILP-based generation.
#[derive(Debug, Clone)]
pub struct MilpGenConfig {
    pub time_limit: Duration,
    pub max_nodes: u64,
}

impl Default for MilpGenConfig {
    fn default() -> Self {
        MilpGenConfig {
            time_limit: Duration::from_secs(60),
            max_nodes: 200_000,
        }
    }
}

/// Handles into a built model, used to recover the topology from a
/// solution and to construct reference assignments in tests.
#[derive(Debug, Clone)]
pub struct LatOpModel {
    pub model: Model,
    /// `M(i,j)` variables, keyed by directed link.
    pub link_vars: HashMap<(RouterId, RouterId), VarId>,
    /// `D(i,j)` variables, keyed by ordered pair.
    pub dist_vars: HashMap<(RouterId, RouterId), VarId>,
    /// `z(i,j,k)` selector variables.
    pub selector_vars: HashMap<(RouterId, RouterId, RouterId), VarId>,
}

/// Build the LatOp MIP (objective O1 with constraints C1–C5, plus optional
/// C8/C9).
pub fn build_latop_model(problem: &GenerationProblem) -> LatOpModel {
    let n = problem.num_routers();
    let radix = problem.layout.radix() as f64;
    let inf = big_m(n);
    let valid: Vec<(RouterId, RouterId)> = problem.valid_links();
    let valid_set: std::collections::HashSet<(usize, usize)> = valid.iter().copied().collect();

    let mut model = Model::new(Sense::Minimize);
    let mut link_vars = HashMap::new();
    let mut dist_vars = HashMap::new();
    let mut selector_vars = HashMap::new();

    // M(i,j) for valid links (C3 by construction; C1 because i==j never valid).
    for &(i, j) in &valid {
        let v = model.add_binary(0.0, format!("M_{i}_{j}"));
        link_vars.insert((i, j), v);
    }
    // C9: symmetric links.
    if problem.symmetric_links {
        for &(i, j) in &valid {
            if i < j && valid_set.contains(&(j, i)) {
                let mut e = LinExpr::var(link_vars[&(i, j)]);
                e.add_term(link_vars[&(j, i)], -1.0);
                model.add_constr(e, Cmp::Eq, 0.0);
            }
        }
    }
    // C2: out/in radix.
    for i in 0..n {
        let out = LinExpr::from_terms(
            valid
                .iter()
                .filter(|&&(a, _)| a == i)
                .map(|&(a, b)| (link_vars[&(a, b)], 1.0)),
        );
        if out.num_terms() > 0 {
            model.add_constr(out, Cmp::Le, radix);
        }
        let inn = LinExpr::from_terms(
            valid
                .iter()
                .filter(|&&(_, b)| b == i)
                .map(|&(a, b)| (link_vars[&(a, b)], 1.0)),
        );
        if inn.num_terms() > 0 {
            model.add_constr(inn, Cmp::Le, radix);
        }
    }

    // D(i,j): integer distances, objective coefficient 1 (O1).
    let dist_upper = problem.max_diameter.map(|d| d as f64).unwrap_or(inf);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let v = model.add_var(VarType::Integer, 1.0, dist_upper, 1.0, format!("D_{i}_{j}"));
            dist_vars.insert((i, j), v);
        }
    }

    // Helper producing the one-hop expression O(k,j) (C4).
    let one_hop_expr = |k: usize, j: usize| -> LinExpr {
        if let Some(&m) = link_vars.get(&(k, j)) {
            // O = 1*M + inf*(1-M) = inf - (inf-1)*M
            LinExpr::new().term(m, -(inf - 1.0)).offset(inf)
        } else {
            LinExpr::constant(inf)
        }
    };

    // C5: D(i,j) = min_k (D(i,k) + O(k,j)), modelled with one-hot selectors.
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let mut selector_sum = LinExpr::new();
            for k in 0..n {
                if k == j {
                    continue; // the paper excludes k == j (self-referencing)
                }
                let z = model.add_binary(0.0, format!("z_{i}_{j}_{k}"));
                selector_vars.insert((i, j, k), z);
                selector_sum.add_term(z, 1.0);
                // D(i,j) >= (D(i,k) if k != i else 0) + O(k,j) - BIG*(1 - z)
                let mut rhs = one_hop_expr(k, j);
                if k != i {
                    rhs.add_term(dist_vars[&(i, k)], 1.0);
                }
                // big-M relaxation when the selector is off: use a generous
                // constant (distances and O are both bounded by inf).
                let relax = 3.0 * inf;
                rhs.add_term(z, relax);
                rhs = rhs.offset(-relax);
                // lhs - rhs >= 0  ->  D(i,j) - rhs >= 0
                let mut c = LinExpr::var(dist_vars[&(i, j)]);
                c.add_scaled(&rhs, -1.0);
                model.add_constr(c, Cmp::Ge, 0.0);
            }
            model.add_constr(selector_sum, Cmp::Eq, 1.0);
        }
    }

    LatOpModel {
        model,
        link_vars,
        dist_vars,
        selector_vars,
    }
}

/// Solve the LatOp MIP and return the discovered topology together with the
/// solver's reported solution, or `None` when no incumbent was found within
/// the budget.
pub fn solve_latop_milp(
    problem: &GenerationProblem,
    config: &MilpGenConfig,
) -> Option<(Topology, netsmith_lp::Solution)> {
    let built = build_latop_model(problem);
    let solver = MilpSolver::new(BranchBoundConfig {
        time_limit: config.time_limit,
        max_nodes: config.max_nodes,
        ..Default::default()
    });
    let sol = solver.solve(&built.model).ok()?;
    if !sol.status.has_solution() {
        return None;
    }
    let mut topo = Topology::empty(
        problem.topology_name() + "-milp",
        problem.layout.clone(),
        problem.class,
    );
    for (&(i, j), &v) in &built.link_vars {
        if sol.values[v.index()] > 0.5 {
            topo.add_link(i, j);
        }
    }
    Some((topo, sol))
}

/// Handles for the SCOp model.
#[derive(Debug, Clone)]
pub struct ScOpModel {
    pub model: Model,
    pub link_vars: HashMap<(RouterId, RouterId), VarId>,
    pub bandwidth_var: VarId,
}

/// Build the SCOp MIP (objective O2 with constraints C1–C3, C6, C7).
///
/// The sparsest-cut constraints enumerate every bipartition, so this is
/// restricted to small router counts (the paper itself notes the 20!-sized
/// enumeration is the practical limit of the approach).
pub fn build_scop_model(problem: &GenerationProblem) -> ScOpModel {
    let n = problem.num_routers();
    assert!(n <= 16, "SCOp MILP enumeration limited to 16 routers");
    let radix = problem.layout.radix() as f64;
    let valid: Vec<(RouterId, RouterId)> = problem.valid_links();

    // Maximize B  <=>  minimize -B.
    let mut model = Model::new(Sense::Maximize);
    let bandwidth_var = model.add_var(VarType::Continuous, 0.0, radix * n as f64, 1.0, "B");
    let mut link_vars = HashMap::new();
    for &(i, j) in &valid {
        let v = model.add_binary(0.0, format!("M_{i}_{j}"));
        link_vars.insert((i, j), v);
    }
    // C2 radix.
    for i in 0..n {
        let out = LinExpr::from_terms(
            valid
                .iter()
                .filter(|&&(a, _)| a == i)
                .map(|&(a, b)| (link_vars[&(a, b)], 1.0)),
        );
        if out.num_terms() > 0 {
            model.add_constr(out, Cmp::Le, radix);
        }
        let inn = LinExpr::from_terms(
            valid
                .iter()
                .filter(|&&(_, b)| b == i)
                .map(|&(a, b)| (link_vars[&(a, b)], 1.0)),
        );
        if inn.num_terms() > 0 {
            model.add_constr(inn, Cmp::Le, radix);
        }
    }
    // C6/C7: for every bipartition (router 0 pinned to U), both directions
    // must carry at least B * |U| * |V| links in aggregate, i.e.
    // sum_{i in U, j in V} M(i,j) >= B * |U||V|  (and symmetrically).
    for mask in 0u32..(1 << (n - 1)) {
        let mut in_u = vec![false; n];
        in_u[0] = true;
        let mut size_u = 1usize;
        for b in 0..(n - 1) {
            if (mask >> b) & 1 == 1 {
                in_u[b + 1] = true;
                size_u += 1;
            }
        }
        if size_u == n {
            continue;
        }
        let size_v = n - size_u;
        let scale = (size_u * size_v) as f64;
        let mut fwd = LinExpr::new().term(bandwidth_var, -scale);
        let mut bwd = LinExpr::new().term(bandwidth_var, -scale);
        for &(i, j) in &valid {
            if in_u[i] && !in_u[j] {
                fwd.add_term(link_vars[&(i, j)], 1.0);
            }
            if !in_u[i] && in_u[j] {
                bwd.add_term(link_vars[&(i, j)], 1.0);
            }
        }
        model.add_constr(fwd, Cmp::Ge, 0.0);
        model.add_constr(bwd, Cmp::Ge, 0.0);
    }
    if let Some(min_cut) = problem.min_sparsest_cut {
        model.add_constr(LinExpr::var(bandwidth_var), Cmp::Ge, min_cut);
    }
    ScOpModel {
        model,
        link_vars,
        bandwidth_var,
    }
}

/// Construct the full variable assignment corresponding to an existing
/// topology (links, true distances and selector choices).  Used to validate
/// the formulation: the assignment of any topology that satisfies the
/// problem constraints must be feasible for the built model, and its
/// objective must equal the topology's total hop count.
pub fn latop_assignment_for_topology(built: &LatOpModel, topo: &Topology) -> Option<Vec<f64>> {
    let n = topo.num_routers();
    let dist = all_pairs_hops(topo);
    let mut values = vec![0.0; built.model.num_vars()];
    for (&(i, j), &v) in &built.link_vars {
        values[v.index()] = if topo.has_link(i, j) { 1.0 } else { 0.0 };
    }
    for (&(i, j), &v) in &built.dist_vars {
        let d = dist[i * n + j];
        if d == UNREACHABLE {
            return None;
        }
        values[v.index()] = d as f64;
    }
    // Selector: choose k = predecessor of j on a shortest i->j path.
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = dist[i * n + j];
            let mut chosen: Option<usize> = None;
            if d == 1 {
                chosen = Some(i);
            } else {
                for k in 0..n {
                    if k == j || k == i {
                        continue;
                    }
                    if topo.has_link(k, j) && dist[i * n + k] + 1 == d {
                        chosen = Some(k);
                        break;
                    }
                }
            }
            let k = chosen?;
            values[built.selector_vars[&(i, j, k)].index()] = 1.0;
        }
    }
    Some(values)
}

/// Solve the SCOp MIP for small instances.
pub fn solve_scop_milp(
    problem: &GenerationProblem,
    config: &MilpGenConfig,
) -> Option<(Topology, netsmith_lp::Solution)> {
    let built = build_scop_model(problem);
    let solver = MilpSolver::new(BranchBoundConfig {
        time_limit: config.time_limit,
        max_nodes: config.max_nodes,
        ..Default::default()
    });
    let sol = solver.solve(&built.model).ok()?;
    if !sol.status.has_solution() {
        return None;
    }
    let mut topo = Topology::empty(
        problem.topology_name() + "-milp",
        problem.layout.clone(),
        problem.class,
    );
    for (&(i, j), &v) in &built.link_vars {
        if sol.values[v.index()] > 0.5 {
            topo.add_link(i, j);
        }
    }
    Some((topo, sol))
}

/// Sanity: the objectives supported by the MILP path.
pub fn milp_supports(objective: &Objective) -> bool {
    matches!(objective, Objective::LatOp | Objective::SCOp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_topo::expert;
    use netsmith_topo::{Layout, LinkClass, LinkSpan};

    #[test]
    fn expert_topology_assignment_is_feasible_and_matches_total_hops() {
        // Validate the Table I lowering by plugging the mesh (and the kite)
        // into the LatOp model.
        let layout = Layout::noi_4x5();
        for topo in [expert::mesh(&layout), expert::kite_small(&layout)] {
            let problem =
                GenerationProblem::new(layout.clone(), LinkClass::Small, Objective::LatOp);
            let built = build_latop_model(&problem);
            let assignment = latop_assignment_for_topology(&built, &topo)
                .expect("connected topology has a full assignment");
            assert!(
                built.model.is_feasible(&assignment, 1e-6),
                "{} assignment must satisfy Table I constraints",
                topo.name()
            );
            let expected = netsmith_topo::metrics::total_hops(&topo).unwrap() as f64;
            let objective = built.model.objective_value(&assignment);
            assert!(
                (objective - expected).abs() < 1e-6,
                "{}: objective {objective} vs total hops {expected}",
                topo.name()
            );
        }
    }

    #[test]
    fn radix_violation_is_infeasible_in_the_model() {
        let layout = Layout::noi_4x5();
        let problem = GenerationProblem::new(layout.clone(), LinkClass::Small, Objective::LatOp);
        let built = build_latop_model(&problem);
        // Force five outgoing links at router 6 (interior router) — exceeds radix 4.
        let mut topo = expert::mesh(&layout);
        // Mesh already gives router 6 four links; add a diagonal.
        topo.add_link(6, 0);
        if let Some(assignment) = latop_assignment_for_topology(&built, &topo) {
            assert!(!built.model.is_feasible(&assignment, 1e-6));
        }
    }

    #[test]
    fn tiny_latop_milp_reaches_the_ring_optimum() {
        // 2x2 layout with radix 2: the best possible total hop count is 16
        // (every router reaches two neighbours at distance 1 and the third
        // at distance 2), achieved by a ring.
        let layout = Layout::interposer_grid(2, 2, 2);
        let problem = GenerationProblem::new(
            layout,
            LinkClass::Custom(LinkSpan::new(1, 1)),
            Objective::LatOp,
        )
        .with_max_diameter(3);
        let config = MilpGenConfig {
            time_limit: Duration::from_secs(60),
            max_nodes: 100_000,
        };
        let (topo, sol) = solve_latop_milp(&problem, &config).expect("solved");
        assert!(sol.status.has_solution());
        assert!(
            (sol.objective - 16.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert_eq!(netsmith_topo::metrics::total_hops(&topo), Some(16));
        assert!(topo.is_valid(), "{:?}", topo.validate());
    }

    #[test]
    fn tiny_scop_milp_uses_all_ports_across_the_cut() {
        // 2x2 layout, radix 2, diagonal links allowed: the maximum sparsest
        // cut with 2 out-ports per router is bounded by scop reasoning.
        let layout = Layout::interposer_grid(2, 2, 2);
        let problem = GenerationProblem::new(
            layout,
            LinkClass::Custom(LinkSpan::new(1, 1)),
            Objective::SCOp,
        );
        let config = MilpGenConfig {
            time_limit: Duration::from_secs(60),
            max_nodes: 100_000,
        };
        let (topo, sol) = solve_scop_milp(&problem, &config).expect("solved");
        assert!(sol.status.has_solution());
        // The model maximizes B; the resulting topology's exhaustive
        // sparsest cut must be at least as large as the reported B up to
        // the normalization (B here is already normalized by |U||V|).
        let cut = netsmith_topo::cuts::sparsest_cut(&topo).normalized_bandwidth;
        assert!(
            cut + 1e-6 >= sol.objective,
            "reported B {} exceeds actual cut {cut}",
            sol.objective
        );
        assert!(sol.objective > 0.0);
    }

    #[test]
    fn milp_supports_only_table1_objectives() {
        assert!(milp_supports(&Objective::LatOp));
        assert!(milp_supports(&Objective::SCOp));
        assert!(!milp_supports(&Objective::Combined {
            latency_weight: 1.0,
            bandwidth_weight: 1.0
        }));
    }
}
