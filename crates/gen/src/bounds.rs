//! Combinatorial lower/upper bounds on the achievable objective.
//!
//! Gurobi reports an "objective bounds gap" between its incumbent and the
//! best bound proven by the LP relaxation / branch-and-bound tree.  Our
//! combinatorial search engines pair their incumbents with bounds derived
//! from counting arguments instead:
//!
//! * **LatOp (total hops)** — a Moore-style bound: with out-radix `r`, at
//!   most `r` destinations can be one hop away from a source, at most `r^2`
//!   two hops away, and so on; additionally, no more destinations can be at
//!   distance `d` than there are routers within the physical reach of `d`
//!   link-length-budget hops.  Summing the per-source minima gives a lower
//!   bound on total hops no topology under the constraints can beat.
//! * **SCOp (sparsest cut)** — for any subset size `k`, the number of links
//!   leaving a set of `k` routers is at most `k * r` in each direction and
//!   at most the number of valid links crossing the cut, so the normalized
//!   sparsest cut is at most `min_k min(k*r, valid(k)) / (k * (n-k))`.
//!
//! The bounds are cheap to compute and valid for *every* topology the
//! search can produce, so the reported gap is conservative (never smaller
//! than the true gap), exactly the property the paper relies on.

use crate::problem::GenerationProblem;
use netsmith_topo::traffic::DemandMatrix;
use netsmith_topo::LinkSpan;

/// Lower bound on the total hop count (sum over ordered pairs) achievable
/// by any topology satisfying the problem's radix and link-length limits.
pub fn latop_lower_bound(problem: &GenerationProblem) -> f64 {
    let layout = &problem.layout;
    let n = layout.num_routers();
    let radix = layout.radix();
    let mut total = 0u64;
    for src in 0..n {
        // Physical reachability: router j cannot be closer than
        // ceil(span / max_span_per_hop) hops from src.
        let max_span = problem.class.max_span();
        let mut physical_min: Vec<u32> = (0..n)
            .map(|dst| {
                if dst == src {
                    0
                } else {
                    let (dx, dy) = layout.span(src, dst);
                    min_hops_for_span(dx, dy, max_span)
                }
            })
            .collect();
        physical_min[src] = 0;

        // Radix (Moore) capacity per distance level: at most radix^d routers
        // can be exactly d hops away.
        // Assign destinations greedily: sort by physical minimum distance,
        // fill levels respecting both the physical minimum and the level
        // capacity.
        let mut dests: Vec<(u32, usize)> = (0..n)
            .filter(|&d| d != src)
            .map(|d| (physical_min[d], d))
            .collect();
        dests.sort_unstable();
        let mut level_capacity: Vec<u64> = Vec::new();
        let mut level = 1u32;
        let mut remaining = dests.len() as u64;
        let cap_at = |lvl: u32| -> u64 { (radix as u64).saturating_pow(lvl) };
        let mut level_used: Vec<u64> = vec![0];
        while remaining > 0 {
            level_capacity.push(cap_at(level));
            level_used.push(0);
            remaining = remaining.saturating_sub(cap_at(level));
            level += 1;
            if level > 64 {
                break;
            }
        }
        for (phys_min, _) in dests {
            // Place the destination at the earliest level >= phys_min with
            // spare capacity.
            let mut lvl = phys_min.max(1) as usize;
            loop {
                if lvl >= level_used.len() {
                    level_used.resize(lvl + 1, 0);
                    level_capacity.resize(lvl, 0);
                }
                let cap = (radix as u64).saturating_pow(lvl as u32);
                if level_used[lvl] < cap {
                    level_used[lvl] += 1;
                    total += lvl as u64;
                    break;
                }
                lvl += 1;
            }
        }
    }
    total as f64
}

/// Minimum number of hops needed to cover a grid span of `(dx, dy)` when a
/// single link may span at most `max` (canonical form, `max.dx >= max.dy`).
///
/// A hop can be oriented either way, so per hop the Manhattan distance
/// shrinks by at most `max.dx + max.dy` and the larger single-axis distance
/// by at most `max.dx`.  Both counting arguments give valid lower bounds;
/// their maximum is used.
pub(crate) fn min_hops_for_span(dx: usize, dy: usize, max: LinkSpan) -> u32 {
    if dx == 0 && dy == 0 {
        return 0;
    }
    let per_hop_manhattan = (max.dx + max.dy).max(1);
    let per_hop_axis = max.dx.max(max.dy).max(1);
    let by_manhattan = (dx + dy).div_ceil(per_hop_manhattan) as u32;
    let by_axis = dx.max(dy).div_ceil(per_hop_axis) as u32;
    by_manhattan.max(by_axis).max(1)
}

/// Lower bound on the demand-weighted hop score (`weighted_average_hops *
/// n * (n-1)`, the [`crate::terms::PatternHopsTerm`] scale) achievable
/// under the link-length constraint: every pair's hop count is at least the
/// physical minimum `min_hops_for_span` dictates, so the demand-weighted
/// average is at least the demand-weighted physical minimum.
///
/// Unlike [`latop_lower_bound`] this makes no radix (Moore) argument — the
/// per-level counting would need to be redone per source against the demand
/// weights — so it stays admissible for arbitrarily skewed demand matrices
/// where the uniform-traffic bound is not.
pub fn pattern_latop_lower_bound(problem: &GenerationProblem, demand: &DemandMatrix) -> f64 {
    let layout = &problem.layout;
    let n = layout.num_routers();
    assert_eq!(demand.num_nodes(), n, "demand matrix size mismatch");
    let max_span = problem.class.max_span();
    let mut weighted_min = 0.0;
    let mut total_weight = 0.0;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let w = demand.demand(s, d);
            if w <= 0.0 {
                continue;
            }
            let (dx, dy) = layout.span(s, d);
            weighted_min += w * min_hops_for_span(dx, dy, max_span) as f64;
            total_weight += w;
        }
    }
    if total_weight == 0.0 {
        0.0
    } else {
        (weighted_min / total_weight) * (n as f64 * (n as f64 - 1.0))
    }
}

/// Upper bound on the normalized sparsest-cut bandwidth achievable by any
/// topology under the radix constraint.
pub fn scop_upper_bound(problem: &GenerationProblem) -> f64 {
    let n = problem.num_routers();
    let radix = problem.layout.radix() as f64;
    let mut best = f64::INFINITY;
    for k in 1..n {
        let crossing_cap = (k.min(n - k) as f64) * radix;
        let norm = crossing_cap / (k as f64 * (n - k) as f64);
        best = best.min(norm);
    }
    best
}

/// Lower bound on the average hop count, derived from
/// [`latop_lower_bound`].
pub fn average_hops_lower_bound(problem: &GenerationProblem) -> f64 {
    let n = problem.num_routers() as f64;
    latop_lower_bound(problem) / (n * (n - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use netsmith_topo::expert;
    use netsmith_topo::metrics;
    use netsmith_topo::{Layout, LinkClass};

    fn problem(class: LinkClass) -> GenerationProblem {
        GenerationProblem::new(Layout::noi_4x5(), class, Objective::LatOp)
    }

    #[test]
    fn latop_bound_is_below_every_expert_topology() {
        let layout = Layout::noi_4x5();
        for class in LinkClass::STANDARD {
            let bound = latop_lower_bound(&problem(class));
            for topo in expert::baselines_for_class(&layout, class) {
                let hops = metrics::total_hops(&topo).unwrap() as f64;
                assert!(
                    bound <= hops + 1e-9,
                    "bound {bound} exceeds {} total hops {hops}",
                    topo.name()
                );
            }
        }
    }

    #[test]
    fn latop_bound_holds_on_larger_layouts_too() {
        // Regression test: the large-class bound must stay below dense
        // greedy topologies on the 6x5 and 8x6 layouts (a previous version
        // overestimated vertical reach of (2,1) links).
        for layout in [Layout::noi_6x5(), Layout::noi_8x6()] {
            let p = GenerationProblem::new(layout.clone(), LinkClass::Large, Objective::LatOp);
            let bound = latop_lower_bound(&p);
            let dense = expert::kite(&layout, LinkClass::Large);
            let hops = metrics::total_hops(&dense).unwrap() as f64;
            assert!(bound <= hops + 1e-9, "bound {bound} vs kite-large {hops}");
        }
    }

    #[test]
    fn latop_bound_grows_as_links_get_shorter() {
        let small = latop_lower_bound(&problem(LinkClass::Small));
        let large = latop_lower_bound(&problem(LinkClass::Large));
        assert!(small >= large);
    }

    #[test]
    fn latop_bound_is_meaningful() {
        // With radix 4 and 20 routers, at most 4 destinations can be 1 hop
        // away, so the average must exceed (4*1 + 15*2)/19 ~ 1.79.
        let bound = average_hops_lower_bound(&problem(LinkClass::Large));
        assert!(bound >= 1.7, "bound {bound}");
        assert!(bound <= 2.5);
    }

    #[test]
    fn pattern_bound_is_below_realized_shuffle_scores() {
        use netsmith_topo::traffic::TrafficPattern;
        let layout = Layout::noi_4x5();
        let shuffle = TrafficPattern::Shuffle.demand_matrix(&layout);
        for class in LinkClass::STANDARD {
            let p = GenerationProblem::new(
                layout.clone(),
                class,
                Objective::PatternLatOp(shuffle.clone()),
            );
            let bound = pattern_latop_lower_bound(&p, &shuffle);
            assert!(bound > 0.0);
            for topo in expert::baselines_for_class(&layout, class) {
                let score = Objective::PatternLatOp(shuffle.clone())
                    .evaluate(&topo)
                    .score;
                assert!(
                    bound <= score + 1e-9,
                    "{}: pattern bound {bound} exceeds realized {score}",
                    topo.name()
                );
            }
        }
    }

    #[test]
    fn scop_bound_is_above_every_expert_topology() {
        let layout = Layout::noi_4x5();
        let p = problem(LinkClass::Large);
        let bound = scop_upper_bound(&p);
        for topo in expert::all_baselines(&layout) {
            let cut = netsmith_topo::cuts::sparsest_cut(&topo).normalized_bandwidth;
            assert!(
                cut <= bound + 1e-9,
                "{} cut {cut} above bound {bound}",
                topo.name()
            );
        }
    }

    #[test]
    fn min_hops_for_span_respects_budget() {
        let large = LinkSpan::new(2, 1);
        assert_eq!(min_hops_for_span(0, 0, large), 0);
        assert_eq!(min_hops_for_span(1, 0, large), 1);
        assert_eq!(min_hops_for_span(2, 1, large), 1);
        assert_eq!(min_hops_for_span(4, 0, large), 2);
        assert_eq!(min_hops_for_span(4, 3, large), 3);
        let medium = LinkSpan::new(2, 0);
        assert_eq!(min_hops_for_span(0, 3, medium), 2);
    }
}
