//! High-level NetSmith facade: parallel multi-start search with progress
//! merging and bound-based gap reporting.

use crate::anneal::{anneal, AnnealConfig, AnnealResult};
use crate::objective::{Objective, ObjectiveValue};
use crate::problem::GenerationProblem;
use crate::progress::SolverProgress;
use netsmith_obs::Obs;
use netsmith_pool::WorkerPool;
use netsmith_topo::{Layout, LinkClass, PipelineError, Topology};
use std::time::Duration;

/// Result of a topology discovery run.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// The best topology found (named `NS-<objective>-<class>`).
    pub topology: Topology,
    /// Exact objective value of that topology.
    pub objective: ObjectiveValue,
    /// Combinatorial bound used for gap reporting (total-hops lower bound
    /// for LatOp-style objectives, cut upper bound for SCOp).
    pub bound: f64,
    /// Relative objective-bounds gap of the final incumbent.
    pub gap: f64,
    /// Merged progress trace across all parallel workers (Figure 5).
    pub progress: SolverProgress,
    /// Total candidate evaluations across workers.
    pub evaluations: u64,
}

/// The NetSmith topology generator.
///
/// ```
/// use netsmith_gen::{NetSmith, Objective};
/// use netsmith_topo::{Layout, LinkClass};
///
/// let result = NetSmith::new(Layout::noi_4x5(), LinkClass::Medium)
///     .objective(Objective::LatOp)
///     .evaluations(2_000)
///     .workers(1)
///     .seed(7)
///     .discover();
/// assert!(result.topology.is_valid());
/// ```
#[derive(Debug, Clone)]
pub struct NetSmith {
    problem: GenerationProblem,
    config: AnnealConfig,
    workers: usize,
    obs: Obs,
}

impl NetSmith {
    /// Start configuring a discovery run for a layout and link class.
    pub fn new(layout: Layout, class: LinkClass) -> Self {
        NetSmith {
            problem: GenerationProblem::new(layout, class, Objective::LatOp),
            config: AnnealConfig::default(),
            workers: 4,
            obs: Obs::noop(),
        }
    }

    /// Use an explicit problem definition (constraints included).
    pub fn from_problem(problem: GenerationProblem) -> Self {
        NetSmith {
            problem,
            config: AnnealConfig::default(),
            workers: 4,
            obs: Obs::noop(),
        }
    }

    /// Record annealer spans and move counters on an instrumentation
    /// handle (see [`netsmith_obs`]).  Every worker reports to the same
    /// recorder, so counter totals aggregate across the multi-start
    /// search.  Defaults to the no-op handle.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Set the optimization objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.problem.objective = objective;
        self
    }

    /// Set a composite objective from `(weight, term)` pairs — shorthand
    /// for `objective(Objective::composite(terms))`.  Panics on negative
    /// or non-finite weights.
    pub fn composite_objective(
        self,
        terms: impl IntoIterator<Item = (f64, crate::terms::Term)>,
    ) -> Self {
        self.objective(Objective::composite(terms))
    }

    /// Force symmetric (paired) links — constraint C9.
    pub fn symmetric_links(mut self, symmetric: bool) -> Self {
        self.problem.symmetric_links = symmetric;
        self
    }

    /// Bound the network diameter — constraint C8.
    pub fn max_diameter(mut self, diameter: u32) -> Self {
        self.problem.max_diameter = Some(diameter);
        self
    }

    /// Set the per-worker evaluation budget.
    pub fn evaluations(mut self, evaluations: u64) -> Self {
        self.config.max_evaluations = evaluations;
        self
    }

    /// Set the per-worker wall-clock budget.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.config.time_budget = budget;
        self
    }

    /// Set the base RNG seed (worker `i` uses `seed + i`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Number of parallel annealing workers.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The underlying problem definition.
    pub fn problem(&self) -> &GenerationProblem {
        &self.problem
    }

    /// Combinatorial bound for the configured objective, in the same units
    /// as the objective score: the weighted sum of the per-term admissible
    /// bounds (see [`crate::terms::ObjectiveTerm::lower_bound`]).
    pub fn bound(&self) -> f64 {
        self.problem.objective.lower_bound(&self.problem)
    }

    /// Run the discovery: `workers` independent annealing searches in
    /// parallel (on the shared worker pool), merged into a single result.
    /// Panics when
    /// the search fails outright; use [`NetSmith::try_discover`] to handle
    /// that case as a typed [`PipelineError`].
    pub fn discover(&self) -> DiscoveryResult {
        self.try_discover()
            .unwrap_or_else(|e| panic!("topology discovery failed: {e}"))
    }

    /// Fallible discovery: fails with [`PipelineError::DiscoveryFailed`]
    /// when no worker produced a strongly connected incumbent within the
    /// evaluation budget (the annealer's disconnection penalty makes any
    /// connected candidate beat every disconnected one, so this only
    /// happens under pathological budgets or constraints).
    pub fn try_discover(&self) -> Result<DiscoveryResult, PipelineError> {
        let bound = self.bound();
        let results: Vec<AnnealResult> = if self.workers == 1 {
            vec![anneal(&self.problem, &self.config, bound, &self.obs)]
        } else {
            let mut configs = Vec::with_capacity(self.workers);
            for w in 0..self.workers {
                let mut c = self.config.clone();
                c.seed = self.config.seed.wrapping_add(w as u64 * 0x9E37_79B9);
                configs.push(c);
            }
            let problem = &self.problem;
            WorkerPool::global().run(
                configs
                    .iter()
                    .map(|c| {
                        let obs = self.obs.clone();
                        Box::new(move || anneal(problem, c, bound, &obs))
                            as Box<dyn FnOnce() -> AnnealResult + Send + '_>
                    })
                    .collect(),
            )
        };

        let mut progress = SolverProgress::new();
        let mut evaluations = 0;
        for r in &results {
            progress.merge(&r.progress);
            evaluations += r.evaluations;
        }
        let best = results
            .into_iter()
            .min_by(|a, b| a.objective.score.partial_cmp(&b.objective.score).unwrap())
            .expect("at least one worker");
        if !best.objective.connected {
            return Err(PipelineError::DiscoveryFailed {
                objective: self.problem.objective.short_name(),
                reason: format!(
                    "no worker produced a connected incumbent within {evaluations} evaluations"
                ),
            });
        }
        let gap = if best.objective.score.abs() < 1e-12 {
            0.0
        } else {
            ((best.objective.score - bound).abs() / best.objective.score.abs()).max(0.0)
        };
        Ok(DiscoveryResult {
            topology: best.topology,
            objective: best.objective,
            bound,
            gap,
            progress,
            evaluations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_topo::expert;
    use netsmith_topo::metrics;

    fn quick(class: LinkClass, objective: Objective) -> NetSmith {
        NetSmith::new(Layout::noi_4x5(), class)
            .objective(objective)
            .evaluations(3_000)
            .workers(2)
            .seed(123)
            .time_budget(Duration::from_secs(20))
    }

    #[test]
    fn try_discover_succeeds_on_sane_budgets() {
        let result = quick(LinkClass::Medium, Objective::LatOp)
            .try_discover()
            .expect("a connected incumbent exists at this budget");
        assert!(result.objective.connected);
    }

    #[test]
    fn discovery_produces_named_valid_topologies() {
        let result = quick(LinkClass::Medium, Objective::LatOp).discover();
        assert_eq!(result.topology.name(), "NS-LatOp-medium");
        assert!(result.topology.is_valid());
        assert!(result.objective.connected);
        assert!(result.gap.is_finite());
        assert!(result.evaluations >= 3_000);
    }

    #[test]
    fn parallel_workers_never_do_worse_than_a_single_worker() {
        let single = quick(LinkClass::Medium, Objective::LatOp)
            .workers(1)
            .discover();
        let multi = quick(LinkClass::Medium, Objective::LatOp)
            .workers(3)
            .discover();
        assert!(multi.objective.score <= single.objective.score + 1e-9);
    }

    #[test]
    fn latop_beats_expert_topologies_of_the_same_class() {
        // The paper's headline: machine-discovered medium/large topologies
        // beat the expert designs on average hops.  Use a modest budget so
        // the test stays fast; the full budget only widens the margin.
        let result = quick(LinkClass::Medium, Objective::LatOp)
            .evaluations(8_000)
            .discover();
        let layout = Layout::noi_4x5();
        let torus_hops = metrics::average_hops(&expert::folded_torus(&layout));
        assert!(
            result.objective.average_hops < torus_hops,
            "NS-LatOp {} vs Folded Torus {torus_hops}",
            result.objective.average_hops
        );
    }

    #[test]
    fn energyop_discovery_is_valid_and_bound_consistent() {
        let result = quick(LinkClass::Medium, Objective::EnergyOp { edp_weight: 5.0 }).discover();
        assert_eq!(result.topology.name(), "NS-EnergyOp-medium");
        assert!(result.topology.is_valid());
        assert!(result.objective.connected);
        assert!(
            result.bound <= result.objective.score + 1e-6,
            "bound {} exceeds incumbent {}",
            result.bound,
            result.objective.score
        );
    }

    #[test]
    fn faultop_discovery_has_no_critical_links() {
        let result = quick(LinkClass::Medium, Objective::fault_op_default()).discover();
        assert_eq!(result.topology.name(), "NS-FaultOp-medium");
        assert!(result.topology.is_valid());
        assert!(
            netsmith_topo::resilience::critical_link_pairs(&result.topology).is_empty(),
            "synthesized topology kept an articulation link"
        );
        assert!(
            result.bound <= result.objective.score + 1e-6,
            "bound {} exceeds incumbent {}",
            result.bound,
            result.objective.score
        );
    }

    #[test]
    fn bound_is_consistent_with_incumbent() {
        let result = quick(LinkClass::Large, Objective::LatOp).discover();
        // The combinatorial bound can never exceed the incumbent score.
        assert!(result.bound <= result.objective.score + 1e-6);
        assert!(result
            .progress
            .samples()
            .iter()
            .all(|s| s.bound <= s.incumbent + 1e-6));
    }

    #[test]
    fn composite_discovery_matches_its_legacy_equivalent() {
        // A composite that decomposes identically to FaultOp must follow
        // the same annealing trajectory: same seed, same scores, same
        // discovered adjacency.
        let legacy = quick(LinkClass::Medium, Objective::fault_op_default()).discover();
        let composite = quick(
            LinkClass::Medium,
            Objective::Composite(Objective::fault_op_default().decomposition()),
        )
        .discover();
        assert_eq!(legacy.objective.score, composite.objective.score);
        assert_eq!(
            legacy.topology.adjacency(),
            composite.topology.adjacency(),
            "composite trajectory diverged from the legacy variant"
        );
        assert_eq!(
            composite.topology.name(),
            "NS-Mix[1xHops+100000xCrit+40xSpare]-medium"
        );
        assert!((legacy.bound - composite.bound).abs() < 1e-9);
    }

    #[test]
    fn composite_builder_shorthand_applies() {
        use crate::terms::Term;
        let ns = NetSmith::new(Layout::noi_4x5(), LinkClass::Medium)
            .composite_objective([(1.0, Term::Hops), (0.5, Term::SpareCapacity)]);
        assert_eq!(ns.problem().objective.short_name(), "Mix[1xHops+0.5xSpare]");
        assert!(!ns.problem().objective.needs_cut());
    }

    #[test]
    fn builder_setters_apply() {
        let ns = NetSmith::new(Layout::noi_4x5(), LinkClass::Small)
            .objective(Objective::SCOp)
            .symmetric_links(true)
            .max_diameter(5)
            .workers(7)
            .seed(99);
        assert_eq!(ns.problem().objective.short_name(), "SCOp");
        assert!(ns.problem().symmetric_links);
        assert_eq!(ns.problem().max_diameter, Some(5));
    }
}
