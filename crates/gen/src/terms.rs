//! Composable objective terms over a shared [`TopoAnalysis`].
//!
//! The paper frames NetSmith as a framework that "readily accepts other
//! objectives"; this module makes that literal.  Every scoring concern the
//! search engines know about — hop count, sparsest-cut bandwidth, the
//! analytic energy proxy, articulation links, spare min-cut capacity — is
//! an [`ObjectiveTerm`]: a function from a cached topology analysis to a
//! scalar score (lower is better), paired with an *admissible lower bound*
//! (a value no topology satisfying the problem constraints can beat).
//!
//! Terms compose linearly: [`crate::Objective::Composite`] holds a list of
//! [`WeightedTerm`]s and scores a candidate as `Σ weight · term score`,
//! while its bound is `Σ weight · term bound` (admissible because every
//! weight is required to be non-negative).  The legacy `Objective` enum
//! variants (`LatOp`, `SCOp`, `FaultOp`, …) decompose into exactly these
//! terms, so a single evaluation code path serves the exact evaluator, the
//! annealer's cut-pool surrogate, and the bound computation alike.

use crate::bounds;
use crate::problem::GenerationProblem;
use netsmith_topo::analysis::TopoAnalysis;
use netsmith_topo::cuts;
use netsmith_topo::traffic::DemandMatrix;
use netsmith_topo::Topology;
use serde::{Deserialize, Serialize};

/// Scale factor that keeps the bandwidth term dominant over the hop-count
/// tiebreak in the SCOp score.
pub const SCOP_BANDWIDTH_SCALE: f64 = 1.0e7;

/// Everything a term may consult when scoring one candidate topology: the
/// topology itself, its cached [`TopoAnalysis`], and the sparsest-cut value
/// resolved once for all cut-based terms (0 when no term asked for it).
pub struct TermContext<'a> {
    /// The candidate topology.
    pub topology: &'a Topology,
    /// Cached structural analysis of `topology`.
    pub analysis: &'a TopoAnalysis,
    /// Normalized sparsest-cut bandwidth (exact or cut-pool surrogate),
    /// `0.0` when no term in the objective needs cuts.
    pub sparsest_cut: f64,
}

/// How the sparsest-cut value of a [`TermContext`] is obtained.
#[derive(Debug, Clone, Copy)]
pub enum CutEval<'a> {
    /// Exact sparsest cut (exhaustive or heuristic, per network size).
    Exact,
    /// Minimum normalized bandwidth over a pool of candidate cuts — the
    /// annealer's cutting-plane-style surrogate.  An empty pool falls back
    /// to the exact cut.
    Pool(&'a [Vec<bool>]),
}

/// One composable scoring concern: maps a [`TermContext`] to a scalar score
/// (lower is better) and carries an admissible lower bound on that score
/// over all topologies satisfying a problem's constraints.
pub trait ObjectiveTerm {
    /// Compact label used in composite objective names ("Hops", "Cut", …).
    fn tag(&self) -> String;

    /// Whether scoring needs the sparsest-cut value resolved.
    fn needs_cut(&self) -> bool {
        false
    }

    /// Score a candidate; only called on strongly connected topologies
    /// (disconnection is penalized before terms are consulted).
    fn score(&self, ctx: &TermContext<'_>) -> f64;

    /// Admissible lower bound: no topology satisfying `problem`'s radix and
    /// link-length constraints scores below this.
    fn lower_bound(&self, problem: &GenerationProblem) -> f64;
}

/// Total shortest-path hop count (the LatOp objective O1).
pub struct HopsTerm;

impl ObjectiveTerm for HopsTerm {
    fn tag(&self) -> String {
        "Hops".into()
    }

    fn score(&self, ctx: &TermContext<'_>) -> f64 {
        ctx.analysis.total_hops().expect("connected") as f64
    }

    fn lower_bound(&self, problem: &GenerationProblem) -> f64 {
        bounds::latop_lower_bound(problem)
    }
}

/// Demand-weighted hop count scaled to total-hop units (the pattern-
/// optimized objective behind the paper's shuffle topologies).
pub struct PatternHopsTerm<'a>(pub &'a DemandMatrix);

impl ObjectiveTerm for PatternHopsTerm<'_> {
    fn tag(&self) -> String {
        "PatHops".into()
    }

    fn score(&self, ctx: &TermContext<'_>) -> f64 {
        let n = ctx.analysis.num_routers() as f64;
        // Scale to the same magnitude as total hops for comparability.
        ctx.analysis.demand_weighted_hops(self.0) * n * (n - 1.0)
    }

    fn lower_bound(&self, problem: &GenerationProblem) -> f64 {
        bounds::pattern_latop_lower_bound(problem, self.0)
    }
}

/// Negated, scaled sparsest-cut bandwidth (the SCOp objective O2's
/// bandwidth half; negated because lower scores are better).
pub struct SparsestCutTerm;

impl ObjectiveTerm for SparsestCutTerm {
    fn tag(&self) -> String {
        "Cut".into()
    }

    fn needs_cut(&self) -> bool {
        true
    }

    fn score(&self, ctx: &TermContext<'_>) -> f64 {
        -ctx.sparsest_cut * SCOP_BANDWIDTH_SCALE
    }

    fn lower_bound(&self, problem: &GenerationProblem) -> f64 {
        -bounds::scop_upper_bound(problem) * SCOP_BANDWIDTH_SCALE
    }
}

/// Analytic energy proxy: static (leakage) power of the link/router
/// inventory plus `edp_weight` times an energy-delay product built from the
/// average hop count and the wire length each traversal drives.
pub struct EnergyProxyTerm {
    /// Weight of the energy-delay-product component relative to static
    /// power (mW per EDP unit).
    pub edp_weight: f64,
}

impl ObjectiveTerm for EnergyProxyTerm {
    fn tag(&self) -> String {
        "Energy".into()
    }

    fn score(&self, ctx: &TermContext<'_>) -> f64 {
        let n = ctx.analysis.num_routers() as f64;
        let wire = ctx.analysis.wire_stats(ctx.topology);
        let static_mw = n * energy_proxy::ROUTER_LEAKAGE_MW
            + wire.total_mm * energy_proxy::WIRE_LEAKAGE_MW_PER_MM;
        let avg_link_mm = if wire.num_links == 0 {
            0.0
        } else {
            wire.total_mm / wire.num_links as f64
        };
        static_mw
            + self.edp_weight * energy_proxy::edp_term(ctx.analysis.average_hops(), avg_link_mm)
    }

    fn lower_bound(&self, problem: &GenerationProblem) -> f64 {
        // Router leakage is unavoidable; wire terms are >= 0 and the EDP
        // term is increasing in hops, so evaluating it at the hop lower
        // bound with zero wire length under-estimates every achievable
        // score.
        let n = problem.num_routers() as f64;
        let avg_hops_lb = bounds::average_hops_lower_bound(problem);
        n * energy_proxy::ROUTER_LEAKAGE_MW
            + self.edp_weight * energy_proxy::edp_term(avg_hops_lb, 0.0)
    }
}

/// Count of critical (articulation) duplex links — single points of
/// failure the FaultOp objective penalizes.
pub struct CriticalLinksTerm;

impl ObjectiveTerm for CriticalLinksTerm {
    fn tag(&self) -> String {
        "Crit".into()
    }

    fn score(&self, ctx: &TermContext<'_>) -> f64 {
        ctx.analysis.critical_links(ctx.topology).len() as f64
    }

    fn lower_bound(&self, _problem: &GenerationProblem) -> f64 {
        0.0
    }
}

/// Negated spare min-cut capacity (minimum directional degree) — the
/// FaultOp objective's reward, negated so lower is better.
pub struct SpareCapacityTerm;

impl ObjectiveTerm for SpareCapacityTerm {
    fn tag(&self) -> String {
        "Spare".into()
    }

    fn score(&self, ctx: &TermContext<'_>) -> f64 {
        -(ctx.analysis.min_directional_degree() as f64)
    }

    fn lower_bound(&self, problem: &GenerationProblem) -> f64 {
        // A router's directional degree can never exceed the radix.
        -(problem.layout.radix() as f64)
    }
}

/// A serializable objective term.  Each variant delegates to the
/// corresponding [`ObjectiveTerm`] implementation, so composites survive
/// serde round trips while scoring stays in one place per concern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// Total shortest-path hop count ([`HopsTerm`]).
    Hops,
    /// Demand-weighted hop count in total-hop units ([`PatternHopsTerm`]).
    PatternHops(DemandMatrix),
    /// Negated, scaled sparsest-cut bandwidth ([`SparsestCutTerm`]).
    SparsestCut,
    /// Analytic static-power + energy-delay proxy ([`EnergyProxyTerm`]).
    EnergyProxy {
        /// Weight of the EDP component relative to static power.
        edp_weight: f64,
    },
    /// Critical (articulation) duplex-link count ([`CriticalLinksTerm`]).
    CriticalLinks,
    /// Negated spare min-cut capacity ([`SpareCapacityTerm`]).
    SpareCapacity,
}

impl ObjectiveTerm for Term {
    fn tag(&self) -> String {
        match self {
            Term::Hops => HopsTerm.tag(),
            Term::PatternHops(d) => PatternHopsTerm(d).tag(),
            Term::SparsestCut => SparsestCutTerm.tag(),
            Term::EnergyProxy { edp_weight } => EnergyProxyTerm {
                edp_weight: *edp_weight,
            }
            .tag(),
            Term::CriticalLinks => CriticalLinksTerm.tag(),
            Term::SpareCapacity => SpareCapacityTerm.tag(),
        }
    }

    fn needs_cut(&self) -> bool {
        match self {
            Term::Hops => HopsTerm.needs_cut(),
            Term::PatternHops(d) => PatternHopsTerm(d).needs_cut(),
            Term::SparsestCut => SparsestCutTerm.needs_cut(),
            Term::EnergyProxy { edp_weight } => EnergyProxyTerm {
                edp_weight: *edp_weight,
            }
            .needs_cut(),
            Term::CriticalLinks => CriticalLinksTerm.needs_cut(),
            Term::SpareCapacity => SpareCapacityTerm.needs_cut(),
        }
    }

    fn score(&self, ctx: &TermContext<'_>) -> f64 {
        match self {
            Term::Hops => HopsTerm.score(ctx),
            Term::PatternHops(d) => PatternHopsTerm(d).score(ctx),
            Term::SparsestCut => SparsestCutTerm.score(ctx),
            Term::EnergyProxy { edp_weight } => EnergyProxyTerm {
                edp_weight: *edp_weight,
            }
            .score(ctx),
            Term::CriticalLinks => CriticalLinksTerm.score(ctx),
            Term::SpareCapacity => SpareCapacityTerm.score(ctx),
        }
    }

    fn lower_bound(&self, problem: &GenerationProblem) -> f64 {
        match self {
            Term::Hops => HopsTerm.lower_bound(problem),
            Term::PatternHops(d) => PatternHopsTerm(d).lower_bound(problem),
            Term::SparsestCut => SparsestCutTerm.lower_bound(problem),
            Term::EnergyProxy { edp_weight } => EnergyProxyTerm {
                edp_weight: *edp_weight,
            }
            .lower_bound(problem),
            Term::CriticalLinks => CriticalLinksTerm.lower_bound(problem),
            Term::SpareCapacity => SpareCapacityTerm.lower_bound(problem),
        }
    }
}

/// A term with its (non-negative) weight inside a composite objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedTerm {
    /// Non-negative weight multiplying the term's score and bound.
    pub weight: f64,
    /// The scoring concern.
    pub term: Term,
}

impl WeightedTerm {
    /// A weighted term; panics on negative or non-finite weights (which
    /// would break the admissibility of the composed lower bound).
    pub fn new(weight: f64, term: Term) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "composite term weights must be finite and non-negative, got {weight}"
        );
        WeightedTerm { weight, term }
    }

    /// Compact `weight`×`tag` label used in composite objective names.
    pub fn label(&self) -> String {
        format!("{}x{}", fmt_weight(self.weight), self.term.tag())
    }
}

/// Compact weight rendering for objective names: integers print bare,
/// everything else rounds to four decimals with trailing zeros trimmed
/// (names are CSV labels, not round-trippable encodings).
pub(crate) fn fmt_weight(w: f64) -> String {
    if w == w.trunc() && w.abs() < 1e15 {
        return format!("{}", w as i64);
    }
    let s = format!("{w:.4}");
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    if trimmed.is_empty() || trimmed == "-" {
        "0".into()
    } else {
        trimmed.to_string()
    }
}

/// Resolve the sparsest-cut value for `topo` under a cut-evaluation mode.
/// Returns 0 when `needed` is false (no term consults the value).
pub(crate) fn resolve_cut(topo: &Topology, cut: CutEval<'_>, needed: bool) -> f64 {
    if !needed {
        return 0.0;
    }
    match cut {
        CutEval::Pool(pool) if !pool.is_empty() => {
            let mut pool_cut = f64::INFINITY;
            for membership in pool {
                let (f, b) = cuts::crossing_links(topo, membership);
                let size_u = membership.iter().filter(|&&x| x).count();
                let size_v = membership.len() - size_u;
                if size_u == 0 || size_v == 0 {
                    continue;
                }
                let norm = f.min(b) as f64 / (size_u * size_v) as f64;
                pool_cut = pool_cut.min(norm);
            }
            pool_cut
        }
        _ => cuts::sparsest_cut(topo).normalized_bandwidth,
    }
}

/// Technology constants of the analytic energy proxy used by
/// [`EnergyProxyTerm`].  They mirror `netsmith_power::PowerConfig`'s
/// defaults (kept as local constants so the search engine stays free of the
/// simulator/power dependency chain); the proxy only needs the *relative*
/// weighting of router vs. wire energy to rank candidate topologies.
pub mod energy_proxy {
    /// Router leakage per router in mW.
    pub const ROUTER_LEAKAGE_MW: f64 = 4.0;
    /// Wire leakage per millimetre in mW.
    pub const WIRE_LEAKAGE_MW_PER_MM: f64 = 0.15;
    /// Dynamic energy per flit per router traversal in pJ.
    pub const ROUTER_ENERGY_PJ: f64 = 3.0;
    /// Dynamic energy per flit per millimetre of wire in pJ.
    pub const WIRE_ENERGY_PJ_PER_MM: f64 = 0.9;

    /// Hop-count-dependent part of the proxy: energy per flit (router +
    /// wire traversals along an average path) times the delay proxy
    /// (average hops) — an analytic energy-delay product.
    pub fn edp_term(average_hops: f64, avg_link_mm: f64) -> f64 {
        let energy_per_flit_pj = (average_hops + 1.0) * ROUTER_ENERGY_PJ
            + average_hops * avg_link_mm * WIRE_ENERGY_PJ_PER_MM;
        energy_per_flit_pj * average_hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_topo::expert;
    use netsmith_topo::{Layout, LinkClass};

    fn ctx_for<'a>(topo: &'a Topology, analysis: &'a TopoAnalysis, cut: f64) -> TermContext<'a> {
        TermContext {
            topology: topo,
            analysis,
            sparsest_cut: cut,
        }
    }

    #[test]
    fn hops_term_scores_total_hops() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let analysis = TopoAnalysis::new(&mesh);
        let ctx = ctx_for(&mesh, &analysis, 0.0);
        assert_eq!(
            HopsTerm.score(&ctx),
            netsmith_topo::metrics::total_hops(&mesh).unwrap() as f64
        );
    }

    #[test]
    fn term_tags_are_stable() {
        assert_eq!(Term::Hops.tag(), "Hops");
        assert_eq!(Term::SparsestCut.tag(), "Cut");
        assert_eq!(Term::EnergyProxy { edp_weight: 1.0 }.tag(), "Energy");
        assert_eq!(Term::CriticalLinks.tag(), "Crit");
        assert_eq!(Term::SpareCapacity.tag(), "Spare");
    }

    #[test]
    fn only_the_cut_term_needs_cuts() {
        assert!(Term::SparsestCut.needs_cut());
        for term in [
            Term::Hops,
            Term::EnergyProxy { edp_weight: 1.0 },
            Term::CriticalLinks,
            Term::SpareCapacity,
        ] {
            assert!(!term.needs_cut(), "{} should not need cuts", term.tag());
        }
    }

    #[test]
    fn weighted_term_labels_encode_weights() {
        assert_eq!(WeightedTerm::new(1.0, Term::Hops).label(), "1xHops");
        assert_eq!(WeightedTerm::new(0.5, Term::SparsestCut).label(), "0.5xCut");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_are_rejected() {
        WeightedTerm::new(-1.0, Term::Hops);
    }

    #[test]
    fn pool_resolution_falls_back_to_exact_when_empty() {
        let torus = expert::folded_torus(&Layout::noi_4x5());
        let exact = resolve_cut(&torus, CutEval::Exact, true);
        let empty_pool = resolve_cut(&torus, CutEval::Pool(&[]), true);
        assert_eq!(exact, empty_pool);
        assert!(exact > 0.0);
        // A pool is a subset of all cuts, so its minimum upper-bounds the
        // exact sparsest cut.
        let pool: Vec<Vec<bool>> = vec![(0..20).map(|i| i < 10).collect()];
        assert!(resolve_cut(&torus, CutEval::Pool(&pool), true) >= exact - 1e-12);
    }

    #[test]
    fn spare_capacity_bound_is_admissible_for_experts() {
        let layout = Layout::noi_4x5();
        let problem = GenerationProblem::new(
            layout.clone(),
            LinkClass::Large,
            crate::objective::Objective::LatOp,
        );
        let bound = SpareCapacityTerm.lower_bound(&problem);
        for topo in expert::all_baselines(&layout) {
            let analysis = TopoAnalysis::new(&topo);
            let ctx = ctx_for(&topo, &analysis, 0.0);
            assert!(SpareCapacityTerm.score(&ctx) >= bound);
        }
    }
}
