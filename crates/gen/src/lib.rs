//! # netsmith-gen
//!
//! The core contribution of the NetSmith paper: automatic discovery of
//! network-on-interposer topologies that outperform expert-designed
//! networks, given the router layout, the link-length budget and the router
//! radix.
//!
//! Two optimization paths are provided:
//!
//! * [`milp`] — the exact MIP formulation of the paper's Table I (variables
//!   `M`, `O`, `D`, `B`; constraints C1–C9; LatOp and SCOp objectives)
//!   lowered onto the `netsmith-lp` branch-and-bound solver.  The paper
//!   solves this with Gurobi on a 32-thread server; our from-scratch solver
//!   proves optimality only for small layouts, and is used for validating
//!   the formulation and the search engines against ground truth.
//! * [`anneal`] + [`generator`] — the production path: seeded, parallel
//!   simulated annealing / hill climbing over connectivity maps with
//!   incremental objective evaluation (every move delta-updates a cached
//!   [`netsmith_topo::analysis::TopoAnalysis`] instead of re-deriving the
//!   distance matrix), combined with combinatorial lower bounds
//!   ([`bounds`]) so that the solver can report the same "objective bounds
//!   gap over time" trajectory the paper plots in Figure 5 ([`progress`]).
//!
//! Objectives are composable: every [`Objective`] decomposes into weighted
//! [`terms::ObjectiveTerm`]s (hops, sparsest cut, energy proxy,
//! articulation links, spare capacity), and [`Objective::Composite`] /
//! [`NetSmith::composite_objective`] accept arbitrary non-negative
//! weightings for multi-criteria synthesis (see the `fig14_pareto`
//! harness).
//!
//! The public entry point is [`NetSmith`], which mirrors the way the paper
//! uses the framework: pick a layout, a link class and an objective, give
//! it a time budget, and receive a validated
//! [`Topology`](netsmith_topo::Topology) plus the solver progress trace.

pub mod anneal;
pub mod bounds;
pub mod generator;
pub mod milp;
pub mod objective;
pub mod problem;
pub mod progress;
pub mod terms;

pub use anneal::{AnnealConfig, AnnealResult};
pub use generator::{DiscoveryResult, NetSmith};
pub use milp::{build_latop_model, build_scop_model, solve_latop_milp, MilpGenConfig};
pub use objective::{Objective, ObjectiveValue};
pub use problem::GenerationProblem;
pub use progress::{ProgressSample, SolverProgress};
pub use terms::{CutEval, ObjectiveTerm, Term, TermContext, WeightedTerm};
