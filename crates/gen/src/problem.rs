//! Definition of a topology-generation problem instance.

use crate::objective::Objective;
use netsmith_topo::{Layout, LinkClass, RouterId};
use serde::{Deserialize, Serialize};

/// A fully specified topology-generation problem: NetSmith's inputs are the
/// physical layout of routers, the link-length budget (which induces the
/// valid-link set `L` and the NoI clock), the router radix (carried by the
/// layout), the objective, and optional extra constraints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationProblem {
    pub layout: Layout,
    pub class: LinkClass,
    pub objective: Objective,
    /// When true, constraint C9 is active: every link is paired with its
    /// reverse.  The paper's headline results use asymmetric links (a ~3%
    /// throughput gain); symmetric mode is kept for the ablation.
    pub symmetric_links: bool,
    /// Optional network diameter bound (constraint C8).  Bounding the
    /// diameter is optional but helps the solver find first solutions
    /// faster, exactly as the paper notes.
    pub max_diameter: Option<u32>,
    /// Optional minimum sparsest-cut bandwidth (constraint C7).
    pub min_sparsest_cut: Option<f64>,
}

impl GenerationProblem {
    /// New problem with the paper's defaults: asymmetric links, no diameter
    /// bound, no cut floor.
    pub fn new(layout: Layout, class: LinkClass, objective: Objective) -> Self {
        GenerationProblem {
            layout,
            class,
            objective,
            symmetric_links: false,
            max_diameter: None,
            min_sparsest_cut: None,
        }
    }

    /// Builder: force symmetric links (constraint C9).
    pub fn with_symmetric_links(mut self, symmetric: bool) -> Self {
        self.symmetric_links = symmetric;
        self
    }

    /// Builder: bound the network diameter (constraint C8).
    pub fn with_max_diameter(mut self, diameter: u32) -> Self {
        self.max_diameter = Some(diameter);
        self
    }

    /// Builder: require a minimum sparsest-cut bandwidth (constraint C7).
    pub fn with_min_sparsest_cut(mut self, min_cut: f64) -> Self {
        self.min_sparsest_cut = Some(min_cut);
        self
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.layout.num_routers()
    }

    /// The valid-link set `L` induced by the class and layout (constraint C3).
    pub fn valid_links(&self) -> Vec<(RouterId, RouterId)> {
        self.class.valid_links(&self.layout)
    }

    /// Canonical name for topologies produced from this problem, following
    /// the paper's naming ("NS-LatOp", "NS-SCOp", "NS ShufOpt" …).
    pub fn topology_name(&self) -> String {
        format!("NS-{}-{}", self.objective.short_name(), self.class.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_topo::Layout;

    #[test]
    fn defaults_follow_the_paper() {
        let p = GenerationProblem::new(Layout::noi_4x5(), LinkClass::Medium, Objective::LatOp);
        assert!(!p.symmetric_links);
        assert!(p.max_diameter.is_none());
        assert_eq!(p.num_routers(), 20);
        assert_eq!(p.topology_name(), "NS-LatOp-medium");
    }

    #[test]
    fn builders_set_constraints() {
        let p = GenerationProblem::new(Layout::noi_4x5(), LinkClass::Small, Objective::SCOp)
            .with_symmetric_links(true)
            .with_max_diameter(4)
            .with_min_sparsest_cut(0.02);
        assert!(p.symmetric_links);
        assert_eq!(p.max_diameter, Some(4));
        assert_eq!(p.min_sparsest_cut, Some(0.02));
        assert_eq!(p.topology_name(), "NS-SCOp-small");
    }

    #[test]
    fn valid_links_match_class() {
        let small = GenerationProblem::new(Layout::noi_4x5(), LinkClass::Small, Objective::LatOp);
        let large = GenerationProblem::new(Layout::noi_4x5(), LinkClass::Large, Objective::LatOp);
        assert!(small.valid_links().len() < large.valid_links().len());
    }
}
