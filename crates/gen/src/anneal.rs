//! Simulated-annealing search over connectivity maps.
//!
//! This is the production engine behind the NetSmith reproduction.  The
//! exact MIP of Table I is preserved in [`crate::milp`] and validated on
//! small layouts, but a dense-tableau branch-and-bound cannot match Gurobi
//! on 20+ router instances, so the searcher used for the paper-scale
//! experiments explores the same feasible set (radix, link-length, and
//! connectivity constraints; optional link symmetry) with a seeded
//! Metropolis annealer:
//!
//! * moves rewire, add, remove or endpoint-swap links, always staying
//!   within the valid-link set and the radix budget;
//! * every move is scored through the cached/delta path: the incumbent's
//!   [`TopoAnalysis`] is updated incrementally for the move's add/remove
//!   link set (no from-scratch all-pairs BFS per candidate — see
//!   [`netsmith_topo::analysis`]), and all objective terms share that one
//!   analysis;
//! * the SCOp objective uses a cutting-plane-style pool of candidate cuts
//!   that is periodically refreshed with heuristic sparsest-cut searches,
//!   and the final result is re-scored with the exact cut;
//! * the best feasible topology and a progress trace (incumbent vs the
//!   combinatorial bound, i.e. the objective-bounds gap of Figure 5) are
//!   returned.

use crate::objective::{evaluate_weighted, ObjectiveValue};
use crate::problem::GenerationProblem;
use crate::progress::SolverProgress;
use crate::terms::{CutEval, WeightedTerm};
use netsmith_obs::Obs;
use netsmith_topo::analysis::TopoAnalysis;
use netsmith_topo::cuts;
use netsmith_topo::{RouterId, Topology};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration of a single annealing run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// RNG seed.
    pub seed: u64,
    /// Maximum number of candidate evaluations.
    pub max_evaluations: u64,
    /// Wall-clock budget.
    pub time_budget: Duration,
    /// Starting temperature, in units of the typical `|Δscore|` of a
    /// single move (sampled at startup, so one schedule works for both the
    /// hop-scale LatOp objective and the cut-scale SCOp objective).
    pub initial_temperature: f64,
    /// Final temperature, in the same relative units.
    pub final_temperature: f64,
    /// For cut-based objectives: refresh the cut pool every this many
    /// accepted moves.
    pub cut_pool_refresh: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            seed: 0x5EED_0001,
            max_evaluations: 60_000,
            time_budget: Duration::from_secs(30),
            initial_temperature: 2.0,
            final_temperature: 1e-3,
            cut_pool_refresh: 200,
        }
    }
}

impl AnnealConfig {
    /// A reduced-budget configuration for unit tests and doc examples.
    pub fn quick() -> Self {
        AnnealConfig {
            max_evaluations: 4_000,
            time_budget: Duration::from_secs(5),
            ..Default::default()
        }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// Best feasible topology found.
    pub topology: Topology,
    /// Exact objective value of that topology.
    pub objective: ObjectiveValue,
    /// Progress trace (incumbent score vs the supplied bound).
    pub progress: SolverProgress,
    /// Number of candidate evaluations performed.
    pub evaluations: u64,
}

/// The directed links a proposed move removed and added, in application
/// order.  Feeds [`TopoAnalysis::after_move`] so candidate evaluation can
/// update the incumbent's cached analysis instead of re-deriving it.
#[derive(Debug, Default)]
struct MoveLog {
    removed: Vec<(RouterId, RouterId)>,
    added: Vec<(RouterId, RouterId)>,
}

impl MoveLog {
    fn clear(&mut self) {
        self.removed.clear();
        self.added.clear();
    }
}

/// Run one annealing search.  `bound` is the combinatorial bound used for
/// gap reporting (see [`crate::bounds`]).
///
/// Instrumentation: each phase (calibration, annealing, polish) runs under
/// an `anneal.*` span, and the `anneal.evaluations`,
/// `anneal.moves.accepted`, `anneal.moves.rejected` and `anneal.reheats`
/// counters account for every scored candidate.  Counter totals are
/// deterministic per seed; pass [`Obs::noop`] to observe nothing.
pub fn anneal(
    problem: &GenerationProblem,
    config: &AnnealConfig,
    bound: f64,
    obs: &Obs,
) -> AnnealResult {
    let obs_evaluations = obs.counter("anneal.evaluations");
    let obs_accepted = obs.counter("anneal.moves.accepted");
    let obs_rejected = obs.counter("anneal.moves.rejected");
    let obs_reheats = obs.counter("anneal.reheats");
    let start = Instant::now();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let valid_links = problem.valid_links();
    assert!(
        !valid_links.is_empty(),
        "link class admits no links on this layout"
    );

    let mut current = initial_topology(problem, &mut rng);
    let mut current_analysis = TopoAnalysis::new(&current);
    let mut cut_pool: Vec<Vec<bool>> = Vec::new();
    if problem.objective.needs_cut() {
        seed_cut_pool(&current, &mut cut_pool);
    }
    let mut progress = SolverProgress::new();

    // Decompose the objective once; every candidate evaluation — exact or
    // cut-pool surrogate — scores these weighted terms against a cached
    // (delta-updated) analysis through the single shared code path.
    let terms: Vec<WeightedTerm> = problem.objective.decomposition();
    let score_of = |topo: &Topology, analysis: &TopoAnalysis, pool: &[Vec<bool>]| -> f64 {
        let mut value = evaluate_weighted(&terms, topo, analysis, CutEval::Pool(pool));
        value.score += constraint_penalty(problem, analysis, &value);
        value.score
    };

    let mut current_score = score_of(&current, &current_analysis, &cut_pool);
    let mut best = current.clone();
    let mut best_analysis = current_analysis.clone();
    let mut best_score = current_score;
    progress.record(start.elapsed(), best_score, bound, 0);

    // Budget split: every candidate evaluation — calibration, annealing and
    // polish — counts against `max_evaluations`, so the configured budget is
    // an exact cap on objective evaluations.
    let calibration_budget = (config.max_evaluations / 8).min(64);
    let polish_budget = (config.max_evaluations / 4)
        .clamp(64, 8_192)
        .min(config.max_evaluations - calibration_budget);
    let sa_end = config.max_evaluations - polish_budget;
    let mut evaluations = 0u64;

    // Calibrate the temperature scale to this objective: sample the score
    // deltas of a handful of moves from the initial solution and use their
    // median magnitude as the unit.  LatOp deltas are fractions of a hop
    // while SCOp deltas are cut-scaled by 1e7, so a fixed absolute schedule
    // cannot serve both.
    let mut log = MoveLog::default();
    let mut calibration = obs.span("anneal.calibrate");
    let delta_scale = {
        let mut deltas: Vec<f64> = Vec::with_capacity(32);
        for _ in 0..calibration_budget {
            if start.elapsed() >= config.time_budget {
                break;
            }
            evaluations += 1;
            let mut candidate = current.clone();
            log.clear();
            if !propose_move(problem, &mut candidate, &valid_links, &mut rng, &mut log) {
                continue;
            }
            let analysis = current_analysis.after_move(&candidate, &log.removed, &log.added);
            let d = (score_of(&candidate, &analysis, &cut_pool) - current_score).abs();
            if d > 1e-12 {
                deltas.push(d);
            }
            if deltas.len() >= 32 {
                break;
            }
        }
        if deltas.is_empty() {
            1.0
        } else {
            deltas.sort_by(|a, b| a.partial_cmp(b).unwrap());
            deltas[deltas.len() / 2]
        }
    };
    obs_evaluations.add(evaluations);
    calibration.attr("evaluations", evaluations);
    calibration.attr("delta_scale", delta_scale);
    calibration.close();

    let mut sa_span = obs.span("anneal.sa");
    let sa_phase_start = evaluations;
    let mut accepted = 0u64;
    // Stall-triggered reheating: when no new incumbent lands for a window,
    // restart the cooling schedule from the best topology over the
    // remaining horizon.  Cheap basin-hopping that stays inside the budget.
    let stall_window = (sa_end / 4).max(256);
    let mut last_improvement = evaluations;
    let mut schedule_anchor = evaluations;
    while evaluations < sa_end && start.elapsed() < config.time_budget {
        evaluations += 1;
        if evaluations - last_improvement > stall_window {
            current = best.clone();
            current_analysis = best_analysis.clone();
            current_score = score_of(&current, &current_analysis, &cut_pool);
            schedule_anchor = evaluations;
            last_improvement = evaluations;
            obs_reheats.incr();
        }
        let temperature = delta_scale
            * temperature_at(
                config,
                evaluations - schedule_anchor,
                (sa_end - schedule_anchor).max(1),
            );
        let mut candidate = current.clone();
        log.clear();
        if !propose_move(problem, &mut candidate, &valid_links, &mut rng, &mut log) {
            continue;
        }
        let candidate_analysis = current_analysis.after_move(&candidate, &log.removed, &log.added);
        let candidate_score = score_of(&candidate, &candidate_analysis, &cut_pool);
        let delta = candidate_score - current_score;
        let accept = delta <= 0.0 || rng.gen_bool((-delta / temperature.max(1e-9)).exp().min(1.0));
        if accept {
            current = candidate;
            current_analysis = candidate_analysis;
            current_score = candidate_score;
            accepted += 1;
            if problem.objective.needs_cut()
                && accepted.is_multiple_of(config.cut_pool_refresh.max(1))
            {
                refresh_cut_pool(&current, &mut cut_pool, &mut rng);
                // Pool change can alter the score scale; re-evaluate.
                current_score = score_of(&current, &current_analysis, &cut_pool);
                best_score = score_of(&best, &best_analysis, &cut_pool);
            }
            if current_score < best_score && current.is_valid() {
                best = current.clone();
                best_analysis = current_analysis.clone();
                best_score = current_score;
                last_improvement = evaluations;
                progress.record(start.elapsed(), best_score, bound, evaluations);
            }
            obs_accepted.incr();
        } else {
            obs_rejected.incr();
        }
    }
    obs_evaluations.add(evaluations - sa_phase_start);
    sa_span.attr("evaluations", evaluations - sa_phase_start);
    sa_span.attr("accepted", accepted);
    sa_span.close();

    // Zero-temperature polish: the SA tail leaves the incumbent a few moves
    // short of its local optimum, which makes low-budget runs noisy.  A
    // greedy descent that also drifts along equal-score plateaus (common
    // for hop-count objectives) converges every run onto a local optimum
    // without disturbing per-seed determinism; `best` only moves on strict
    // improvement, so the plateau walk can never lose ground.
    let sideways_eps = delta_scale * 1e-9;
    let mut polish_span = obs.span("anneal.polish");
    let polish_phase_start = evaluations;
    current = best.clone();
    current_analysis = best_analysis.clone();
    current_score = best_score;
    while evaluations < config.max_evaluations {
        if start.elapsed() >= config.time_budget {
            break;
        }
        evaluations += 1;
        let mut candidate = current.clone();
        log.clear();
        if !propose_move(problem, &mut candidate, &valid_links, &mut rng, &mut log) {
            continue;
        }
        let candidate_analysis = current_analysis.after_move(&candidate, &log.removed, &log.added);
        let candidate_score = score_of(&candidate, &candidate_analysis, &cut_pool);
        if candidate_score <= current_score + sideways_eps {
            current = candidate;
            current_analysis = candidate_analysis;
            current_score = candidate_score;
            if current_score < best_score && current.is_valid() {
                // The cut pool is frozen during the polish phase, so the
                // incumbent analysis no longer needs to be carried along.
                best = current.clone();
                best_score = current_score;
                progress.record(start.elapsed(), best_score, bound, evaluations);
            }
            obs_accepted.incr();
        } else {
            obs_rejected.incr();
        }
    }
    obs_evaluations.add(evaluations - polish_phase_start);
    polish_span.attr("evaluations", evaluations - polish_phase_start);
    polish_span.close();

    // Exact re-evaluation of the final topology (the cut pool only ever
    // over-estimates the sparsest cut).
    let objective = problem.objective.evaluate(&best);
    progress.record(start.elapsed(), objective.score, bound, evaluations);
    AnnealResult {
        topology: best.with_name(problem.topology_name()),
        objective,
        progress,
        evaluations,
    }
}

/// Geometric temperature schedule.
fn temperature_at(config: &AnnealConfig, evaluation: u64, horizon: u64) -> f64 {
    let frac = evaluation as f64 / horizon.max(1) as f64;
    let t0 = config.initial_temperature.max(1e-9);
    let tf = config.final_temperature.max(1e-12);
    t0 * (tf / t0).powf(frac)
}

/// Penalty for violating the optional diameter / minimum-cut constraints.
/// The diameter comes for free from the cached distance matrix.
fn constraint_penalty(
    problem: &GenerationProblem,
    analysis: &TopoAnalysis,
    value: &ObjectiveValue,
) -> f64 {
    let mut penalty = 0.0;
    if let Some(max_diam) = problem.max_diameter {
        if let Some(d) = analysis.diameter() {
            if d > max_diam {
                penalty += 1e6 * (d - max_diam) as f64;
            }
        }
    }
    if let Some(min_cut) = problem.min_sparsest_cut {
        if value.connected && problem.objective.needs_cut() && value.sparsest_cut < min_cut {
            penalty += 1e6 * (min_cut - value.sparsest_cut);
        }
    }
    penalty
}

/// Initial solution: a Hamiltonian ring of unit links for guaranteed
/// connectivity, then random valid links until the port budget is (mostly)
/// used, mimicking how aggressively the paper's topologies use the radix.
fn initial_topology(problem: &GenerationProblem, rng: &mut SmallRng) -> Topology {
    let mut topo = Topology::empty(
        problem.topology_name(),
        problem.layout.clone(),
        problem.class,
    );
    for (a, b) in netsmith_topo::expert::hamiltonian_ring(&problem.layout) {
        topo.add_bidirectional(a, b);
    }
    let mut candidates = problem.valid_links();
    candidates.shuffle(rng);
    for (a, b) in candidates {
        if problem.symmetric_links {
            if can_add(&topo, a, b) && can_add(&topo, b, a) {
                topo.add_bidirectional(a, b);
            }
        } else if can_add(&topo, a, b) {
            topo.add_link(a, b);
        }
    }
    topo
}

fn can_add(topo: &Topology, a: RouterId, b: RouterId) -> bool {
    a != b && !topo.has_link(a, b) && topo.free_out_ports(a) > 0 && topo.free_in_ports(b) > 0
}

/// Propose a random move in place; returns false when the move could not be
/// applied (caller simply retries with a new random draw).  On success the
/// applied link changes are recorded in `log` (a failed proposal restores
/// the topology and leaves whatever partial entries it logged — callers
/// clear the log before each proposal and ignore it on failure).
fn propose_move(
    problem: &GenerationProblem,
    topo: &mut Topology,
    valid_links: &[(RouterId, RouterId)],
    rng: &mut SmallRng,
    log: &mut MoveLog,
) -> bool {
    let kind = rng.gen_range(0..100);
    if problem.symmetric_links {
        propose_symmetric_move(topo, valid_links, rng, kind, log)
    } else {
        propose_asymmetric_move(topo, valid_links, rng, kind, log)
    }
}

fn propose_asymmetric_move(
    topo: &mut Topology,
    valid_links: &[(RouterId, RouterId)],
    rng: &mut SmallRng,
    kind: u32,
    log: &mut MoveLog,
) -> bool {
    let links: Vec<(RouterId, RouterId)> = topo.links().collect();
    if kind < 55 {
        // Rewire: remove one random link, add a different valid link.
        if links.is_empty() {
            return false;
        }
        let &(ra, rb) = &links[rng.gen_range(0..links.len())];
        topo.remove_link(ra, rb);
        for _ in 0..16 {
            let &(a, b) = &valid_links[rng.gen_range(0..valid_links.len())];
            if (a, b) != (ra, rb) && can_add(topo, a, b) {
                topo.add_link(a, b);
                log.removed.push((ra, rb));
                log.added.push((a, b));
                return true;
            }
        }
        // Could not find a replacement: restore and fail.
        topo.add_link(ra, rb);
        false
    } else if kind < 75 {
        // Add a link somewhere with free ports.
        for _ in 0..16 {
            let &(a, b) = &valid_links[rng.gen_range(0..valid_links.len())];
            if can_add(topo, a, b) {
                topo.add_link(a, b);
                log.added.push((a, b));
                return true;
            }
        }
        false
    } else if kind < 85 {
        // Remove a link.
        if links.is_empty() {
            return false;
        }
        let &(a, b) = &links[rng.gen_range(0..links.len())];
        topo.remove_link(a, b);
        log.removed.push((a, b));
        true
    } else {
        // Endpoint swap: (a->b, c->d) becomes (a->d, c->b); preserves
        // degrees exactly.
        if links.len() < 2 {
            return false;
        }
        for _ in 0..16 {
            let &(a, b) = &links[rng.gen_range(0..links.len())];
            let &(c, d) = &links[rng.gen_range(0..links.len())];
            if a == c || b == d || a == d || c == b {
                continue;
            }
            if topo.has_link(a, d) || topo.has_link(c, b) {
                continue;
            }
            // Both new links must respect the length class.
            let class = topo.class();
            let (dx1, dy1) = topo.layout().span(a, d);
            let (dx2, dy2) = topo.layout().span(c, b);
            if !class.allows(netsmith_topo::LinkSpan::new(dx1, dy1))
                || !class.allows(netsmith_topo::LinkSpan::new(dx2, dy2))
            {
                continue;
            }
            topo.remove_link(a, b);
            topo.remove_link(c, d);
            topo.add_link(a, d);
            topo.add_link(c, b);
            log.removed.push((a, b));
            log.removed.push((c, d));
            log.added.push((a, d));
            log.added.push((c, b));
            return true;
        }
        false
    }
}

fn propose_symmetric_move(
    topo: &mut Topology,
    valid_links: &[(RouterId, RouterId)],
    rng: &mut SmallRng,
    kind: u32,
    log: &mut MoveLog,
) -> bool {
    // Collect undirected pairs.
    let n = topo.num_routers();
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if topo.has_link(i, j) && topo.has_link(j, i) {
                pairs.push((i, j));
            }
        }
    }
    if kind < 60 {
        // Rewire a pair.
        if pairs.is_empty() {
            return false;
        }
        let &(ra, rb) = &pairs[rng.gen_range(0..pairs.len())];
        topo.remove_link(ra, rb);
        topo.remove_link(rb, ra);
        for _ in 0..16 {
            let &(a, b) = &valid_links[rng.gen_range(0..valid_links.len())];
            if can_add(topo, a, b) && can_add(topo, b, a) {
                topo.add_bidirectional(a, b);
                // The replacement may be the pair just removed; that is a
                // no-op move and the analysis delta handles it exactly.
                if (a, b) != (ra, rb) && (b, a) != (ra, rb) {
                    log.removed.push((ra, rb));
                    log.removed.push((rb, ra));
                    log.added.push((a, b));
                    log.added.push((b, a));
                }
                return true;
            }
        }
        topo.add_bidirectional(ra, rb);
        false
    } else if kind < 85 {
        // Add a pair.
        for _ in 0..16 {
            let &(a, b) = &valid_links[rng.gen_range(0..valid_links.len())];
            if can_add(topo, a, b) && can_add(topo, b, a) {
                topo.add_bidirectional(a, b);
                log.added.push((a, b));
                log.added.push((b, a));
                return true;
            }
        }
        false
    } else {
        // Remove a pair.
        if pairs.is_empty() {
            return false;
        }
        let &(a, b) = &pairs[rng.gen_range(0..pairs.len())];
        topo.remove_link(a, b);
        topo.remove_link(b, a);
        log.removed.push((a, b));
        log.removed.push((b, a));
        true
    }
}

/// Seed the cut pool with a handful of natural partitions (halves by rows,
/// by columns, odd/even) plus one heuristic sparsest cut.
fn seed_cut_pool(topo: &Topology, pool: &mut Vec<Vec<bool>>) {
    let layout = topo.layout();
    let n = layout.num_routers();
    let rows = layout.rows();
    let cols = layout.cols();
    let mut add = |membership: Vec<bool>| {
        let count = membership.iter().filter(|&&x| x).count();
        if count > 0 && count < n && !pool.contains(&membership) {
            pool.push(membership);
        }
    };
    add((0..n).map(|r| layout.position(r).0 < rows / 2).collect());
    add((0..n).map(|r| layout.position(r).1 < cols / 2).collect());
    add((0..n).map(|r| r % 2 == 0).collect());
    let heuristic = cuts::sparsest_cut_heuristic(topo, 8, 0xC07);
    let mut membership = vec![false; n];
    for r in heuristic.partition {
        membership[r] = true;
    }
    add(membership);
}

/// Add the current heuristic sparsest cut of `topo` to the pool.
fn refresh_cut_pool(topo: &Topology, pool: &mut Vec<Vec<bool>>, rng: &mut SmallRng) {
    let n = topo.num_routers();
    let report = cuts::sparsest_cut_heuristic(topo, 4, rng.gen());
    let mut membership = vec![false; n];
    for r in report.partition {
        membership[r] = true;
    }
    if !pool.contains(&membership) {
        pool.push(membership);
    }
    // Keep the pool bounded.
    if pool.len() > 64 {
        pool.remove(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use netsmith_topo::expert;
    use netsmith_topo::{Layout, LinkClass};

    fn quick_problem(class: LinkClass, objective: Objective) -> GenerationProblem {
        GenerationProblem::new(Layout::noi_4x5(), class, objective)
    }

    #[test]
    fn annealer_returns_valid_connected_topologies() {
        let problem = quick_problem(LinkClass::Medium, Objective::LatOp);
        let result = anneal(&problem, &AnnealConfig::quick(), 0.0, &Obs::noop());
        assert!(
            result.topology.is_valid(),
            "{:?}",
            result.topology.validate()
        );
        assert!(result.objective.connected);
        assert!(result.evaluations > 0);
        assert_eq!(result.topology.name(), "NS-LatOp-medium");
    }

    #[test]
    fn annealer_is_deterministic_per_seed() {
        let problem = quick_problem(LinkClass::Small, Objective::LatOp);
        let cfg = AnnealConfig {
            max_evaluations: 1_500,
            ..AnnealConfig::quick()
        };
        let a = anneal(&problem, &cfg, 0.0, &Obs::noop());
        let b = anneal(&problem, &cfg, 0.0, &Obs::noop());
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.objective.total_hops, b.objective.total_hops);
    }

    #[test]
    fn counter_totals_are_deterministic_per_seed() {
        // The obs counters trace the annealing trajectory exactly (every
        // scored candidate is one evaluation, every applied move one
        // accept), so two runs with the same seed must produce identical
        // totals — and the evaluation counter must match the result's own
        // evaluation count.
        use netsmith_obs::MemoryRecorder;
        let problem = quick_problem(LinkClass::Small, Objective::LatOp);
        let cfg = AnnealConfig {
            max_evaluations: 1_500,
            ..AnnealConfig::quick()
        };
        let run = || {
            let recorder = MemoryRecorder::new();
            let result = anneal(&problem, &cfg, 0.0, &Obs::to(recorder.clone()));
            (result, recorder.snapshot())
        };
        let (result_a, snap_a) = run();
        let (result_b, snap_b) = run();
        assert_eq!(snap_a.counters, snap_b.counters);
        assert_eq!(snap_a.counter("anneal.evaluations"), result_a.evaluations);
        assert_eq!(snap_b.counter("anneal.evaluations"), result_b.evaluations);
        assert!(snap_a.counter("anneal.moves.accepted") > 0);
        assert!(snap_a.counter("anneal.moves.rejected") > 0);
        // Every phase span ran exactly once.
        for phase in ["anneal.calibrate", "anneal.sa", "anneal.polish"] {
            assert_eq!(snap_a.span_count(phase), 1, "{phase}");
        }
    }

    #[test]
    fn latop_annealing_beats_the_mesh_quickly() {
        let problem = quick_problem(LinkClass::Medium, Objective::LatOp);
        let result = anneal(&problem, &AnnealConfig::quick(), 0.0, &Obs::noop());
        let mesh_hops = netsmith_topo::metrics::average_hops(&expert::mesh(&Layout::noi_4x5()));
        assert!(
            result.objective.average_hops < mesh_hops,
            "NS {} vs mesh {mesh_hops}",
            result.objective.average_hops
        );
    }

    #[test]
    fn symmetric_mode_produces_symmetric_topologies() {
        let problem = quick_problem(LinkClass::Small, Objective::LatOp).with_symmetric_links(true);
        let result = anneal(&problem, &AnnealConfig::quick(), 0.0, &Obs::noop());
        assert!(result.topology.is_symmetric());
        assert!(result.topology.is_valid());
    }

    #[test]
    fn progress_trace_is_monotone_and_ends_with_exact_value() {
        let problem = quick_problem(LinkClass::Medium, Objective::LatOp);
        let result = anneal(&problem, &AnnealConfig::quick(), 100.0, &Obs::noop());
        let samples = result.progress.samples();
        assert!(!samples.is_empty());
        for w in samples.windows(2) {
            assert!(w[1].elapsed >= w[0].elapsed);
        }
        // Final recorded incumbent equals the exact objective score.
        assert!((samples.last().unwrap().incumbent - result.objective.score).abs() < 1e-6);
    }

    #[test]
    fn diameter_constraint_is_respected_when_feasible() {
        let problem = quick_problem(LinkClass::Large, Objective::LatOp).with_max_diameter(4);
        let cfg = AnnealConfig {
            max_evaluations: 6_000,
            ..AnnealConfig::quick()
        };
        let result = anneal(&problem, &cfg, 0.0, &Obs::noop());
        let d = netsmith_topo::metrics::diameter(&result.topology).unwrap();
        assert!(d <= 5, "diameter {d} far above the requested bound");
    }

    #[test]
    fn scop_annealing_reaches_reasonable_cut_values() {
        let problem = quick_problem(LinkClass::Large, Objective::SCOp);
        let cfg = AnnealConfig {
            max_evaluations: 2_500,
            ..AnnealConfig::quick()
        };
        let result = anneal(&problem, &cfg, 0.0, &Obs::noop());
        assert!(result.topology.is_valid());
        // The mesh's sparsest cut is a floor any sensible SCOp run beats.
        let mesh_cut = netsmith_topo::cuts::sparsest_cut(&expert::mesh(&Layout::noi_4x5()))
            .normalized_bandwidth;
        assert!(
            result.objective.sparsest_cut >= mesh_cut,
            "NS cut {} below mesh {mesh_cut}",
            result.objective.sparsest_cut
        );
    }
}
