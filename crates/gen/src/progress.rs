//! Solver progress tracking: incumbent, bound and objective-bounds gap over
//! time (the quantity the paper plots in Figure 5).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A single progress sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressSample {
    /// Time since the solve started.
    pub elapsed: Duration,
    /// Objective value of the best feasible topology found so far
    /// (in the engine's minimization direction).
    pub incumbent: f64,
    /// Best proven bound on the optimum.
    pub bound: f64,
    /// Relative objective bounds gap `|incumbent - bound| / |incumbent|`.
    pub gap: f64,
    /// Evaluations (moves / nodes) performed so far.
    pub evaluations: u64,
}

/// The full progress trace of a topology-generation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SolverProgress {
    samples: Vec<ProgressSample>,
}

impl SolverProgress {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sample whenever the incumbent improves (or at checkpoints).
    pub fn record(&mut self, elapsed: Duration, incumbent: f64, bound: f64, evaluations: u64) {
        let gap = if incumbent.abs() < 1e-12 {
            0.0
        } else {
            ((incumbent - bound).abs() / incumbent.abs()).max(0.0)
        };
        self.samples.push(ProgressSample {
            elapsed,
            incumbent,
            bound,
            gap,
            evaluations,
        });
    }

    /// All samples in chronological order.
    pub fn samples(&self) -> &[ProgressSample] {
        &self.samples
    }

    /// Final (smallest) gap reached.
    pub fn final_gap(&self) -> Option<f64> {
        self.samples.last().map(|s| s.gap)
    }

    /// Best incumbent value reached.
    pub fn best_incumbent(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.incumbent)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Merge another trace (e.g. from a parallel worker), keeping samples
    /// sorted by elapsed time and recomputing the running best incumbent.
    pub fn merge(&mut self, other: &SolverProgress) {
        self.samples.extend_from_slice(&other.samples);
        self.samples.sort_by_key(|s| s.elapsed);
        // Re-apply the running minimum so the merged trace is monotone.
        let mut best = f64::INFINITY;
        for s in &mut self.samples {
            best = best.min(s.incumbent);
            s.incumbent = best;
            s.gap = if best.abs() < 1e-12 {
                0.0
            } else {
                ((best - s.bound).abs() / best.abs()).max(0.0)
            };
        }
    }

    /// Render as CSV rows `elapsed_ms,incumbent,bound,gap,evaluations`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("elapsed_ms,incumbent,bound,gap,evaluations\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.1},{:.4},{:.4},{:.6},{}\n",
                s.elapsed.as_secs_f64() * 1e3,
                s.incumbent,
                s.bound,
                s.gap,
                s.evaluations
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_relative_and_non_negative() {
        let mut p = SolverProgress::new();
        p.record(Duration::from_millis(1), 100.0, 90.0, 10);
        p.record(Duration::from_millis(2), 95.0, 90.0, 20);
        assert!((p.samples()[0].gap - 0.1).abs() < 1e-12);
        assert!(p.final_gap().unwrap() < 0.06);
        assert_eq!(p.best_incumbent(), Some(95.0));
    }

    #[test]
    fn merge_keeps_monotone_incumbent() {
        let mut a = SolverProgress::new();
        a.record(Duration::from_millis(1), 100.0, 80.0, 1);
        a.record(Duration::from_millis(5), 90.0, 80.0, 5);
        let mut b = SolverProgress::new();
        b.record(Duration::from_millis(3), 85.0, 80.0, 3);
        a.merge(&b);
        let inc: Vec<f64> = a.samples().iter().map(|s| s.incumbent).collect();
        assert_eq!(inc, vec![100.0, 85.0, 85.0]);
        // Monotone non-increasing.
        for w in a.samples().windows(2) {
            assert!(w[1].incumbent <= w[0].incumbent + 1e-12);
            assert!(w[1].elapsed >= w[0].elapsed);
        }
    }

    #[test]
    fn csv_contains_header_and_rows() {
        let mut p = SolverProgress::new();
        p.record(Duration::from_millis(1), 10.0, 9.0, 2);
        let csv = p.to_csv();
        assert!(csv.starts_with("elapsed_ms"));
        assert_eq!(csv.lines().count(), 2);
    }
}
