//! Property-based tests for the composable objective framework.
//!
//! Three invariants the synthesis path depends on:
//!
//! * a composite objective's score is the weighted sum of its terms'
//!   individual scores (linearity — what makes Pareto weight sweeps
//!   meaningful);
//! * evaluating through a delta-updated [`TopoAnalysis`] is bit-exact with
//!   evaluating from scratch (what makes the annealer's cached move path
//!   safe);
//! * every term's admissible lower bound never exceeds its realized score
//!   on any topology satisfying the problem constraints (what keeps the
//!   reported objective-bounds gap conservative).

use netsmith_gen::terms::{CutEval, Term};
use netsmith_gen::{GenerationProblem, Objective};
use netsmith_topo::analysis::TopoAnalysis;
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::{expert, Layout, LinkClass, Topology};
use proptest::prelude::*;

/// Strategy: a random *valid* topology for the 4x5 layout under a link
/// class — Hamiltonian ring for guaranteed connectivity plus a random
/// subset of the class's valid links under the radix budget, exactly how
/// the annealer seeds its own search.
fn random_valid_topology(class: LinkClass) -> impl Strategy<Value = Topology> {
    let layout = Layout::noi_4x5();
    let problem = GenerationProblem::new(layout.clone(), class, Objective::LatOp);
    let candidates = problem.valid_links();
    let len = candidates.len();
    (proptest::collection::vec(any::<bool>(), len)).prop_map(move |mask| {
        let mut t = Topology::empty("random", layout.clone(), class);
        for (a, b) in expert::hamiltonian_ring(&layout) {
            t.add_bidirectional(a, b);
        }
        for (keep, &(i, j)) in mask.iter().zip(candidates.iter()) {
            if *keep
                && i != j
                && !t.has_link(i, j)
                && t.free_out_ports(i) > 0
                && t.free_in_ports(j) > 0
            {
                t.add_link(i, j);
            }
        }
        t
    })
}

fn class_for(idx: usize) -> LinkClass {
    match idx {
        0 => LinkClass::Small,
        1 => LinkClass::Medium,
        _ => LinkClass::Large,
    }
}

fn all_terms(layout: &Layout) -> Vec<Term> {
    vec![
        Term::Hops,
        Term::PatternHops(TrafficPattern::Shuffle.demand_matrix(layout)),
        Term::SparsestCut,
        Term::EnergyProxy { edp_weight: 5.0 },
        Term::CriticalLinks,
        Term::SpareCapacity,
    ]
}

proptest! {
    // The sparsest-cut term evaluates 2^19 bipartitions per scoring call,
    // so the case count is kept modest to bound suite runtime.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn composite_score_is_the_weighted_sum_of_its_terms(
        topo in random_valid_topology(LinkClass::Medium),
        weights in proptest::collection::vec(0.0f64..10.0, 6),
    ) {
        let layout = Layout::noi_4x5();
        let terms = all_terms(&layout);
        let composite = Objective::composite(
            weights.iter().copied().zip(terms.iter().cloned()),
        );
        let total = composite.evaluate(&topo).score;
        let mut expected = 0.0;
        for (w, term) in weights.iter().zip(terms.iter()) {
            let single = Objective::composite([(1.0, term.clone())]).evaluate(&topo).score;
            expected += w * single;
        }
        // Linearity up to float re-association across the sum.
        let tolerance = 1e-9 * expected.abs().max(1.0);
        prop_assert!(
            (total - expected).abs() <= tolerance,
            "composite {} vs weighted sum {}", total, expected
        );
    }

    #[test]
    fn delta_evaluation_matches_scratch_for_every_objective(
        topo in random_valid_topology(LinkClass::Medium),
        remove_idx in 0usize..4096,
        add_pick in 0usize..4096,
    ) {
        // Apply one rewire-shaped move (remove an existing link, add a
        // valid missing one), evaluate through after_move, and require the
        // exact ObjectiveValue a from-scratch analysis produces.
        let layout = Layout::noi_4x5();
        let problem = GenerationProblem::new(layout.clone(), LinkClass::Medium, Objective::LatOp);
        let links: Vec<(usize, usize)> = topo.links().collect();
        if links.is_empty() {
            continue;
        }
        let (ra, rb) = links[remove_idx % links.len()];
        let candidates = problem.valid_links();
        let mut moved = topo.clone();
        moved.remove_link(ra, rb);
        let addable: Vec<(usize, usize)> = candidates
            .iter()
            .copied()
            .filter(|&(a, b)| {
                (a, b) != (ra, rb)
                    && !moved.has_link(a, b)
                    && moved.free_out_ports(a) > 0
                    && moved.free_in_ports(b) > 0
            })
            .collect();
        let removed = vec![(ra, rb)];
        let mut added = Vec::new();
        // When no legal addition exists the move degenerates to a pure
        // removal, which is still a valid delta to verify.
        if !addable.is_empty() {
            let (aa, ab) = addable[add_pick % addable.len()];
            moved.add_link(aa, ab);
            added.push((aa, ab));
        }
        let base = TopoAnalysis::new(&topo);
        let delta = base.after_move(&moved, &removed, &added);
        let objectives = [
            Objective::LatOp,
            Objective::SCOp,
            Objective::PatternLatOp(TrafficPattern::Shuffle.demand_matrix(&layout)),
            Objective::EnergyOp { edp_weight: 5.0 },
            Objective::fault_op_default(),
        ];
        for o in &objectives {
            let from_delta = o.evaluate_analysis(&moved, &delta, CutEval::Exact);
            let scratch = o.evaluate(&moved);
            prop_assert_eq!(
                from_delta.score.to_bits(),
                scratch.score.to_bits(),
                "{}: delta {} vs scratch {}", o.short_name(), from_delta.score, scratch.score
            );
            prop_assert_eq!(from_delta.total_hops, scratch.total_hops);
            prop_assert_eq!(from_delta.connected, scratch.connected);
        }
    }

    #[test]
    fn per_term_bounds_never_exceed_realized_scores(
        class_idx in 0usize..3,
        topo_mask in proptest::collection::vec(any::<bool>(), 200),
    ) {
        let class = class_for(class_idx);
        let layout = Layout::noi_4x5();
        let problem = GenerationProblem::new(layout.clone(), class, Objective::LatOp);
        // Build the random valid topology inline from the mask so the class
        // can vary with the same strategy.
        let candidates = problem.valid_links();
        let mut topo = Topology::empty("random", layout.clone(), class);
        for (a, b) in expert::hamiltonian_ring(&layout) {
            topo.add_bidirectional(a, b);
        }
        for (keep, &(i, j)) in topo_mask.iter().zip(candidates.iter()) {
            if *keep
                && !topo.has_link(i, j)
                && topo.free_out_ports(i) > 0
                && topo.free_in_ports(j) > 0
            {
                topo.add_link(i, j);
            }
        }
        if !topo.is_valid() {
            continue;
        }
        for term in all_terms(&layout) {
            let single = Objective::composite([(1.0, term.clone())]);
            let bound = single.lower_bound(&problem);
            let realized = single.evaluate(&topo).score;
            prop_assert!(
                bound <= realized + 1e-9,
                "term bound {} exceeds realized score {}", bound, realized
            );
        }
    }
}
