//! Resilience assessment: run a scenario set through a repair policy and
//! measure how gracefully the fabric degrades.
//!
//! [`assess_resilience`] is the subsystem's top-level entry point.  For a
//! prepared healthy network it measures the baseline latency/throughput
//! curve, then for every [`FaultScenario`] it applies the faults, asks the
//! [`RepairPolicy`] for a verified deadlock-free re-route of the surviving
//! sub-topology, and (optionally) re-simulates the workload on the
//! degraded network — failed routers masked out of traffic generation —
//! using the early-exit parallel sweep machinery.  The resulting
//! [`ResilienceReport`] aggregates routability coverage, worst-case and
//! mean degraded saturation throughput, latency inflation, and
//! unreachable-pair counts.

use crate::inject::FaultScenario;
use crate::repair::{RepairConfig, RepairPolicy};
use netsmith_route::{RoutingTable, VcAllocation};
use netsmith_sim::{LatencyCurve, NetworkSim, SimConfig, Sweep, SweepOptions};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::Topology;
use serde::{Deserialize, Serialize};

/// Parameters of a resilience assessment.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Simulator configuration used for the degraded measurements.
    pub sim: SimConfig,
    /// Repair parameters (VC budget, re-route seed).
    pub repair: RepairConfig,
    /// Workload driven over the healthy and degraded fabrics.
    pub pattern: TrafficPattern,
    /// Offered loads swept per configuration (flits/node/cycle).  The
    /// first point doubles as the low-load latency probe; the sweep stops
    /// early once saturation is established.
    pub loads: Vec<f64>,
    /// When false, skip simulation entirely and report structural results
    /// only (coverage and unreachable pairs) — the cheap mode used by
    /// property tests and quick CI runs.
    pub simulate: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            sim: SimConfig::quick(),
            repair: RepairConfig::default(),
            pattern: TrafficPattern::UniformRandom,
            loads: vec![0.05, 0.2, 0.35, 0.5, 0.7, 0.9],
            simulate: true,
        }
    }
}

/// Outcome of one fault scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario label ("l3-7+r12").
    pub scenario: String,
    /// Failed full-duplex links in the scenario.
    pub link_faults: usize,
    /// Failed routers in the scenario.
    pub router_faults: usize,
    /// Whether the repair policy produced a verified deadlock-free
    /// re-route of every surviving pair.
    pub repaired: bool,
    /// Surviving ordered pairs with no path on the degraded topology
    /// (non-zero exactly when the faults partitioned the fabric).
    pub unreachable_pairs: usize,
    /// Saturation throughput of the repaired network in flits/node/cycle
    /// (`None` when unrepaired or simulation was skipped).
    pub saturation_flits_per_node_cycle: Option<f64>,
    /// Low-load average latency of the repaired network in ns (`None`
    /// when unrepaired or simulation was skipped).
    pub low_load_latency_ns: Option<f64>,
}

impl ScenarioOutcome {
    /// CSV header matching [`ScenarioOutcome::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "scenario,link_faults,router_faults,repaired,unreachable_pairs,saturation,latency_ns"
    }

    /// One CSV row (empty fields for unmeasured quantities).
    pub fn to_csv_row(&self) -> String {
        let opt = |v: Option<f64>| v.map(|x| format!("{x:.4}")).unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{}",
            self.scenario,
            self.link_faults,
            self.router_faults,
            self.repaired,
            self.unreachable_pairs,
            opt(self.saturation_flits_per_node_cycle),
            opt(self.low_load_latency_ns)
        )
    }
}

/// Aggregated resilience of one network under one scenario set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Network label ("NS-FaultOp-medium / MCLB").
    pub label: String,
    /// Repair policy name.
    pub policy: String,
    /// Healthy saturation throughput in flits/node/cycle (`None` when
    /// simulation was skipped).
    pub baseline_saturation_flits_per_node_cycle: Option<f64>,
    /// Healthy low-load latency in ns (`None` when simulation was
    /// skipped).
    pub baseline_low_load_latency_ns: Option<f64>,
    /// Per-scenario outcomes, in input order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl ResilienceReport {
    /// Fraction of scenarios the policy repaired (1.0 for an empty set).
    pub fn coverage(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        self.outcomes.iter().filter(|o| o.repaired).count() as f64 / self.outcomes.len() as f64
    }

    /// Total unreachable surviving pairs across scenarios — 0 whenever
    /// every scenario left the fabric connected.
    pub fn total_unreachable_pairs(&self) -> usize {
        self.outcomes.iter().map(|o| o.unreachable_pairs).sum()
    }

    fn measured_saturations(&self) -> impl Iterator<Item = f64> + '_ {
        self.outcomes
            .iter()
            .filter_map(|o| o.saturation_flits_per_node_cycle)
    }

    /// Mean degraded saturation throughput over repaired scenarios.
    pub fn mean_saturation(&self) -> Option<f64> {
        let (mut sum, mut count) = (0.0, 0usize);
        for s in self.measured_saturations() {
            sum += s;
            count += 1;
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Worst (lowest) degraded saturation throughput over repaired
    /// scenarios.
    pub fn worst_saturation(&self) -> Option<f64> {
        self.measured_saturations().reduce(f64::min)
    }

    /// Worst degraded saturation as a fraction of the healthy baseline
    /// (1.0 = no degradation).
    pub fn worst_saturation_retention(&self) -> Option<f64> {
        let base = self.baseline_saturation_flits_per_node_cycle?;
        if base <= 0.0 {
            return None;
        }
        Some(self.worst_saturation()? / base)
    }

    /// Mean low-load latency inflation over repaired scenarios, as a
    /// multiple of the healthy baseline (1.0 = no inflation).
    pub fn mean_latency_inflation(&self) -> Option<f64> {
        let base = self.baseline_low_load_latency_ns?;
        if base <= 0.0 {
            return None;
        }
        let (mut sum, mut count) = (0.0, 0usize);
        for o in &self.outcomes {
            if let Some(l) = o.low_load_latency_ns {
                sum += l / base;
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Worst low-load latency inflation over repaired scenarios.
    pub fn worst_latency_inflation(&self) -> Option<f64> {
        let base = self.baseline_low_load_latency_ns?;
        if base <= 0.0 {
            return None;
        }
        self.outcomes
            .iter()
            .filter_map(|o| o.low_load_latency_ns.map(|l| l / base))
            .reduce(f64::max)
    }
}

/// Saturation + low-load latency from an early-exit sweep curve.
fn curve_summary(curve: &LatencyCurve) -> (Option<f64>, Option<f64>) {
    let saturation = (!curve.points.is_empty()).then(|| curve.saturation_flits_per_node_cycle());
    (saturation, curve.low_load_latency_ns())
}

/// Assess a prepared healthy network against a scenario set.
///
/// The baseline is measured on the *policy's re-route of the healthy
/// topology* (falling back to the supplied `routing`/`vcs` when the policy
/// declines), so degraded-vs-baseline ratios isolate the fault impact from
/// any routing-scheme difference between the original preparation and the
/// repair machinery.  Every degraded measurement uses the repair policy's
/// fresh routing and VC allocation, with failed routers masked out of
/// traffic generation.
pub fn assess_resilience(
    label: impl Into<String>,
    topo: &Topology,
    routing: &RoutingTable,
    vcs: &VcAllocation,
    scenarios: &[FaultScenario],
    policy: &dyn RepairPolicy,
    config: &ResilienceConfig,
) -> ResilienceReport {
    let sweep_options = SweepOptions::early_exit();
    let (baseline_saturation, baseline_latency) = if config.simulate {
        let healthy = policy
            .repair(&FaultScenario::healthy().apply(topo), &config.repair)
            .ok();
        let (table, alloc) = healthy
            .as_ref()
            .map(|h| (&h.routing, &h.vcs))
            .unwrap_or((routing, vcs));
        let sim = NetworkSim::builder(topo, table)
            .vcs(alloc)
            .pattern(config.pattern.clone())
            .config(config.sim.clone())
            .build();
        curve_summary(
            &Sweep::new("baseline")
                .options(sweep_options.clone())
                .run(&sim, &config.loads),
        )
    } else {
        (None, None)
    };

    let mut outcomes = Vec::with_capacity(scenarios.len());
    for scenario in scenarios {
        let degraded = scenario.apply(topo);
        let unreachable = degraded.unreachable_pairs();
        // A policy returning `Ok` guarantees a verified repair (see the
        // RepairPolicy contract; RerouteRepair checks completeness and
        // deadlock freedom before returning), so success is both the
        // repaired flag and the gate for the degraded measurement; the
        // aggregate report only needs the boolean, so the typed reason is
        // dropped here.
        let repaired = policy.repair(&degraded, &config.repair).ok();
        let (saturation, latency) = match (&repaired, config.simulate) {
            (Some(network), true) => {
                let sim = NetworkSim::builder(&network.topology, &network.routing)
                    .vcs(&network.vcs)
                    .pattern(config.pattern.clone())
                    .config(config.sim.clone())
                    .build()
                    .with_failed_routers(&network.failed_routers());
                curve_summary(
                    &Sweep::new(scenario.label())
                        .options(sweep_options.clone())
                        .run(&sim, &config.loads),
                )
            }
            _ => (None, None),
        };
        outcomes.push(ScenarioOutcome {
            scenario: scenario.label(),
            link_faults: scenario.link_faults(),
            router_faults: scenario.router_faults(),
            repaired: repaired.is_some(),
            unreachable_pairs: unreachable,
            saturation_flits_per_node_cycle: saturation,
            low_load_latency_ns: latency,
        });
    }

    ResilienceReport {
        label: label.into(),
        policy: policy.name(),
        baseline_saturation_flits_per_node_cycle: baseline_saturation,
        baseline_low_load_latency_ns: baseline_latency,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{single_link_scenarios, Fault, FaultScenario};
    use crate::repair::RerouteRepair;
    use netsmith_route::paths::all_shortest_paths;
    use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
    use netsmith_topo::{expert, Layout};

    fn prepared(topo: &Topology) -> (RoutingTable, VcAllocation) {
        let paths = all_shortest_paths(topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let vcs = allocate_vcs(&table, 6, 7).expect("fits in 6 VCs");
        (table, vcs)
    }

    #[test]
    fn mesh_covers_every_single_link_failure() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, vcs) = prepared(&mesh);
        let report = assess_resilience(
            "mesh",
            &mesh,
            &table,
            &vcs,
            &single_link_scenarios(&mesh),
            &RerouteRepair,
            &ResilienceConfig {
                simulate: false,
                ..Default::default()
            },
        );
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(report.total_unreachable_pairs(), 0);
        assert_eq!(report.outcomes.len(), mesh.num_links());
        // Structural-only runs carry no measurements.
        assert!(report.baseline_saturation_flits_per_node_cycle.is_none());
        assert!(report.mean_saturation().is_none());
    }

    #[test]
    fn partitioning_scenarios_lower_coverage_and_count_lost_pairs() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let (table, vcs) = prepared(&mesh);
        // One repairable fault plus one corner amputation.
        let scenarios = vec![
            FaultScenario::new(vec![Fault::link(6, 7)]),
            FaultScenario::new(vec![Fault::link(0, 1), Fault::link(0, 5)]),
        ];
        let report = assess_resilience(
            "mesh",
            &mesh,
            &table,
            &vcs,
            &scenarios,
            &RerouteRepair,
            &ResilienceConfig {
                simulate: false,
                ..Default::default()
            },
        );
        assert!((report.coverage() - 0.5).abs() < 1e-12);
        // Router 0 cut off: 19 pairs each way.
        assert_eq!(report.total_unreachable_pairs(), 2 * 19);
        assert!(!report.outcomes[1].repaired);
    }

    #[test]
    fn simulated_assessment_reports_degradation_against_the_baseline() {
        let torus = expert::folded_torus(&Layout::noi_4x5());
        let (table, vcs) = prepared(&torus);
        let scenarios = vec![FaultScenario::new(vec![Fault::link(0, 1)])];
        let mut config = ResilienceConfig::default();
        config.sim.warmup_cycles = 200;
        config.sim.measure_cycles = 1_000;
        config.sim.drain_cycles = 500;
        let report = assess_resilience(
            "torus",
            &torus,
            &table,
            &vcs,
            &scenarios,
            &RerouteRepair,
            &config,
        );
        let base_sat = report.baseline_saturation_flits_per_node_cycle.unwrap();
        assert!(base_sat > 0.0);
        assert!(report.baseline_low_load_latency_ns.unwrap() > 0.0);
        let outcome = &report.outcomes[0];
        assert!(outcome.repaired);
        // A repaired single-link failure still delivers traffic, at or
        // below the healthy ceiling (small simulation noise tolerated).
        let degraded_sat = outcome.saturation_flits_per_node_cycle.unwrap();
        assert!(degraded_sat > 0.0);
        assert!(degraded_sat <= base_sat * 1.1);
        assert!(report.worst_saturation_retention().unwrap() > 0.0);
        assert!(report.mean_latency_inflation().unwrap() > 0.5);
        assert_eq!(
            outcome.to_csv_row().split(',').count(),
            ScenarioOutcome::csv_header().split(',').count()
        );
    }

    #[test]
    fn unrepaired_scenarios_leave_gaps_in_csv_rows() {
        let outcome = ScenarioOutcome {
            scenario: "l0-1+l0-5".into(),
            link_faults: 2,
            router_faults: 0,
            repaired: false,
            unreachable_pairs: 38,
            saturation_flits_per_node_cycle: None,
            low_load_latency_ns: None,
        };
        assert_eq!(outcome.to_csv_row(), "l0-1+l0-5,2,0,false,38,,");
    }

    #[test]
    fn empty_scenario_set_has_full_coverage() {
        let report = ResilienceReport {
            label: "x".into(),
            policy: "reroute".into(),
            baseline_saturation_flits_per_node_cycle: None,
            baseline_low_load_latency_ns: None,
            outcomes: Vec::new(),
        };
        assert_eq!(report.coverage(), 1.0);
        assert!(report.worst_saturation().is_none());
        assert!(report.worst_latency_inflation().is_none());
    }
}
