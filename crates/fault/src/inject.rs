//! Fault models and scenario generation.
//!
//! A [`Fault`] is a permanent component failure: a full-duplex link (both
//! directions share the physical wire run, so a wire fault takes out both)
//! or a whole router (taking its attached cores and every incident link
//! with it).  A [`FaultScenario`] is a set of simultaneous faults;
//! applying one to a healthy [`Topology`] yields a [`DegradedTopology`] —
//! the surviving sub-topology plus the alive mask the simulator and the
//! repair policies reason about.
//!
//! Scenario supply comes in two forms: exhaustive single-fault enumeration
//! ([`single_link_scenarios`], [`single_router_scenarios`]) for coverage
//! claims ("every single link failure re-routes"), and seeded random
//! sampling of multi-fault combinations ([`FaultModel::sample_scenarios`])
//! for the combinatorially large higher-order spaces.

use netsmith_topo::resilience::{is_strongly_connected_among, unreachable_pairs_among};
use netsmith_topo::{duplex_pairs, RouterId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A permanent component failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Fault {
    /// Failure of the physical wire between two routers: both directions
    /// of the duplex pair go down.  Stored in canonical `(lo, hi)` order.
    Link(RouterId, RouterId),
    /// Failure of a router: every incident link goes down and the node
    /// stops injecting or sinking traffic.
    Router(RouterId),
}

impl Fault {
    /// Canonicalize a link fault's endpoint order.
    pub fn link(a: RouterId, b: RouterId) -> Fault {
        Fault::Link(a.min(b), a.max(b))
    }

    /// Short label used in scenario names ("l3-7", "r12").
    fn label(&self) -> String {
        match self {
            Fault::Link(a, b) => format!("l{a}-{b}"),
            Fault::Router(r) => format!("r{r}"),
        }
    }
}

/// A set of simultaneous permanent faults.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultScenario {
    /// The faults, kept sorted so equal scenarios compare equal.
    pub faults: Vec<Fault>,
}

impl FaultScenario {
    /// The no-fault scenario (the healthy baseline).
    pub fn healthy() -> Self {
        FaultScenario::default()
    }

    /// Build a scenario from faults (link endpoints canonicalized, then
    /// sorted and deduplicated, so equivalent scenarios compare equal).
    pub fn new(faults: Vec<Fault>) -> Self {
        let mut faults: Vec<Fault> = faults
            .into_iter()
            .map(|f| match f {
                Fault::Link(a, b) => Fault::link(a, b),
                router => router,
            })
            .collect();
        faults.sort_unstable();
        faults.dedup();
        FaultScenario { faults }
    }

    /// Number of failed links.
    pub fn link_faults(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f, Fault::Link(..)))
            .count()
    }

    /// Number of failed routers.
    pub fn router_faults(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f, Fault::Router(..)))
            .count()
    }

    /// Human-readable scenario label ("healthy", "l3-7+r12").
    pub fn label(&self) -> String {
        if self.faults.is_empty() {
            "healthy".into()
        } else {
            self.faults
                .iter()
                .map(Fault::label)
                .collect::<Vec<_>>()
                .join("+")
        }
    }

    /// Apply the scenario to a healthy topology: remove every failed link
    /// and every link incident to a failed router, and clear the failed
    /// routers' alive bits.
    pub fn apply(&self, topo: &Topology) -> DegradedTopology {
        let n = topo.num_routers();
        let mut degraded = topo
            .clone()
            .with_name(format!("{}!{}", topo.name(), self.label()));
        let mut alive = vec![true; n];
        for fault in &self.faults {
            match *fault {
                Fault::Link(a, b) => {
                    degraded.remove_link(a, b);
                    degraded.remove_link(b, a);
                }
                Fault::Router(r) => {
                    alive[r] = false;
                    for other in 0..n {
                        if other != r {
                            degraded.remove_link(r, other);
                            degraded.remove_link(other, r);
                        }
                    }
                }
            }
        }
        DegradedTopology {
            topology: degraded,
            alive,
            scenario: self.clone(),
        }
    }
}

/// The surviving sub-topology after a fault scenario hit.
#[derive(Debug, Clone)]
pub struct DegradedTopology {
    /// The topology with every failed link removed (including the links of
    /// failed routers).
    pub topology: Topology,
    /// `alive[r]` is false for failed routers; they no longer inject or
    /// sink traffic.
    pub alive: Vec<bool>,
    /// The scenario that produced this state.
    pub scenario: FaultScenario,
}

impl DegradedTopology {
    /// The failed routers, ascending.
    pub fn failed_routers(&self) -> Vec<RouterId> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| !a)
            .map(|(r, _)| r)
            .collect()
    }

    /// Number of surviving routers.
    pub fn num_alive(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Ordered surviving `(s, d)` pairs a complete repair must route.
    pub fn num_surviving_pairs(&self) -> usize {
        let k = self.num_alive();
        k * k.saturating_sub(1)
    }

    /// Surviving pairs with no directed path through surviving routers —
    /// traffic that no repair policy can restore.
    pub fn unreachable_pairs(&self) -> usize {
        unreachable_pairs_among(&self.topology, &self.alive)
    }

    /// True when every surviving router can still reach every other.
    pub fn is_connected(&self) -> bool {
        is_strongly_connected_among(&self.topology, &self.alive)
    }
}

/// Exhaustive single-link-failure scenarios: one per full-duplex pair.
pub fn single_link_scenarios(topo: &Topology) -> Vec<FaultScenario> {
    duplex_pairs(topo)
        .into_iter()
        .map(|(a, b)| FaultScenario::new(vec![Fault::link(a, b)]))
        .collect()
}

/// Exhaustive single-router-failure scenarios: one per router.
pub fn single_router_scenarios(topo: &Topology) -> Vec<FaultScenario> {
    (0..topo.num_routers())
        .map(|r| FaultScenario::new(vec![Fault::Router(r)]))
        .collect()
}

/// A seeded sampler of multi-fault scenarios with a fixed fault mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Simultaneous full-duplex link failures per scenario.
    pub link_faults: usize,
    /// Simultaneous router failures per scenario.
    pub router_faults: usize,
    /// RNG seed; the sampled scenario set is a pure function of the seed,
    /// the topology and the requested count.
    pub seed: u64,
}

impl FaultModel {
    /// A model injecting `link_faults` link failures per scenario.
    pub fn links(link_faults: usize, seed: u64) -> Self {
        FaultModel {
            link_faults,
            router_faults: 0,
            seed,
        }
    }

    /// Sample up to `count` *distinct* scenarios with this model's fault
    /// mix.  Fewer are returned when the topology does not have enough
    /// distinct combinations (the sampler gives up after a bounded number
    /// of redraws).
    pub fn sample_scenarios(&self, topo: &Topology, count: usize) -> Vec<FaultScenario> {
        let pairs = duplex_pairs(topo);
        let n = topo.num_routers();
        if self.link_faults > pairs.len() || self.router_faults > n {
            return Vec::new();
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut seen: BTreeSet<Vec<Fault>> = BTreeSet::new();
        let mut scenarios = Vec::with_capacity(count);
        let mut attempts = 0usize;
        let max_attempts = count.saturating_mul(50).max(200);
        while scenarios.len() < count && attempts < max_attempts {
            attempts += 1;
            let mut faults: BTreeSet<Fault> = BTreeSet::new();
            while faults
                .iter()
                .filter(|f| matches!(f, Fault::Link(..)))
                .count()
                < self.link_faults
            {
                let (a, b) = pairs[rng.gen_range(0..pairs.len())];
                faults.insert(Fault::link(a, b));
            }
            while faults
                .iter()
                .filter(|f| matches!(f, Fault::Router(..)))
                .count()
                < self.router_faults
            {
                faults.insert(Fault::Router(rng.gen_range(0..n)));
            }
            let faults: Vec<Fault> = faults.into_iter().collect();
            if seen.insert(faults.clone()) {
                scenarios.push(FaultScenario { faults });
            }
        }
        scenarios
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_topo::{expert, Layout};

    #[test]
    fn link_fault_removes_both_directions() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let scenario = FaultScenario::new(vec![Fault::link(1, 0)]);
        let degraded = scenario.apply(&mesh);
        assert!(!degraded.topology.has_link(0, 1));
        assert!(!degraded.topology.has_link(1, 0));
        assert_eq!(degraded.num_alive(), 20);
        assert!(degraded.is_connected());
        assert_eq!(degraded.unreachable_pairs(), 0);
        assert_eq!(scenario.label(), "l0-1");
    }

    #[test]
    fn router_fault_isolates_the_router() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let scenario = FaultScenario::new(vec![Fault::Router(7)]);
        let degraded = scenario.apply(&mesh);
        assert_eq!(degraded.failed_routers(), vec![7]);
        assert_eq!(degraded.num_alive(), 19);
        assert_eq!(degraded.num_surviving_pairs(), 19 * 18);
        for other in 0..20 {
            if other != 7 {
                assert!(!degraded.topology.has_link(7, other));
                assert!(!degraded.topology.has_link(other, 7));
            }
        }
        // A mesh survives any single router loss.
        assert!(degraded.is_connected());
    }

    #[test]
    fn single_fault_enumerations_cover_every_component() {
        let torus = expert::folded_torus(&Layout::noi_4x5());
        assert_eq!(single_link_scenarios(&torus).len(), torus.num_links());
        assert_eq!(single_router_scenarios(&torus).len(), 20);
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let model = FaultModel {
            link_faults: 2,
            router_faults: 1,
            seed: 99,
        };
        let a = model.sample_scenarios(&mesh, 12);
        let b = model.sample_scenarios(&mesh, 12);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        let distinct: BTreeSet<Vec<Fault>> = a.iter().map(|s| s.faults.clone()).collect();
        assert_eq!(distinct.len(), a.len());
        for s in &a {
            assert_eq!(s.link_faults(), 2);
            assert_eq!(s.router_faults(), 1);
        }
    }

    #[test]
    fn sampling_exhausts_small_spaces_gracefully() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        // Only 31 duplex pairs exist, so asking for far more single-link
        // scenarios than that returns each at most once.
        let model = FaultModel::links(1, 7);
        let scenarios = model.sample_scenarios(&mesh, 500);
        assert_eq!(scenarios.len(), duplex_pairs(&mesh).len());
    }

    #[test]
    fn scenario_construction_canonicalizes_link_endpoints() {
        let reversed = FaultScenario::new(vec![Fault::Link(6, 5), Fault::Link(5, 6)]);
        let canonical = FaultScenario::new(vec![Fault::link(5, 6)]);
        assert_eq!(reversed, canonical);
        assert_eq!(reversed.link_faults(), 1);
        assert_eq!(reversed.label(), "l5-6");
    }

    #[test]
    fn healthy_scenario_is_a_no_op() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let degraded = FaultScenario::healthy().apply(&mesh);
        assert_eq!(
            degraded.topology.num_directed_links(),
            mesh.num_directed_links()
        );
        assert_eq!(degraded.num_alive(), 20);
        assert_eq!(FaultScenario::healthy().label(), "healthy");
    }
}
