//! # netsmith-fault
//!
//! The resilience subsystem: permanent-fault injection, deadlock-free
//! repair, and robustness reporting for machine-discovered NoI topologies.
//!
//! The paper's deployment target — interposer fabrics under heavy
//! sustained traffic — makes component failure the common case over a
//! part's lifetime, and keeping a degraded fabric serving (rather than
//! over-provisioning a spare one) is exactly the kind of efficiency the
//! green-datacenter literature asks of the interconnect.  This crate
//! closes that loop in three layers, mirroring the energy subsystem's
//! structure:
//!
//! 1. **Injection** — a [`FaultModel`] produces [`FaultScenario`]s
//!    (permanent link failures, permanent router failures, and seeded
//!    multi-fault combinations); applying one yields a
//!    [`DegradedTopology`], and `netsmith-sim` runs workloads on it with
//!    the failed routers masked out of traffic generation
//!    (`NetworkSim::with_failed_routers`).
//! 2. **Repair** — the [`RepairPolicy`] trait restores service;
//!    [`RerouteRepair`] recomputes shortest paths, MCLB routing and
//!    escape virtual channels on the surviving sub-topology and verifies
//!    deadlock freedom, the same machinery that validates power-gated
//!    sub-topologies in `netsmith-energy`.  [`assess_resilience`] sweeps
//!    a scenario set into a [`ResilienceReport`]: routability coverage,
//!    worst-case/mean degraded saturation throughput, latency inflation,
//!    and unreachable-pair counts.
//! 3. **Synthesis** — `netsmith-gen`'s `Objective::FaultOp` penalizes
//!    articulation links and rewards spare min-cut capacity so the
//!    annealer discovers fabrics (`NS-FaultOp-*`) that keep 100%
//!    single-link routability by construction; the `fig13_resilience`
//!    harness compares them against the expert and latency-only line-ups
//!    across fault counts and traffic patterns.

pub mod inject;
pub mod repair;
pub mod report;

pub use inject::{
    single_link_scenarios, single_router_scenarios, DegradedTopology, Fault, FaultModel,
    FaultScenario,
};
pub use repair::{RepairConfig, RepairPolicy, RepairedNetwork, RerouteRepair};
pub use report::{assess_resilience, ResilienceConfig, ResilienceReport, ScenarioOutcome};
