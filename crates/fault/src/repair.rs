//! Deadlock-free repair of degraded topologies.
//!
//! After a fault hits, the surviving fabric must keep serving: every
//! surviving router pair needs a route and the new routing function must
//! stay deadlock-free within the virtual-channel budget.  A
//! [`RepairPolicy`] encapsulates how that recovery is computed;
//! [`RerouteRepair`] — the default and the policy the paper's machinery
//! makes natural — recomputes shortest paths on the surviving
//! sub-topology, re-runs MCLB path selection, and re-partitions the chosen
//! paths onto escape virtual channels, mirroring exactly the
//! strong-connectivity check and deadlock-freedom verification the energy
//! subsystem's `LinkSleep` uses for power-gated links.

use crate::inject::DegradedTopology;
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::vc::verify_deadlock_free;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig, RoutingTable, VcAllocation};
use netsmith_topo::{PipelineError, RouterId, Topology};
use serde::{Deserialize, Serialize};

/// Parameters shared by repair policies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairConfig {
    /// Virtual channels available for the repaired routing function (6 in
    /// the paper's evaluation).
    pub vc_budget: usize,
    /// Seed for the deterministic re-route of the surviving sub-topology.
    pub seed: u64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            vc_budget: 6,
            seed: 0xFA17,
        }
    }
}

/// A repaired network: the surviving sub-topology together with the fresh
/// routing and VC allocation that prove it still serves every surviving
/// pair deadlock-free.
#[derive(Debug, Clone)]
pub struct RepairedNetwork {
    /// The degraded topology the repair routed.
    pub topology: Topology,
    /// Routing of every surviving pair on the surviving links.
    pub routing: RoutingTable,
    /// Deadlock-free VC allocation of that routing.
    pub vcs: VcAllocation,
    /// Alive mask inherited from the fault scenario.
    pub alive: Vec<bool>,
}

impl RepairedNetwork {
    /// The failed routers, ascending.
    pub fn failed_routers(&self) -> Vec<RouterId> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| !a)
            .map(|(r, _)| r)
            .collect()
    }

    /// True when the routing covers every ordered pair of surviving
    /// routers (the degraded analogue of `RoutingTable::is_complete`).
    pub fn routes_all_surviving_pairs(&self) -> bool {
        let k = self.alive.iter().filter(|&&a| a).count();
        self.routing.num_routed_flows() == k * k.saturating_sub(1)
    }

    /// Re-check the invariant the repair established: full surviving-pair
    /// coverage with an acyclic channel dependency graph on every VC.
    pub fn verify(&self) -> bool {
        self.routes_all_surviving_pairs() && verify_deadlock_free(&self.routing, &self.vcs)
    }
}

/// A strategy for restoring service on a degraded topology.
pub trait RepairPolicy {
    /// Label used in reports and CSV output.
    fn name(&self) -> String;

    /// Attempt to repair; the error names why the surviving fabric cannot
    /// serve every surviving pair deadlock-free within the budget
    /// ([`PipelineError::Disconnected`] for a partitioned network,
    /// [`PipelineError::VcBudgetExceeded`] when the escape layering no
    /// longer fits the VCs, …).
    ///
    /// Contract: a returned network must satisfy
    /// [`RepairedNetwork::verify`] — `assess_resilience` counts every `Ok`
    /// as a successful repair and measures traffic on it without
    /// re-checking.
    fn repair(
        &self,
        degraded: &DegradedTopology,
        config: &RepairConfig,
    ) -> Result<RepairedNetwork, PipelineError>;
}

/// The default repair policy: full recomputation of paths, MCLB routing
/// and escape VCs on the surviving sub-topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RerouteRepair;

impl RepairPolicy for RerouteRepair {
    fn name(&self) -> String {
        "reroute".into()
    }

    fn repair(
        &self,
        degraded: &DegradedTopology,
        config: &RepairConfig,
    ) -> Result<RepairedNetwork, PipelineError> {
        // Cheap strong-connectivity gate before the expensive path work.
        if !degraded.is_connected() {
            return Err(PipelineError::Disconnected {
                pairs: degraded.unreachable_pairs(),
            });
        }
        let paths = all_shortest_paths(&degraded.topology);
        let routing = mclb_route(
            &paths,
            &MclbConfig {
                seed: config.seed,
                ..Default::default()
            },
        );
        routing.require_complete_among(degraded.num_alive())?;
        let vcs = allocate_vcs(&routing, config.vc_budget, config.seed)?;
        if !verify_deadlock_free(&routing, &vcs) {
            // The balancing pass never violates per-VC acyclicity, so this
            // is a defensive re-check; surface it as a budget failure.
            return Err(PipelineError::VcBudgetExceeded {
                needed: vcs.escape_layers,
                budget: config.vc_budget,
            });
        }
        Ok(RepairedNetwork {
            topology: degraded.topology.clone(),
            routing,
            vcs,
            alive: degraded.alive.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{single_link_scenarios, Fault, FaultScenario};
    use netsmith_topo::{expert, Layout};

    #[test]
    fn every_single_link_failure_on_the_mesh_repairs() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let config = RepairConfig::default();
        for scenario in single_link_scenarios(&mesh) {
            let repaired = RerouteRepair
                .repair(&scenario.apply(&mesh), &config)
                .unwrap_or_else(|e| panic!("scenario {} must repair: {e}", scenario.label()));
            assert!(repaired.verify(), "scenario {}", scenario.label());
        }
    }

    #[test]
    fn partitioning_faults_are_rejected() {
        // Killing both links of corner router 0 partitions it off.
        let mesh = expert::mesh(&Layout::noi_4x5());
        let scenario = FaultScenario::new(vec![Fault::link(0, 1), Fault::link(0, 5)]);
        match RerouteRepair.repair(&scenario.apply(&mesh), &RepairConfig::default()) {
            Err(PipelineError::Disconnected { pairs }) => {
                // Router 0 can neither reach nor be reached by the other 19.
                assert_eq!(pairs, 38);
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn router_failure_repairs_around_the_dead_node() {
        let torus = expert::folded_torus(&Layout::noi_4x5());
        let scenario = FaultScenario::new(vec![Fault::Router(9)]);
        let repaired = RerouteRepair
            .repair(&scenario.apply(&torus), &RepairConfig::default())
            .expect("torus survives one router loss");
        assert_eq!(repaired.failed_routers(), vec![9]);
        assert!(repaired.verify());
        // No route starts, ends, or passes through the dead router.
        for (flow, path) in repaired.routing.flows() {
            assert_ne!(flow.src, 9);
            assert_ne!(flow.dst, 9);
            assert!(!path.contains(&9));
        }
    }

    #[test]
    fn repair_is_deterministic_for_a_seed() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let scenario = FaultScenario::new(vec![Fault::link(5, 6)]);
        let config = RepairConfig::default();
        let a = RerouteRepair
            .repair(&scenario.apply(&mesh), &config)
            .unwrap();
        let b = RerouteRepair
            .repair(&scenario.apply(&mesh), &config)
            .unwrap();
        assert_eq!(a.vcs, b.vcs);
        assert_eq!(
            a.routing.flows().collect::<Vec<_>>(),
            b.routing.flows().collect::<Vec<_>>()
        );
    }
}
