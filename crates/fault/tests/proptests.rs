//! Property tests for the resilience subsystem: repair always yields a
//! deadlock-free routing of exactly the surviving pairs, and routability
//! coverage can only drop as more faults are injected.

use netsmith_fault::{
    assess_resilience, FaultModel, RepairConfig, RepairPolicy, RerouteRepair, ResilienceConfig,
};
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::vc::verify_deadlock_free;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig, RoutingTable, VcAllocation};
use netsmith_topo::{expert, Layout, Topology};
use proptest::prelude::*;

fn prepared(topo: &Topology) -> (RoutingTable, VcAllocation) {
    let paths = all_shortest_paths(topo);
    let table = mclb_route(&paths, &MclbConfig::default());
    let vcs = allocate_vcs(&table, 6, 7).expect("fits in 6 VCs");
    (table, vcs)
}

fn baselines() -> Vec<Topology> {
    let layout = Layout::noi_4x5();
    vec![
        expert::mesh(&layout),
        expert::folded_torus(&layout),
        expert::kite_medium(&layout),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whenever a repair succeeds, it is a *verified* repair: the new
    /// routing covers every surviving ordered pair and its escape-VC
    /// partition keeps every virtual channel's dependency graph acyclic —
    /// faults never smuggle a deadlock into the fabric.
    #[test]
    fn repair_preserves_deadlock_freedom(
        seed in 0u64..10_000,
        topo_idx in 0usize..3,
        link_faults in 1usize..3,
        router_faults in 0usize..2,
    ) {
        let topo = &baselines()[topo_idx];
        let model = FaultModel { link_faults, router_faults, seed };
        let config = RepairConfig::default();
        for scenario in model.sample_scenarios(topo, 4) {
            let degraded = scenario.apply(topo);
            if let Ok(repaired) = RerouteRepair.repair(&degraded, &config) {
                prop_assert!(
                    repaired.routes_all_surviving_pairs(),
                    "{}: incomplete repair", scenario.label()
                );
                prop_assert!(
                    verify_deadlock_free(&repaired.routing, &repaired.vcs),
                    "{}: repair broke deadlock freedom", scenario.label()
                );
                prop_assert!(repaired.vcs.num_vcs <= config.vc_budget);
                // Routes never touch a failed router.
                for dead in repaired.failed_routers() {
                    for (flow, path) in repaired.routing.flows() {
                        prop_assert!(flow.src != dead && flow.dst != dead);
                        prop_assert!(!path.contains(&dead));
                    }
                }
            } else {
                // Refusal must be justified: the surviving fabric really
                // is partitioned (RerouteRepair only gives up on
                // disconnection for these small instances, where the
                // escape layering always fits 6 VCs).
                prop_assert!(!degraded.is_connected(), "{}: spurious refusal", scenario.label());
            }
        }
    }

    /// Adding faults can only hurt: with a nested fault model (the k-fault
    /// scenarios extend the (k-1)-fault ones), routability coverage over
    /// the scenario set is monotone non-increasing in the fault count.
    #[test]
    fn coverage_is_monotone_non_increasing_in_fault_count(
        seed in 0u64..10_000,
        topo_idx in 0usize..3,
    ) {
        let topo = &baselines()[topo_idx];
        let (table, vcs) = prepared(topo);
        let config = ResilienceConfig { simulate: false, ..Default::default() };
        let mut scenarios = FaultModel { link_faults: 1, router_faults: 0, seed }
            .sample_scenarios(topo, 6);
        let mut previous = f64::INFINITY;
        for extra in 0..3 {
            let report = assess_resilience(
                topo.name(),
                topo,
                &table,
                &vcs,
                &scenarios,
                &RerouteRepair,
                &config,
            );
            let coverage = report.coverage();
            prop_assert!(
                coverage <= previous + 1e-12,
                "coverage rose from {previous} to {coverage} at {extra} extra faults"
            );
            previous = coverage;
            // Extend every scenario by one more sampled link fault: the
            // (k+1)-fault set dominates the k-fault set, so a scenario
            // that was unrepairable stays unrepairable.
            let extensions = FaultModel { link_faults: 1, router_faults: 0, seed: seed ^ (extra + 1) }
                .sample_scenarios(topo, scenarios.len());
            scenarios = scenarios
                .into_iter()
                .zip(extensions.into_iter().cycle())
                .map(|(s, e)| {
                    let mut faults = s.faults;
                    faults.extend(e.faults);
                    netsmith_fault::FaultScenario::new(faults)
                })
                .collect();
        }
    }
}
