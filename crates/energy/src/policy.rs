//! Energy-management policies over measured link activity.
//!
//! Every policy consumes an [`EnergyContext`] — the routed, VC-allocated
//! network plus the simulator's measured
//! [`ActivityProfile`](netsmith_sim::ActivityProfile) — and produces an
//! [`EnergyReport`].  Three policies are provided:
//!
//! * [`AlwaysOn`] — the baseline: every link powered, power taken straight
//!   from the measured per-link accounting.
//! * [`LinkSleep`] — power-gate full-duplex links whose measured
//!   utilization falls below a threshold.  Residual traffic on a gated
//!   link wakes it, paying a configurable latency penalty and wake energy;
//!   the gated sub-topology is re-routed and re-allocated through the
//!   standard MCLB + escape-VC machinery and any link whose removal would
//!   break strong connectivity or deadlock freedom is kept awake.
//! * [`Dvfs`] — scale the NoI clock and voltage down to the slowest level
//!   that still leaves headroom over the measured utilization (dynamic
//!   power scales with `f·V²`, leakage with `V`).

use crate::report::{EnergyConfig, EnergyReport};
use netsmith_power::{power_report_from_activity, PowerReport};
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::vc::verify_deadlock_free;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig, RoutingTable, VcAllocation};
use netsmith_sim::{SimConfig, SimReport};
use netsmith_topo::metrics::unreachable_pairs;
use netsmith_topo::{PipelineError, RouterId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Everything a policy may inspect: the prepared network, the simulator
/// configuration it was measured under, the measured report (latency +
/// activity) and the technology constants.
pub struct EnergyContext<'a> {
    /// The evaluated topology.
    pub topology: &'a Topology,
    /// Its routing table (used for re-verification baselines).
    pub routing: &'a RoutingTable,
    /// Its deadlock-free VC allocation.
    pub vcs: &'a VcAllocation,
    /// Simulator configuration the measurement ran under (supplies the
    /// nominal clock).
    pub sim: &'a SimConfig,
    /// Measured simulation report, including the per-link activity.
    pub report: &'a SimReport,
    /// Energy model parameters.
    pub config: &'a EnergyConfig,
}

impl EnergyContext<'_> {
    /// Measured always-on power at this operating point.
    pub fn baseline_power(&self) -> PowerReport {
        power_report_from_activity(
            self.topology,
            &self.config.power,
            self.sim,
            &self.report.activity,
        )
    }

    /// Delivered flits per nanosecond at the nominal clock.
    pub fn delivered_flits_per_ns(&self) -> f64 {
        self.report.accepted_flits_per_node_cycle
            * self.topology.num_routers() as f64
            * self.sim.clock_ghz
    }
}

/// An energy-management policy: maps measured activity to a power/energy
/// outcome.
pub trait EnergyPolicy {
    /// Label used in reports and CSV output.
    fn name(&self) -> String;

    /// Evaluate the policy at the context's measured operating point.
    fn evaluate(&self, ctx: &EnergyContext<'_>) -> EnergyReport;
}

/// Baseline policy: every link stays powered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlwaysOn;

impl EnergyPolicy for AlwaysOn {
    fn name(&self) -> String {
        "always_on".into()
    }

    fn evaluate(&self, ctx: &EnergyContext<'_>) -> EnergyReport {
        let power = ctx.baseline_power();
        EnergyReport {
            policy: self.name(),
            static_mw: power.static_mw,
            dynamic_mw: power.dynamic_mw,
            gated_savings_mw: 0.0,
            gated_links: 0,
            energy_per_flit_pj: 0.0,
            edp_pj_ns: 0.0,
            avg_latency_cycles: ctx.report.avg_latency_cycles,
            avg_latency_ns: ctx.report.avg_latency_ns,
            routable: true,
        }
        .finalize(ctx.delivered_flits_per_ns())
    }
}

/// A gated sub-topology together with the fresh routing and VC allocation
/// that prove it remains usable.
#[derive(Debug, Clone)]
pub struct GatedNetwork {
    /// The topology with every gated link removed.
    pub topology: Topology,
    /// MCLB routing of the gated topology.
    pub routing: RoutingTable,
    /// Deadlock-free VC allocation of that routing.
    pub vcs: VcAllocation,
    /// Gated full-duplex pairs, canonical `(lo, hi)` order.
    pub gated_pairs: Vec<(RouterId, RouterId)>,
}

impl GatedNetwork {
    /// Re-check the invariant the gating search established: complete
    /// routing with an acyclic CDG on every VC.
    pub fn verify(&self) -> bool {
        self.routing.is_complete() && verify_deadlock_free(&self.routing, &self.vcs)
    }
}

/// Power-gate links whose measured utilization is below `idle_threshold`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSleep {
    /// A full-duplex link is a gating candidate when the busier of its two
    /// directions was busy less than this fraction of the window.
    pub idle_threshold: f64,
    /// Latency charged to every packet that traverses a gated (sleeping)
    /// link, in cycles.
    pub wake_penalty_cycles: u64,
    /// At most this fraction of the physical links may sleep at once.
    /// Gating is worth wire + port leakage per pair, but every gated pair
    /// lengthens the reroutes of the traffic it used to carry — a dynamic
    /// cost the per-pair model cannot see.  Capping the gated fraction
    /// keeps the consolidation shallow enough that the leakage saved is
    /// not handed straight back as extra router/wire traversals.
    pub max_gated_fraction: f64,
}

impl Default for LinkSleep {
    fn default() -> Self {
        LinkSleep {
            idle_threshold: 0.05,
            wake_penalty_cycles: 8,
            max_gated_fraction: 0.25,
        }
    }
}

impl LinkSleep {
    /// Route and VC-allocate a topology; the error names why it cannot be
    /// routed deadlock-free within the budget.
    fn route(
        topo: &Topology,
        vc_budget: usize,
        seed: u64,
    ) -> Result<(RoutingTable, VcAllocation), PipelineError> {
        let paths = all_shortest_paths(topo);
        let table = mclb_route(
            &paths,
            &MclbConfig {
                seed,
                ..Default::default()
            },
        );
        table.require_complete()?;
        let vcs = allocate_vcs(&table, vc_budget, seed)?;
        if !verify_deadlock_free(&table, &vcs) {
            // Defensive re-check; the balancer keeps every VC acyclic.
            return Err(PipelineError::VcBudgetExceeded {
                needed: vcs.escape_layers,
                budget: vc_budget,
            });
        }
        Ok((table, vcs))
    }

    /// Leakage saved per gated pair, in mW: the wire's repeaters plus the
    /// two endpoint port macros, minus the residual the gate still leaks.
    fn pair_savings_mw(ctx: &EnergyContext<'_>, i: RouterId, j: RouterId) -> f64 {
        (ctx.topology.layout().distance_mm(i, j) * ctx.config.power.wire_leakage_mw_per_mm
            + ctx.config.power.link_port_leakage_mw)
            * (1.0 - ctx.config.gated_leakage_fraction)
    }

    /// Wake events caused by `pair_flits` flits crossing sleeping links:
    /// every packet traversal is one wake.
    fn wake_events(ctx: &EnergyContext<'_>, pair_flits: u64) -> f64 {
        pair_flits as f64 / ctx.sim.average_flits().max(1.0)
    }

    /// Wake power charged per gated pair at its measured traffic, in mW.
    fn pair_wake_mw(ctx: &EnergyContext<'_>, pair_flits: u64) -> f64 {
        let activity = &ctx.report.activity;
        if activity.measured_cycles == 0 {
            return 0.0;
        }
        Self::wake_events(ctx, pair_flits) / activity.measured_cycles as f64
            * ctx.sim.clock_ghz
            * ctx.config.wake_energy_pj
    }

    /// Select the gated sub-topology for a measured activity profile.
    ///
    /// A full-duplex pair is a candidate when its busier direction was busy
    /// less than the idle threshold *and* gating it is net-beneficial: the
    /// leakage it stops burning exceeds the wake energy its residual
    /// traffic would cost.  Candidates are gated greedily from the largest
    /// net benefit down; a pair is kept awake when removing it would
    /// disconnect the network, and the final selection is walked back
    /// (smallest net benefit first) until the sub-topology routes
    /// deadlock-free within the VC budget.  Fails only when even the
    /// ungated topology cannot be routed — which the pipeline rules out
    /// before a policy ever runs — and then surfaces the typed reason.
    pub fn gate(&self, ctx: &EnergyContext<'_>) -> Result<GatedNetwork, PipelineError> {
        let topo = ctx.topology;
        let activity = &ctx.report.activity;
        let util: HashMap<(RouterId, RouterId), f64> = activity
            .links
            .iter()
            .map(|l| ((l.from, l.to), l.utilization(activity.measured_cycles)))
            .collect();
        let flits: HashMap<(RouterId, RouterId), u64> = activity
            .links
            .iter()
            .map(|l| ((l.from, l.to), l.flits))
            .collect();

        // Candidate full-duplex pairs, largest net benefit first
        // (deterministic tie-break on the pair itself).
        let n = topo.num_routers();
        let mut candidates: Vec<((RouterId, RouterId), f64)> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if !topo.has_link(i, j) && !topo.has_link(j, i) {
                    continue;
                }
                let fwd = util.get(&(i, j)).copied().unwrap_or(0.0);
                let rev = util.get(&(j, i)).copied().unwrap_or(0.0);
                if fwd.max(rev) >= self.idle_threshold {
                    continue;
                }
                let pair_flits = flits.get(&(i, j)).copied().unwrap_or(0)
                    + flits.get(&(j, i)).copied().unwrap_or(0);
                let net_mw = Self::pair_savings_mw(ctx, i, j) - Self::pair_wake_mw(ctx, pair_flits);
                if net_mw > 0.0 {
                    candidates.push(((i, j), net_mw));
                }
            }
        }
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

        // Greedy gating with a cheap strong-connectivity check per step,
        // stopping at the gated-fraction cap.
        let cap = (topo.num_links() as f64 * self.max_gated_fraction).floor() as usize;
        let mut gated_topo = topo.clone();
        let mut gated: Vec<(RouterId, RouterId)> = Vec::new();
        for &((i, j), _) in &candidates {
            if gated.len() >= cap {
                break;
            }
            let had_fwd = gated_topo.has_link(i, j);
            let had_rev = gated_topo.has_link(j, i);
            gated_topo.remove_link(i, j);
            gated_topo.remove_link(j, i);
            if unreachable_pairs(&gated_topo) == 0 {
                gated.push((i, j));
            } else {
                if had_fwd {
                    gated_topo.add_link(i, j);
                }
                if had_rev {
                    gated_topo.add_link(j, i);
                }
            }
        }

        // Walk back until the gated sub-topology routes deadlock-free.
        // Restoration pops the smallest-net-benefit pair first, giving up
        // the least savings per unit of routability regained.
        loop {
            let name = format!("{}-gated", topo.name());
            let candidate = gated_topo.clone().with_name(name);
            match Self::route(&candidate, ctx.config.vc_budget, ctx.config.reroute_seed) {
                Ok((routing, vcs)) => {
                    return Ok(GatedNetwork {
                        topology: candidate,
                        routing,
                        vcs,
                        gated_pairs: gated,
                    })
                }
                Err(err) => {
                    // Nothing left to restore: even the ungated topology is
                    // unroutable, so propagate that failure.
                    let Some((i, j)) = gated.pop() else {
                        return Err(err);
                    };
                    if topo.has_link(i, j) {
                        gated_topo.add_link(i, j);
                    }
                    if topo.has_link(j, i) {
                        gated_topo.add_link(j, i);
                    }
                }
            }
        }
    }
}

impl EnergyPolicy for LinkSleep {
    fn name(&self) -> String {
        format!("link_sleep(t={:.2})", self.idle_threshold)
    }

    fn evaluate(&self, ctx: &EnergyContext<'_>) -> EnergyReport {
        let baseline = ctx.baseline_power();
        let Ok(gated) = self.gate(ctx) else {
            // Even the ungated network failed to re-route: fall back to
            // always-on figures, flagged unroutable.
            let mut report = AlwaysOn.evaluate(ctx);
            report.policy = self.name();
            report.routable = false;
            return report;
        };
        // Static savings and wake cost use the same per-pair cost model the
        // gating decision was made with.
        let savings_mw: f64 = gated
            .gated_pairs
            .iter()
            .map(|&(i, j)| Self::pair_savings_mw(ctx, i, j))
            .sum();
        let gated_set: std::collections::HashSet<(RouterId, RouterId)> =
            gated.gated_pairs.iter().copied().collect();
        let gated_flits: u64 = ctx
            .report
            .activity
            .links
            .iter()
            .filter(|l| {
                let key = if l.from < l.to {
                    (l.from, l.to)
                } else {
                    (l.to, l.from)
                };
                gated_set.contains(&key)
            })
            .map(|l| l.flits)
            .sum();
        let wake_mw = Self::pair_wake_mw(ctx, gated_flits);

        // Latency penalty: expected wakes per delivered packet.
        let packets = ctx.report.packets_ejected.max(1) as f64;
        let penalty_cycles =
            self.wake_penalty_cycles as f64 * (Self::wake_events(ctx, gated_flits) / packets);
        let latency_cycles = ctx.report.avg_latency_cycles + penalty_cycles;

        EnergyReport {
            policy: self.name(),
            static_mw: baseline.static_mw - savings_mw,
            dynamic_mw: baseline.dynamic_mw + wake_mw,
            gated_savings_mw: savings_mw,
            gated_links: gated.gated_pairs.len(),
            energy_per_flit_pj: 0.0,
            edp_pj_ns: 0.0,
            avg_latency_cycles: latency_cycles,
            avg_latency_ns: ctx.sim.cycles_to_ns(latency_cycles),
            routable: gated.verify(),
        }
        .finalize(ctx.delivered_flits_per_ns())
    }
}

/// One DVFS operating point, relative to the nominal class clock/voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsLevel {
    /// Clock multiplier (1.0 = nominal).
    pub freq_scale: f64,
    /// Supply-voltage multiplier (1.0 = nominal).
    pub voltage_scale: f64,
}

impl DvfsLevel {
    /// The nominal operating point.
    pub fn nominal() -> Self {
        DvfsLevel {
            freq_scale: 1.0,
            voltage_scale: 1.0,
        }
    }
}

/// Scale clock and voltage to the measured load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dvfs {
    /// Available operating points.  The policy picks the lowest-frequency
    /// level whose scaled utilization stays below [`Dvfs::headroom`].
    pub levels: Vec<DvfsLevel>,
    /// Maximum tolerated link utilization after down-clocking; keeps the
    /// slowed network out of saturation.
    pub headroom: f64,
}

impl Default for Dvfs {
    fn default() -> Self {
        Dvfs {
            levels: vec![
                DvfsLevel::nominal(),
                DvfsLevel {
                    freq_scale: 0.75,
                    voltage_scale: 0.9,
                },
                DvfsLevel {
                    freq_scale: 0.5,
                    voltage_scale: 0.8,
                },
            ],
            headroom: 0.75,
        }
    }
}

impl Dvfs {
    /// Select the operating level for a measured utilization: the slowest
    /// level that keeps `utilization / freq_scale` under the headroom.
    /// Falls back to the fastest available level when nothing qualifies.
    pub fn select_level(&self, avg_link_utilization: f64) -> DvfsLevel {
        let mut feasible: Option<DvfsLevel> = None;
        for level in &self.levels {
            if level.freq_scale <= 0.0 {
                continue;
            }
            if avg_link_utilization / level.freq_scale <= self.headroom {
                let better = match feasible {
                    None => true,
                    Some(best) => level.freq_scale < best.freq_scale,
                };
                if better {
                    feasible = Some(*level);
                }
            }
        }
        feasible.unwrap_or_else(|| {
            self.levels
                .iter()
                .copied()
                .filter(|l| l.freq_scale > 0.0)
                .max_by(|a, b| a.freq_scale.partial_cmp(&b.freq_scale).unwrap())
                .unwrap_or_else(DvfsLevel::nominal)
        })
    }
}

impl EnergyPolicy for Dvfs {
    fn name(&self) -> String {
        format!("dvfs({} levels)", self.levels.len())
    }

    fn evaluate(&self, ctx: &EnergyContext<'_>) -> EnergyReport {
        let baseline = ctx.baseline_power();
        let level = self.select_level(ctx.report.activity.avg_link_utilization());
        // Dynamic power scales with f·V² (same per-cycle activity, slower
        // and lower-swing switching); leakage scales with V; wall-clock
        // latency stretches by the inverse frequency scale.
        let dynamic_mw = baseline.dynamic_mw * level.freq_scale * level.voltage_scale.powi(2);
        let static_mw = baseline.static_mw * level.voltage_scale;
        let latency_cycles = ctx.report.avg_latency_cycles;
        let effective_clock = ctx.sim.clock_ghz * level.freq_scale;
        EnergyReport {
            policy: self.name(),
            static_mw,
            dynamic_mw,
            gated_savings_mw: 0.0,
            gated_links: 0,
            energy_per_flit_pj: 0.0,
            edp_pj_ns: 0.0,
            avg_latency_cycles: latency_cycles,
            avg_latency_ns: latency_cycles / effective_clock,
            routable: true,
        }
        .finalize(ctx.delivered_flits_per_ns() * level.freq_scale)
    }
}

/// Convenience: the three standard policies compared by the `fig12_energy`
/// harness.
pub fn standard_policies(idle_threshold: f64) -> Vec<Box<dyn EnergyPolicy>> {
    vec![
        Box::new(AlwaysOn),
        Box::new(LinkSleep {
            idle_threshold,
            ..Default::default()
        }),
        Box::new(Dvfs::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_power::static_power_mw;
    use netsmith_sim::{NetworkSim, SimConfig};
    use netsmith_topo::expert;
    use netsmith_topo::traffic::TrafficPattern;
    use netsmith_topo::Layout;

    fn measured(topo: &Topology, load: f64) -> (RoutingTable, VcAllocation, SimConfig, SimReport) {
        let paths = all_shortest_paths(topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let vcs = allocate_vcs(&table, 6, 42).expect("fits in 6 VCs");
        let sim = SimConfig::quick();
        let report = NetworkSim::builder(topo, &table)
            .vcs(&vcs)
            .pattern(TrafficPattern::UniformRandom)
            .config(sim.clone())
            .build()
            .run(load);
        (table, vcs, sim, report)
    }

    #[test]
    fn always_on_matches_the_measured_power_model() {
        let topo = expert::mesh(&Layout::noi_4x5());
        let (table, vcs, sim, report) = measured(&topo, 0.1);
        let config = EnergyConfig::default();
        let ctx = EnergyContext {
            topology: &topo,
            routing: &table,
            vcs: &vcs,
            sim: &sim,
            report: &report,
            config: &config,
        };
        let energy = AlwaysOn.evaluate(&ctx);
        let power = power_report_from_activity(&topo, &config.power, &sim, &report.activity);
        assert!((energy.static_mw - power.static_mw).abs() < 1e-9);
        assert!((energy.dynamic_mw - power.dynamic_mw).abs() < 1e-9);
        assert!(energy.energy_per_flit_pj > 0.0);
        assert!(energy.routable);
    }

    #[test]
    fn link_sleep_saves_static_power_at_low_load() {
        let topo = expert::folded_torus(&Layout::noi_4x5());
        let (table, vcs, sim, report) = measured(&topo, 0.02);
        let config = EnergyConfig::default();
        let ctx = EnergyContext {
            topology: &topo,
            routing: &table,
            vcs: &vcs,
            sim: &sim,
            report: &report,
            config: &config,
        };
        let always = AlwaysOn.evaluate(&ctx);
        let sleep = LinkSleep {
            idle_threshold: 0.15,
            ..LinkSleep::default()
        }
        .evaluate(&ctx);
        assert!(sleep.gated_links > 0, "no links gated at 2% load");
        assert!(sleep.routable, "gated sub-topology must stay routable");
        assert!(
            sleep.total_mw() < always.total_mw(),
            "sleep {} vs always-on {}",
            sleep.total_mw(),
            always.total_mw()
        );
        assert!(sleep.gated_savings_mw > 0.0);
        assert!(sleep.gated_savings_mw <= static_power_mw(&topo, &config.power));
        // The wake penalty makes gated operation slower, never faster.
        assert!(sleep.avg_latency_cycles >= always.avg_latency_cycles);
    }

    #[test]
    fn gated_subtopology_is_connected_and_deadlock_free() {
        let topo = expert::kite_medium(&Layout::noi_4x5());
        let (table, vcs, sim, report) = measured(&topo, 0.05);
        let config = EnergyConfig::default();
        let ctx = EnergyContext {
            topology: &topo,
            routing: &table,
            vcs: &vcs,
            sim: &sim,
            report: &report,
            config: &config,
        };
        let gated = LinkSleep {
            idle_threshold: 0.2,
            ..LinkSleep::default()
        }
        .gate(&ctx)
        .expect("original network routes, so gating must succeed");
        assert!(gated.verify());
        assert_eq!(unreachable_pairs(&gated.topology), 0);
        // Gated links really are gone from the sub-topology.
        for &(i, j) in &gated.gated_pairs {
            assert!(!gated.topology.has_link(i, j));
            assert!(!gated.topology.has_link(j, i));
        }
    }

    #[test]
    fn dvfs_downclocks_an_idle_network() {
        let topo = expert::mesh(&Layout::noi_4x5());
        let (table, vcs, sim, report) = measured(&topo, 0.02);
        let config = EnergyConfig::default();
        let ctx = EnergyContext {
            topology: &topo,
            routing: &table,
            vcs: &vcs,
            sim: &sim,
            report: &report,
            config: &config,
        };
        let always = AlwaysOn.evaluate(&ctx);
        let dvfs = Dvfs::default().evaluate(&ctx);
        // At 2% load the slowest level applies: both power components drop,
        // wall-clock latency stretches.
        assert!(dvfs.total_mw() < always.total_mw());
        assert!(dvfs.avg_latency_ns > always.avg_latency_ns);
        let level = Dvfs::default().select_level(report.activity.avg_link_utilization());
        assert!((level.freq_scale - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dvfs_keeps_the_nominal_clock_near_saturation() {
        let d = Dvfs::default();
        let level = d.select_level(0.7);
        assert!((level.freq_scale - 1.0).abs() < 1e-9);
        // Nothing feasible: fall back to the fastest level.
        let level = d.select_level(0.95);
        assert!((level.freq_scale - 1.0).abs() < 1e-9);
    }

    #[test]
    fn standard_policy_set_has_three_members() {
        let policies = standard_policies(0.1);
        assert_eq!(policies.len(), 3);
        let names: Vec<String> = policies.iter().map(|p| p.name()).collect();
        assert!(names.iter().any(|n| n.contains("always_on")));
        assert!(names.iter().any(|n| n.contains("link_sleep")));
        assert!(names.iter().any(|n| n.contains("dvfs")));
    }
}
