//! # netsmith-energy
//!
//! The energy subsystem: turns power from a post-hoc formula into a
//! first-class, simulation-driven quantity.
//!
//! The paper's Figure 9 feeds a DSENT-style model one hand-picked activity
//! scalar, which cannot answer the questions an energy-proportional
//! interconnect study asks: how much energy does a topology burn under a
//! *real* workload, and what do we save by putting idle links to sleep?
//! This crate closes the loop in three layers:
//!
//! 1. **Measurement** — `netsmith-sim` records an
//!    [`ActivityProfile`](netsmith_sim::ActivityProfile): per-directed-link
//!    flit counts and busy cycles, per-router forwarding activity and
//!    buffer occupancy, all over the measurement window.
//! 2. **Management** — the [`EnergyPolicy`] trait maps that profile to an
//!    [`EnergyReport`] (static / dynamic / gated-savings mW, energy per
//!    delivered flit, energy-delay product).  [`AlwaysOn`] is the baseline;
//!    [`LinkSleep`] power-gates under-utilized links after proving the
//!    gated sub-topology still routes deadlock-free through the standard
//!    MCLB + escape-VC machinery; [`Dvfs`] scales clock and voltage to the
//!    measured load.
//! 3. **Optimization** — `netsmith-gen`'s `Objective::EnergyOp` lets the
//!    annealer search for energy-optimal topologies directly, and
//!    `netsmith::pipeline::EvaluatedNetwork::energy_report` plus the
//!    `fig12_energy` harness sweep policies across topologies and traffic
//!    patterns.

pub mod policy;
pub mod report;

pub use policy::{
    standard_policies, AlwaysOn, Dvfs, DvfsLevel, EnergyContext, EnergyPolicy, GatedNetwork,
    LinkSleep,
};
pub use report::{EnergyConfig, EnergyReport};
