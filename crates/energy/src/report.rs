//! Energy policy configuration and reporting.

use netsmith_power::PowerConfig;
use serde::{Deserialize, Serialize};

/// Parameters shared by every energy-management policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Technology constants of the underlying DSENT-style power model.
    pub power: PowerConfig,
    /// Fraction of a link's wire leakage still burned while the link is
    /// power-gated (retention/controller overhead); 0 would be an ideal
    /// switch, 1 makes gating pointless.
    pub gated_leakage_fraction: f64,
    /// Energy charged per wake event of a gated link, in picojoules
    /// (charging the sleep transistors and re-arming the receiver).
    pub wake_energy_pj: f64,
    /// Virtual-channel budget available when re-verifying that a gated
    /// sub-topology still routes deadlock-free (6 in the paper).
    pub vc_budget: usize,
    /// Seed for the deterministic re-route of gated sub-topologies.
    pub reroute_seed: u64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            power: PowerConfig::default(),
            gated_leakage_fraction: 0.1,
            wake_energy_pj: 10.0,
            vc_budget: 6,
            reroute_seed: 0xECCE,
        }
    }
}

/// Power and energy of one topology under one management policy at one
/// measured operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Name of the policy that produced the report.
    pub policy: String,
    /// Static (leakage) power after the policy's gating/scaling, in mW.
    pub static_mw: f64,
    /// Dynamic power including any policy overhead (wake events), in mW.
    pub dynamic_mw: f64,
    /// Static power saved relative to always-on operation, in mW.
    pub gated_savings_mw: f64,
    /// Number of power-gated full-duplex links (0 for non-gating policies).
    pub gated_links: usize,
    /// Energy per *delivered* flit in pJ (total power over delivered flit
    /// rate; 0 when nothing was delivered).
    pub energy_per_flit_pj: f64,
    /// Energy-delay product: energy per delivered flit times average packet
    /// latency, in pJ·ns.
    pub edp_pj_ns: f64,
    /// Average packet latency in cycles including policy penalties (wake
    /// latency for gating policies).
    pub avg_latency_cycles: f64,
    /// The same latency in nanoseconds at the policy's effective clock.
    pub avg_latency_ns: f64,
    /// Whether the managed configuration was verified to remain strongly
    /// connected and deadlock-free (gated sub-topology re-routed and
    /// re-allocated through the standard machinery).
    pub routable: bool,
}

impl EnergyReport {
    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }

    /// Derive the per-flit energy and EDP figures from power, latency and
    /// the delivered flit rate (flits per nanosecond).
    pub(crate) fn finalize(mut self, delivered_flits_per_ns: f64) -> Self {
        if delivered_flits_per_ns > 0.0 {
            self.energy_per_flit_pj = self.total_mw() / delivered_flits_per_ns;
        } else {
            self.energy_per_flit_pj = 0.0;
        }
        self.edp_pj_ns = self.energy_per_flit_pj * self.avg_latency_ns;
        self
    }

    /// CSV header matching [`EnergyReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "policy,static_mw,dynamic_mw,gated_savings_mw,total_mw,gated_links,\
         energy_per_flit_pj,edp_pj_ns,latency_cycles,latency_ns,routable"
    }

    /// One CSV row of the report.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{:.3},{:.3},{:.3},{:.3},{},{:.3},{:.3},{:.2},{:.2},{}",
            self.policy,
            self.static_mw,
            self.dynamic_mw,
            self.gated_savings_mw,
            self.total_mw(),
            self.gated_links,
            self.energy_per_flit_pj,
            self.edp_pj_ns,
            self.avg_latency_cycles,
            self.avg_latency_ns,
            self.routable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EnergyReport {
        EnergyReport {
            policy: "test".into(),
            static_mw: 60.0,
            dynamic_mw: 40.0,
            gated_savings_mw: 0.0,
            gated_links: 0,
            energy_per_flit_pj: 0.0,
            edp_pj_ns: 0.0,
            avg_latency_cycles: 30.0,
            avg_latency_ns: 10.0,
            routable: true,
        }
    }

    #[test]
    fn finalize_divides_power_by_flit_rate() {
        let r = base().finalize(2.0);
        assert!((r.energy_per_flit_pj - 50.0).abs() < 1e-9);
        assert!((r.edp_pj_ns - 500.0).abs() < 1e-9);
        assert!((r.total_mw() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn finalize_handles_zero_delivery() {
        let r = base().finalize(0.0);
        assert_eq!(r.energy_per_flit_pj, 0.0);
        assert_eq!(r.edp_pj_ns, 0.0);
    }

    #[test]
    fn csv_row_has_as_many_fields_as_the_header() {
        let r = base().finalize(1.0);
        assert_eq!(
            r.to_csv_row().split(',').count(),
            EnergyReport::csv_header().split(',').count()
        );
    }

    #[test]
    fn default_config_is_physical() {
        let c = EnergyConfig::default();
        assert!((0.0..1.0).contains(&c.gated_leakage_fraction));
        assert!(c.wake_energy_pj >= 0.0);
        assert!(c.vc_budget >= 1);
    }
}
