//! Property tests for the energy subsystem: dynamic energy monotone in
//! injected load, gated savings bounded by the static budget, and gating
//! never breaking deadlock freedom.

use netsmith_energy::{AlwaysOn, EnergyConfig, EnergyContext, EnergyPolicy, LinkSleep};
use netsmith_power::static_power_mw;
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::vc::verify_deadlock_free;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig, RoutingTable, VcAllocation};
use netsmith_sim::{NetworkSim, SimConfig, SimReport};
use netsmith_topo::metrics::unreachable_pairs;
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::{expert, Layout, Topology};
use proptest::prelude::*;

fn quick_config(seed: u64) -> SimConfig {
    SimConfig {
        warmup_cycles: 200,
        measure_cycles: 800,
        drain_cycles: 600,
        seed,
        ..SimConfig::default()
    }
}

fn prepared(topo: &Topology) -> (RoutingTable, VcAllocation) {
    let paths = all_shortest_paths(topo);
    let table = mclb_route(&paths, &MclbConfig::default());
    let vcs = allocate_vcs(&table, 6, 7).expect("fits in 6 VCs");
    (table, vcs)
}

fn run(
    topo: &Topology,
    table: &RoutingTable,
    vcs: &VcAllocation,
    seed: u64,
    load: f64,
) -> SimReport {
    NetworkSim::builder(topo, table)
        .vcs(vcs)
        .pattern(TrafficPattern::UniformRandom)
        .config(quick_config(seed))
        .build()
        .run(load)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// More offered (and, below saturation, delivered) load means more flit
    /// traversals, so dynamic energy must grow with injected load.
    #[test]
    fn dynamic_energy_is_monotone_in_injected_load(seed in 0u64..5_000, load in 0.02f64..0.12) {
        let layout = Layout::noi_4x5();
        let topo = expert::folded_torus(&layout);
        let (table, vcs) = prepared(&topo);
        let sim = quick_config(seed);
        let config = EnergyConfig::default();
        let low = run(&topo, &table, &vcs, seed, load);
        let high = run(&topo, &table, &vcs, seed, 2.0 * load);
        let energy_of = |report: &SimReport| {
            AlwaysOn.evaluate(&EnergyContext {
                topology: &topo,
                routing: &table,
                vcs: &vcs,
                sim: &sim,
                report,
                config: &config,
            })
        };
        let low_energy = energy_of(&low);
        let high_energy = energy_of(&high);
        prop_assert!(
            high_energy.dynamic_mw > low_energy.dynamic_mw,
            "dynamic power {} at load {} vs {} at load {}",
            high_energy.dynamic_mw, 2.0 * load, low_energy.dynamic_mw, load
        );
        // Static power is activity-independent.
        prop_assert!((high_energy.static_mw - low_energy.static_mw).abs() < 1e-9);
    }

    /// LinkSleep savings are non-negative and can never exceed the total
    /// static (leakage) budget of the topology, and the gated sub-topology
    /// always stays strongly connected and deadlock-free.
    #[test]
    fn link_sleep_savings_are_bounded_and_gating_is_safe(
        seed in 0u64..5_000,
        load in 0.02f64..0.2,
        threshold in 0.0f64..0.5,
    ) {
        let layout = Layout::noi_4x5();
        let topo = expert::kite_medium(&layout);
        let (table, vcs) = prepared(&topo);
        let sim = quick_config(seed);
        let config = EnergyConfig::default();
        let report = run(&topo, &table, &vcs, seed, load);
        let ctx = EnergyContext {
            topology: &topo,
            routing: &table,
            vcs: &vcs,
            sim: &sim,
            report: &report,
            config: &config,
        };
        let policy = LinkSleep { idle_threshold: threshold, ..LinkSleep::default() };
        let energy = policy.evaluate(&ctx);
        prop_assert!(energy.gated_savings_mw >= 0.0);
        prop_assert!(energy.gated_savings_mw <= static_power_mw(&topo, &config.power) + 1e-9);
        prop_assert!(energy.routable, "gated configuration must remain routable");
        prop_assert!(energy.static_mw >= 0.0);

        let gated = policy.gate(&ctx).expect("original network routes");
        prop_assert_eq!(unreachable_pairs(&gated.topology), 0);
        prop_assert!(gated.routing.is_complete());
        prop_assert!(
            verify_deadlock_free(&gated.routing, &gated.vcs),
            "gating broke deadlock freedom with threshold {}", threshold
        );
        prop_assert_eq!(energy.gated_links, gated.gated_pairs.len());
    }
}
