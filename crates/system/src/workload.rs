//! PARSEC-style workload profiles.
//!
//! The paper simulates the PARSEC suite (all benchmarks except `vips`,
//! which fails in its baseline) and orders Figure 8 by L2 misses per
//! instruction.  Full traces are not available here, so each benchmark is
//! described by the handful of parameters that determine how sensitive it
//! is to NoI latency.  The absolute values are synthetic; the *ordering*
//! and rough magnitudes follow the published PARSEC characterisations
//! (Bienia et al., PACT 2008) so the left-to-right trend of Figure 8 is
//! reproduced.

use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::Layout;
use netsmith_trace::{OnOffHotspotParams, TraceModel};
use serde::{Deserialize, Serialize};

/// Network-relevant profile of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// L2 misses per kilo-instruction (per core).
    pub l2_mpki: f64,
    /// Fraction of misses served by another cache (coherence traffic);
    /// the remainder goes to the memory controllers.
    pub coherence_fraction: f64,
    /// Base CPI of the out-of-order core when the network is ideal.
    pub base_cpi: f64,
    /// Fraction of miss latency hidden by memory-level parallelism /
    /// out-of-order overlap.
    pub overlap: f64,
}

impl WorkloadProfile {
    /// Misses per instruction.
    pub fn misses_per_instruction(&self) -> f64 {
        self.l2_mpki / 1000.0
    }

    /// The synthetic NoI traffic pattern this workload induces: the
    /// coherence fraction of misses is served cache-to-cache (uniform
    /// router-to-router traffic), the remainder targets the memory
    /// controllers — a hotspot mixture over the layout's memory routers.
    /// Used by the energy harness to replay PARSEC-derived traffic through
    /// the simulator's activity accounting.
    pub fn traffic_pattern(&self, layout: &Layout) -> TrafficPattern {
        TrafficPattern::Hotspot {
            targets: layout.memory_routers(),
            fraction: 1.0 - self.coherence_fraction,
        }
    }

    /// The trace generator this workload parameterizes: ON/OFF bursty
    /// sources whose hotspot sinks are the layout's memory routers
    /// (mirroring [`WorkloadProfile::traffic_pattern`]) and whose in-burst
    /// injection intensity scales with the benchmark's L2 MPKI.  Feed the
    /// resulting [`TraceModel`] to [`TraceModel::generate`] for a
    /// deterministic replayable trace of this benchmark.
    pub fn trace_model(&self, layout: &Layout) -> TraceModel {
        TraceModel::OnOffHotspot(OnOffHotspotParams {
            // canneal (7.5 MPKI) runs near-saturated bursts; swaptions
            // (0.08 MPKI) barely grazes the floor.
            inject_prob: (self.l2_mpki / 8.0).clamp(0.05, 0.9),
            hotspot_fraction: 1.0 - self.coherence_fraction,
            targets: layout.memory_routers(),
            ..OnOffHotspotParams::default()
        })
    }
}

/// The PARSEC suite as used in the paper's Figure 8 (vips excluded), in
/// increasing order of L2 MPKI — the same ordering as the figure's X axis.
pub fn parsec_suite() -> Vec<WorkloadProfile> {
    vec![
        WorkloadProfile {
            name: "swaptions",
            l2_mpki: 0.08,
            coherence_fraction: 0.45,
            base_cpi: 0.55,
            overlap: 0.55,
        },
        WorkloadProfile {
            name: "blackscholes",
            l2_mpki: 0.15,
            coherence_fraction: 0.30,
            base_cpi: 0.55,
            overlap: 0.55,
        },
        WorkloadProfile {
            name: "bodytrack",
            l2_mpki: 0.35,
            coherence_fraction: 0.45,
            base_cpi: 0.60,
            overlap: 0.50,
        },
        WorkloadProfile {
            name: "freqmine",
            l2_mpki: 0.60,
            coherence_fraction: 0.40,
            base_cpi: 0.65,
            overlap: 0.50,
        },
        WorkloadProfile {
            name: "raytrace",
            l2_mpki: 0.80,
            coherence_fraction: 0.50,
            base_cpi: 0.65,
            overlap: 0.50,
        },
        WorkloadProfile {
            name: "x264",
            l2_mpki: 1.10,
            coherence_fraction: 0.45,
            base_cpi: 0.70,
            overlap: 0.45,
        },
        WorkloadProfile {
            name: "ferret",
            l2_mpki: 1.60,
            coherence_fraction: 0.50,
            base_cpi: 0.75,
            overlap: 0.45,
        },
        WorkloadProfile {
            name: "dedup",
            l2_mpki: 2.20,
            coherence_fraction: 0.55,
            base_cpi: 0.80,
            overlap: 0.45,
        },
        WorkloadProfile {
            name: "fluidanimate",
            l2_mpki: 2.80,
            coherence_fraction: 0.60,
            base_cpi: 0.85,
            overlap: 0.40,
        },
        WorkloadProfile {
            name: "facesim",
            l2_mpki: 3.50,
            coherence_fraction: 0.55,
            base_cpi: 0.90,
            overlap: 0.40,
        },
        WorkloadProfile {
            name: "streamcluster",
            l2_mpki: 5.50,
            coherence_fraction: 0.35,
            base_cpi: 1.00,
            overlap: 0.35,
        },
        WorkloadProfile {
            name: "canneal",
            l2_mpki: 7.50,
            coherence_fraction: 0.40,
            base_cpi: 1.10,
            overlap: 0.35,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_benchmarks_sorted_by_mpki() {
        let suite = parsec_suite();
        assert_eq!(suite.len(), 12);
        assert!(suite.windows(2).all(|w| w[0].l2_mpki <= w[1].l2_mpki));
        assert!(!suite.iter().any(|w| w.name == "vips"));
    }

    #[test]
    fn profiles_are_physically_plausible() {
        for w in parsec_suite() {
            assert!(w.l2_mpki > 0.0 && w.l2_mpki < 50.0, "{}", w.name);
            assert!((0.0..=1.0).contains(&w.coherence_fraction));
            assert!((0.0..=1.0).contains(&w.overlap));
            assert!(w.base_cpi > 0.0 && w.base_cpi < 5.0);
            assert!(w.misses_per_instruction() < 0.01);
        }
    }

    #[test]
    fn traffic_pattern_targets_the_memory_routers() {
        let layout = Layout::noi_4x5();
        for w in parsec_suite() {
            let TrafficPattern::Hotspot { targets, fraction } = w.traffic_pattern(&layout) else {
                panic!("{} should induce a hotspot mixture", w.name);
            };
            assert_eq!(targets, layout.memory_routers());
            assert!((0.0..=1.0).contains(&fraction));
            assert!((fraction - (1.0 - w.coherence_fraction)).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_models_scale_with_mpki_and_target_memory_routers() {
        let layout = Layout::noi_4x5();
        let suite = parsec_suite();
        let trace = |w: &WorkloadProfile| w.trace_model(&layout).generate(20, 2_048, 5);
        let light = trace(&suite[0]); // swaptions
        let heavy = trace(suite.last().unwrap()); // canneal
        assert!(
            heavy.offered_flits_per_node_cycle() > light.offered_flits_per_node_cycle(),
            "canneal should inject more than swaptions"
        );
        // The memory routers soak up the hotspot fraction of the demand.
        let stats = netsmith_trace::TraceStats::of(&heavy);
        let mem = layout.memory_routers();
        let mem_share: f64 = mem
            .iter()
            .flat_map(|&d| (0..20).map(move |s| (s, d)))
            .map(|(s, d)| stats.demand_matrix().demand(s, d))
            .sum();
        assert!(
            mem_share > 0.4,
            "memory routers draw {mem_share} of normalized demand"
        );
        // Pure in all inputs: the bridge is deterministic.
        assert_eq!(trace(&suite[0]), light);
    }

    #[test]
    fn canneal_is_the_most_network_bound() {
        let suite = parsec_suite();
        let max = suite
            .iter()
            .max_by(|a, b| a.l2_mpki.partial_cmp(&b.l2_mpki).unwrap())
            .unwrap();
        assert_eq!(max.name, "canneal");
    }
}
