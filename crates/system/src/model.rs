//! Execution-time model driven by simulated NoI packet latencies.

use crate::workload::WorkloadProfile;
use netsmith_route::{RoutingTable, VcAllocation};
use netsmith_sim::{NetworkSim, SimConfig};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::Topology;
use serde::{Deserialize, Serialize};

/// Full-system parameters (defaults follow the paper's Table IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullSystemConfig {
    /// CPU core clock in GHz (3.8 GHz in Table IV).
    pub cpu_clock_ghz: f64,
    /// Cores per NoI router (4-way concentration).
    pub cores_per_router: f64,
    /// Average NoC (intra-chiplet) + CDC latency added to every NoI
    /// transaction, in CPU cycles (2-cycle CDC each way plus a few NoC
    /// hops).
    pub noc_and_cdc_cycles: f64,
    /// Directory / LLC slice lookup latency in CPU cycles.
    pub directory_cycles: f64,
    /// DRAM access latency in CPU cycles for memory-bound misses.
    pub dram_cycles: f64,
    /// Network simulator configuration (clock set per topology class).
    pub sim: SimConfig,
}

impl Default for FullSystemConfig {
    fn default() -> Self {
        FullSystemConfig {
            cpu_clock_ghz: 3.8,
            cores_per_router: 3.2, // 64 cores / 20 NoI routers
            noc_and_cdc_cycles: 12.0,
            directory_cycles: 20.0,
            dram_cycles: 120.0,
            sim: SimConfig::default(),
        }
    }
}

impl FullSystemConfig {
    /// Reduced-cycle configuration for tests.
    pub fn quick() -> Self {
        FullSystemConfig {
            sim: SimConfig::quick(),
            ..Default::default()
        }
    }
}

/// Result of evaluating one topology under one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullSystemResult {
    pub benchmark: String,
    pub topology: String,
    /// Average NoI packet latency in nanoseconds.
    pub packet_latency_ns: f64,
    /// Average end-to-end miss penalty in CPU cycles.
    pub miss_penalty_cycles: f64,
    /// Modelled cycles per instruction.
    pub cpi: f64,
    /// Modelled execution time (normalized: cycles per instruction times a
    /// fixed instruction count; only ratios are meaningful).
    pub execution_time: f64,
}

impl FullSystemResult {
    /// Speedup of this result relative to a baseline (e.g. mesh).
    pub fn speedup_over(&self, baseline: &FullSystemResult) -> f64 {
        baseline.execution_time / self.execution_time
    }

    /// Packet latency reduction relative to a baseline (1.0 = eliminated).
    pub fn latency_reduction_over(&self, baseline: &FullSystemResult) -> f64 {
        1.0 - self.packet_latency_ns / baseline.packet_latency_ns
    }
}

/// The NoI injection rate (flits per router per NoI cycle) implied by a
/// workload profile: every L2 miss produces a request packet and a response
/// packet (one of them data-sized), issued by `cores_per_router` cores at
/// `cpu_clock / base_cpi` instructions per second each.
pub fn implied_injection_rate(
    profile: &WorkloadProfile,
    config: &FullSystemConfig,
    noi_clock_ghz: f64,
) -> f64 {
    let instr_per_ns_per_core = config.cpu_clock_ghz / profile.base_cpi;
    let misses_per_ns_per_router =
        instr_per_ns_per_core * profile.misses_per_instruction() * config.cores_per_router;
    // Two packets per miss (request + response), average size in flits.
    let avg_flits = config.sim.average_flits();
    let flits_per_ns_per_router = misses_per_ns_per_router * 2.0 * avg_flits;
    (flits_per_ns_per_router / noi_clock_ghz).min(0.95)
}

/// Evaluate one topology + routing + VC allocation under one workload.
pub fn evaluate_topology(
    profile: &WorkloadProfile,
    topo: &Topology,
    table: &RoutingTable,
    vcs: Option<&VcAllocation>,
    config: &FullSystemConfig,
) -> FullSystemResult {
    let mut sim_config = config.sim.clone();
    sim_config.clock_ghz = topo.class().clock_ghz();
    // Coherence misses are 3-hop-ish transactions dominated by control
    // packets; memory misses move cache lines.  The synthetic mix below
    // matches the paper's equal-likelihood control/data injection.
    sim_config.data_fraction = 0.5;
    let load = implied_injection_rate(profile, config, sim_config.clock_ghz);
    let pattern = TrafficPattern::UniformRandom;
    let mut sim_builder = NetworkSim::builder(topo, table)
        .pattern(pattern)
        .config(sim_config.clone());
    if let Some(vcs) = vcs {
        sim_builder = sim_builder.vcs(vcs);
    }
    let sim = sim_builder.build();
    let report = sim.run(load.max(0.01));
    // If the workload saturates this NoI, latency already reflects the
    // queueing explosion; the CPI model simply inherits it.
    let packet_latency_ns = if report.avg_latency_cycles > 0.0 {
        report.avg_latency_ns
    } else {
        sim_config.cycles_to_ns(sim.zero_load_latency_cycles())
    };

    // Miss penalty in CPU cycles: NoC/CDC crossings + directory lookup +
    // two NoI traversals + DRAM for the memory-bound fraction.
    let noi_round_trip_cpu_cycles = 2.0 * packet_latency_ns * config.cpu_clock_ghz;
    let memory_fraction = 1.0 - profile.coherence_fraction;
    let miss_penalty_cycles = config.noc_and_cdc_cycles
        + config.directory_cycles
        + noi_round_trip_cpu_cycles
        + memory_fraction * config.dram_cycles;
    let effective_penalty = miss_penalty_cycles * (1.0 - profile.overlap);
    let cpi = profile.base_cpi + profile.misses_per_instruction() * effective_penalty;
    FullSystemResult {
        benchmark: profile.name.to_string(),
        topology: topo.name().to_string(),
        packet_latency_ns,
        miss_penalty_cycles,
        cpi,
        execution_time: cpi, // per-instruction time in CPU cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::parsec_suite;
    use netsmith_route::paths::all_shortest_paths;
    use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    fn routed(topo: &Topology) -> (RoutingTable, VcAllocation) {
        let ps = all_shortest_paths(topo);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 1).unwrap();
        (table, alloc)
    }

    #[test]
    fn injection_rate_scales_with_mpki() {
        let config = FullSystemConfig::quick();
        let suite = parsec_suite();
        let low = implied_injection_rate(&suite[0], &config, 3.0);
        let high = implied_injection_rate(suite.last().unwrap(), &config, 3.0);
        assert!(low < high);
        assert!(low > 0.0);
        assert!(high <= 0.95);
    }

    #[test]
    fn network_bound_benchmarks_have_higher_cpi() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let (table, alloc) = routed(&mesh);
        let config = FullSystemConfig::quick();
        let suite = parsec_suite();
        let light = evaluate_topology(&suite[0], &mesh, &table, Some(&alloc), &config);
        let heavy = evaluate_topology(suite.last().unwrap(), &mesh, &table, Some(&alloc), &config);
        assert!(heavy.cpi > light.cpi);
        assert!(light.cpi >= suite[0].base_cpi);
    }

    #[test]
    fn better_topologies_speed_up_network_bound_workloads() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let kite = expert::kite_medium(&layout);
        let (mesh_table, mesh_alloc) = routed(&mesh);
        let (kite_table, kite_alloc) = routed(&kite);
        let config = FullSystemConfig::quick();
        let canneal = parsec_suite()
            .into_iter()
            .find(|w| w.name == "canneal")
            .unwrap();
        let base = evaluate_topology(&canneal, &mesh, &mesh_table, Some(&mesh_alloc), &config);
        let better = evaluate_topology(&canneal, &kite, &kite_table, Some(&kite_alloc), &config);
        let speedup = better.speedup_over(&base);
        assert!(
            speedup > 1.0,
            "kite should speed canneal up over mesh, got {speedup}"
        );
        assert!(better.latency_reduction_over(&base) > 0.0);
    }

    #[test]
    fn compute_bound_workloads_are_less_sensitive() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let kite = expert::kite_medium(&layout);
        let (mesh_table, mesh_alloc) = routed(&mesh);
        let (kite_table, kite_alloc) = routed(&kite);
        let config = FullSystemConfig::quick();
        let suite = parsec_suite();
        let compute_bound = &suite[0];
        let network_bound = suite.last().unwrap();
        let s_light = evaluate_topology(
            compute_bound,
            &kite,
            &kite_table,
            Some(&kite_alloc),
            &config,
        )
        .speedup_over(&evaluate_topology(
            compute_bound,
            &mesh,
            &mesh_table,
            Some(&mesh_alloc),
            &config,
        ));
        let s_heavy = evaluate_topology(
            network_bound,
            &kite,
            &kite_table,
            Some(&kite_alloc),
            &config,
        )
        .speedup_over(&evaluate_topology(
            network_bound,
            &mesh,
            &mesh_table,
            Some(&mesh_alloc),
            &config,
        ));
        assert!(
            s_heavy >= s_light,
            "network-bound speedup {s_heavy} should exceed compute-bound {s_light}"
        );
    }

    #[test]
    fn speedup_of_identity_is_one() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let (table, alloc) = routed(&mesh);
        let config = FullSystemConfig::quick();
        let w = &parsec_suite()[3];
        let r = evaluate_topology(w, &mesh, &table, Some(&alloc), &config);
        assert!((r.speedup_over(&r) - 1.0).abs() < 1e-12);
        assert!(r.latency_reduction_over(&r).abs() < 1e-12);
    }
}
