//! # netsmith-system
//!
//! A trace-free full-system model that stands in for the paper's gem5
//! full-system PARSEC simulations (64 out-of-order cores, MESI two-level
//! coherence, 16 DDR4 channels — Table IV).
//!
//! ## What is preserved, what is substituted
//!
//! The paper's full-system experiments exist to show one mechanism: lower
//! NoI packet latency speeds up coherence and memory transactions, and the
//! more network-bound a benchmark is (more L2 misses per instruction), the
//! more of that improvement shows up as end-to-end speedup.  This crate
//! keeps that mechanism and replaces the unrelated machinery:
//!
//! * Each PARSEC benchmark is represented by a [`WorkloadProfile`]:
//!   L2 misses per kilo-instruction, the split between cache-to-cache
//!   (coherence) and memory-directed traffic, and a base CPI.  The values
//!   are synthetic but ordered to match the published PARSEC
//!   characterisations the paper's Figure 8 is sorted by (blackscholes and
//!   swaptions are compute-bound, canneal and streamcluster are the most
//!   network-bound).
//! * The NoI itself is simulated with `netsmith-sim` at the injection rate
//!   the profile implies, using the same mixed control/data packet sizes as
//!   the paper's synthetic coherence/memory traffic.
//! * Execution time follows a standard miss-overlap model:
//!   `CPI = CPI_base + miss_per_instr * miss_penalty * (1 - overlap)`,
//!   where the miss penalty includes the directory/DRAM latency plus two
//!   NoI traversals (request + response) and the NoC/CDC crossings at the
//!   paper's Table IV latencies.  Speedups are reported relative to the
//!   mesh baseline exactly like Figure 8.

pub mod model;
pub mod workload;

pub use model::{evaluate_topology, FullSystemConfig, FullSystemResult};
pub use workload::{parsec_suite, WorkloadProfile};
