//! Property-based tests for the topology substrate.

use netsmith_topo::analysis::TopoAnalysis;
use netsmith_topo::cuts::{crossing_links, sparsest_cut_exhaustive, sparsest_cut_heuristic};
use netsmith_topo::expert;
use netsmith_topo::layout::Layout;
use netsmith_topo::linkclass::{LinkClass, LinkSpan};
use netsmith_topo::metrics::{all_pairs_hops, average_hops, diameter, UNREACHABLE};
use netsmith_topo::topology::Topology;
use netsmith_topo::traffic::{DemandMatrix, TrafficPattern};
use proptest::prelude::*;

/// Strategy: a random topology on a small layout (3x3, radix 4, custom
/// class so arbitrary links are allowed), built from a random subset of
/// candidate directed links plus a Hamiltonian ring so it stays connected.
fn random_connected_topology() -> impl Strategy<Value = Topology> {
    let layout = Layout::interposer_grid(3, 3, 8);
    let n = layout.num_routers();
    let candidates: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
        .collect();
    let len = candidates.len();
    (proptest::collection::vec(any::<bool>(), len)).prop_map(move |mask| {
        let mut t = Topology::empty(
            "random",
            layout.clone(),
            LinkClass::Custom(LinkSpan::new(8, 8)),
        );
        for (a, b) in expert::hamiltonian_ring(&layout) {
            t.add_bidirectional(a, b);
        }
        for (keep, &(i, j)) in mask.iter().zip(candidates.iter()) {
            if *keep {
                t.add_link(i, j);
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_distances_satisfy_triangle_inequality(topo in random_connected_topology()) {
        let n = topo.num_routers();
        let dist = all_pairs_hops(&topo);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let dij = dist[i * n + j];
                    let dik = dist[i * n + k];
                    let dkj = dist[k * n + j];
                    if dik != UNREACHABLE && dkj != UNREACHABLE {
                        prop_assert!(dij as u64 <= dik as u64 + dkj as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn adding_a_link_never_increases_average_hops(topo in random_connected_topology()) {
        let before = average_hops(&topo);
        let mut augmented = topo.clone();
        // add the first missing link
        let n = augmented.num_routers();
        'outer: for i in 0..n {
            for j in 0..n {
                if i != j && !augmented.has_link(i, j) {
                    augmented.add_link(i, j);
                    break 'outer;
                }
            }
        }
        let after = average_hops(&augmented);
        prop_assert!(after <= before + 1e-9);
    }

    #[test]
    fn diameter_bounds_average_hops(topo in random_connected_topology()) {
        let avg = average_hops(&topo);
        let diam = diameter(&topo);
        if let Some(d) = diam {
            prop_assert!(avg <= d as f64 + 1e-9);
            prop_assert!(avg >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn heuristic_cut_never_beats_exhaustive(topo in random_connected_topology()) {
        let exact = sparsest_cut_exhaustive(&topo);
        let heur = sparsest_cut_heuristic(&topo, 8, 99);
        prop_assert!(heur.normalized_bandwidth >= exact.normalized_bandwidth - 1e-12);
    }

    #[test]
    fn crossing_links_sum_matches_total_cross_pairs(topo in random_connected_topology()) {
        let n = topo.num_routers();
        // Partition: first half vs rest.
        let in_u: Vec<bool> = (0..n).map(|i| i < n / 2).collect();
        let (f, b) = crossing_links(&topo, &in_u);
        let manual = topo
            .links()
            .filter(|&(i, j)| in_u[i] != in_u[j])
            .count();
        prop_assert_eq!(f + b, manual);
    }

    #[test]
    fn demand_matrices_are_normalized(pattern_idx in 0usize..4) {
        let layout = Layout::noi_4x5();
        let pattern = match pattern_idx {
            0 => TrafficPattern::UniformRandom,
            1 => TrafficPattern::Shuffle,
            2 => TrafficPattern::Memory,
            _ => TrafficPattern::Transpose,
        };
        let m = pattern.demand_matrix(&layout);
        prop_assert!((m.total() - 1.0).abs() < 1e-9);
        for s in 0..20 {
            prop_assert_eq!(m.demand(s, s), 0.0);
        }
    }

    #[test]
    fn uniform_demand_weighted_hops_equals_plain_average(topo in random_connected_topology()) {
        let n = topo.num_routers();
        let plain = average_hops(&topo);
        let weighted = netsmith_topo::metrics::weighted_average_hops(&topo, &DemandMatrix::uniform(n));
        if plain.is_finite() {
            prop_assert!((plain - weighted).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_analysis_exactly_matches_scratch_over_move_sequences(
        topo in random_connected_topology(),
        moves in proptest::collection::vec((0usize..9, 0usize..9, any::<bool>()), 1..24),
        compound in any::<bool>(),
    ) {
        // Replay a random sequence of link add/remove moves, updating the
        // analysis incrementally, and require bit-exact agreement with a
        // from-scratch analysis after every step.  `compound` batches two
        // ops per `after_move` call, exercising the annealer's rewire and
        // endpoint-swap shapes (remove + add in one delta).
        let mut topo = topo;
        let mut analysis = TopoAnalysis::new(&topo);
        let mut pending_removed: Vec<(usize, usize)> = Vec::new();
        let mut pending_added: Vec<(usize, usize)> = Vec::new();
        let mut pending = 0usize;
        let batch = if compound { 2 } else { 1 };
        for (i_raw, j_raw, add) in moves {
            let (i, j) = if i_raw == j_raw { (i_raw, (j_raw + 1) % 9) } else { (i_raw, j_raw) };
            // Skip ops already queued for this directed pair (the
            // incremental contract is "each pair at most once per move").
            if pending_removed.contains(&(i, j)) || pending_added.contains(&(i, j)) {
                continue;
            }
            if add && !topo.has_link(i, j) {
                topo.add_link(i, j);
                pending_added.push((i, j));
            } else if !add && topo.has_link(i, j) {
                topo.remove_link(i, j);
                pending_removed.push((i, j));
            } else {
                continue;
            }
            pending += 1;
            if pending < batch {
                continue;
            }
            analysis = analysis.after_move(&topo, &pending_removed, &pending_added);
            pending_removed.clear();
            pending_added.clear();
            pending = 0;
            let scratch = TopoAnalysis::new(&topo);
            let n = topo.num_routers();
            for s in 0..n {
                for d in 0..n {
                    prop_assert_eq!(
                        analysis.hop_distance(s, d),
                        scratch.hop_distance(s, d),
                        "dist({},{}) diverged", s, d
                    );
                }
                prop_assert_eq!(analysis.out_degree(s), scratch.out_degree(s));
                prop_assert_eq!(analysis.in_degree(s), scratch.in_degree(s));
            }
            prop_assert_eq!(analysis.total_hops(), scratch.total_hops());
            prop_assert_eq!(analysis.unreachable_pairs(), scratch.unreachable_pairs());
            prop_assert_eq!(analysis.min_directional_degree(), scratch.min_directional_degree());
        }
    }

    #[test]
    fn validation_accepts_expert_baselines_after_random_link_removal_restore(seed in 0u64..500) {
        // Removing and re-adding the same link leaves the topology valid.
        let layout = Layout::noi_4x5();
        let mut t = expert::folded_torus(&layout);
        let links: Vec<(usize, usize)> = t.links().collect();
        let pick = links[(seed as usize) % links.len()];
        t.remove_link(pick.0, pick.1);
        t.add_link(pick.0, pick.1);
        prop_assert!(t.is_valid());
    }
}
