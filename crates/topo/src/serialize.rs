//! Plain-text serialization of topologies.
//!
//! Discovered topologies are expensive to regenerate (minutes of search),
//! so the harness and examples need a way to persist them without pulling a
//! serialization format crate into the dependency set.  The format is a
//! small, self-describing text file:
//!
//! ```text
//! netsmith-topology v1
//! name NS-LatOp-medium
//! class medium
//! layout 4 5 4 4.0
//! kind 0 cores_mem 2 2
//! ...
//! link 0 1
//! link 1 0
//! ...
//! ```
//!
//! Every router's kind is listed explicitly so a file round-trips even for
//! non-standard layouts.

use crate::layout::{Layout, NodeKind};
use crate::linkclass::{LinkClass, LinkSpan};
use crate::topology::Topology;
use std::fmt::Write as _;

/// Serialize a topology to the text format.
pub fn to_text(topo: &Topology) -> String {
    let layout = topo.layout();
    let mut out = String::new();
    let _ = writeln!(out, "netsmith-topology v1");
    let _ = writeln!(out, "name {}", topo.name());
    let class = match topo.class() {
        LinkClass::Small => "small".to_string(),
        LinkClass::Medium => "medium".to_string(),
        LinkClass::Large => "large".to_string(),
        LinkClass::Custom(s) => format!("custom {} {}", s.dx, s.dy),
    };
    let _ = writeln!(out, "class {class}");
    let _ = writeln!(
        out,
        "layout {} {} {} {}",
        layout.rows(),
        layout.cols(),
        layout.radix(),
        layout.pitch_mm()
    );
    for (r, kind) in layout.kinds() {
        match kind {
            NodeKind::Cores { count } => {
                let _ = writeln!(out, "kind {r} cores {count}");
            }
            NodeKind::CoresAndMemory {
                cores,
                memory_controllers,
            } => {
                let _ = writeln!(out, "kind {r} cores_mem {cores} {memory_controllers}");
            }
        }
    }
    for (a, b) in topo.links() {
        let _ = writeln!(out, "link {a} {b}");
    }
    out
}

/// Parse a topology from the text format.
pub fn from_text(text: &str) -> Result<Topology, String> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    let header = lines.next().ok_or("empty input")?;
    if header != "netsmith-topology v1" {
        return Err(format!("unsupported header: {header}"));
    }
    let mut name = String::from("unnamed");
    let mut class: Option<LinkClass> = None;
    let mut rows = 0usize;
    let mut cols = 0usize;
    let mut radix = 0usize;
    let mut pitch = 4.0f64;
    let mut kinds: Vec<(usize, NodeKind)> = Vec::new();
    let mut links: Vec<(usize, usize)> = Vec::new();

    for line in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("name") => {
                name = parts.collect::<Vec<_>>().join(" ");
            }
            Some("class") => {
                class = Some(match parts.next().ok_or("class missing value")? {
                    "small" => LinkClass::Small,
                    "medium" => LinkClass::Medium,
                    "large" => LinkClass::Large,
                    "custom" => {
                        let dx: usize = parse(parts.next(), "custom dx")?;
                        let dy: usize = parse(parts.next(), "custom dy")?;
                        LinkClass::Custom(LinkSpan::new(dx, dy))
                    }
                    other => return Err(format!("unknown class {other}")),
                });
            }
            Some("layout") => {
                rows = parse(parts.next(), "layout rows")?;
                cols = parse(parts.next(), "layout cols")?;
                radix = parse(parts.next(), "layout radix")?;
                pitch = parse(parts.next(), "layout pitch")?;
            }
            Some("kind") => {
                let r: usize = parse(parts.next(), "kind router")?;
                let kind = match parts.next() {
                    Some("cores") => NodeKind::Cores {
                        count: parse(parts.next(), "core count")?,
                    },
                    Some("cores_mem") => NodeKind::CoresAndMemory {
                        cores: parse(parts.next(), "core count")?,
                        memory_controllers: parse(parts.next(), "mc count")?,
                    },
                    other => return Err(format!("unknown kind {other:?}")),
                };
                kinds.push((r, kind));
            }
            Some("link") => {
                let a: usize = parse(parts.next(), "link src")?;
                let b: usize = parse(parts.next(), "link dst")?;
                links.push((a, b));
            }
            Some(other) => return Err(format!("unknown directive {other}")),
            None => {}
        }
    }

    if rows == 0 || cols == 0 {
        return Err("missing layout directive".into());
    }
    if kinds.len() != rows * cols {
        return Err(format!(
            "expected {} kind entries, found {}",
            rows * cols,
            kinds.len()
        ));
    }
    kinds.sort_by_key(|(r, _)| *r);
    let layout = Layout::new(
        rows,
        cols,
        kinds.into_iter().map(|(_, k)| k).collect(),
        radix,
    )
    .with_pitch_mm(pitch);
    let class = class.ok_or("missing class directive")?;
    let n = layout.num_routers();
    for &(a, b) in &links {
        if a >= n || b >= n {
            return Err(format!("link {a}->{b} out of range for {n} routers"));
        }
    }
    Ok(Topology::from_directed_links(name, layout, class, &links))
}

fn parse<T: std::str::FromStr>(value: Option<&str>, what: &str) -> Result<T, String> {
    value
        .ok_or_else(|| format!("{what} missing"))?
        .parse()
        .map_err(|_| format!("{what} unparsable"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert;
    use crate::metrics;

    #[test]
    fn round_trip_preserves_structure() {
        let original = expert::kite_large(&Layout::noi_4x5());
        let text = to_text(&original);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.name(), original.name());
        assert_eq!(parsed.class(), original.class());
        assert_eq!(parsed.num_directed_links(), original.num_directed_links());
        assert_eq!(
            metrics::average_hops(&parsed),
            metrics::average_hops(&original)
        );
        for (a, b) in original.links() {
            assert!(parsed.has_link(a, b));
        }
    }

    #[test]
    fn round_trip_preserves_custom_class_and_asymmetry() {
        let layout = Layout::interposer_grid(2, 3, 3);
        let mut t = Topology::empty("asym", layout, LinkClass::Custom(LinkSpan::new(2, 1)));
        t.add_link(0, 1);
        t.add_link(1, 2);
        t.add_link(2, 0);
        let parsed = from_text(&to_text(&t)).unwrap();
        assert!(!parsed.is_symmetric());
        assert_eq!(parsed.class(), t.class());
        assert_eq!(parsed.num_directed_links(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_text("").is_err());
        assert!(from_text("garbage header").is_err());
        assert!(from_text("netsmith-topology v1\nclass small").is_err());
        let bad_link = "netsmith-topology v1\nname x\nclass small\nlayout 2 2 4 4.0\n\
            kind 0 cores 4\nkind 1 cores 4\nkind 2 cores 4\nkind 3 cores 4\nlink 0 9";
        assert!(from_text(bad_link).is_err());
    }

    #[test]
    fn kind_counts_are_validated() {
        let missing_kind =
            "netsmith-topology v1\nname x\nclass small\nlayout 2 2 4 4.0\nkind 0 cores 4";
        assert!(from_text(missing_kind).is_err());
    }
}
