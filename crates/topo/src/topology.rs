//! Directed NoI topology over a router [`Layout`].
//!
//! A topology is the connectivity map `M` from the paper's MIP formulation:
//! a boolean matrix in which `M[i][j]` is set when a unidirectional link
//! connects router `i` to router `j`.  NetSmith permits *asymmetric* links
//! (the outgoing half of a full-duplex link may terminate at a different
//! router than the incoming half), so the adjacency is directed.  A
//! symmetric (bidirectional) link is simply the pair `M[i][j]` and
//! `M[j][i]`.

use crate::layout::{Layout, RouterId};
use crate::linkclass::{LinkClass, LinkSpan};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when validating a topology against its layout and link
/// class constraints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyError {
    /// A router exceeds the layout's radix on outgoing links.
    OutRadixExceeded {
        router: RouterId,
        degree: usize,
        radix: usize,
    },
    /// A router exceeds the layout's radix on incoming links.
    InRadixExceeded {
        router: RouterId,
        degree: usize,
        radix: usize,
    },
    /// A link is longer than the link class allows.
    LinkTooLong {
        from: RouterId,
        to: RouterId,
        span: LinkSpan,
    },
    /// A self-link was present.
    SelfLink { router: RouterId },
    /// The directed graph is not strongly connected.
    NotConnected { unreachable_pairs: usize },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::OutRadixExceeded {
                router,
                degree,
                radix,
            } => write!(
                f,
                "router {router} has out-degree {degree} exceeding radix {radix}"
            ),
            TopologyError::InRadixExceeded {
                router,
                degree,
                radix,
            } => write!(
                f,
                "router {router} has in-degree {degree} exceeding radix {radix}"
            ),
            TopologyError::LinkTooLong { from, to, span } => {
                write!(f, "link {from}->{to} spans {span} beyond the class limit")
            }
            TopologyError::SelfLink { router } => write!(f, "router {router} has a self link"),
            TopologyError::NotConnected { unreachable_pairs } => {
                write!(
                    f,
                    "topology is not strongly connected ({unreachable_pairs} unreachable pairs)"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A directed interposer network topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name ("Kite-Large", "NS-LatOp-medium", …).
    name: String,
    layout: Layout,
    /// Link-length class the topology was designed under.
    class: LinkClass,
    /// Row-major `n x n` adjacency: `adj[i * n + j]` is true when a link
    /// runs from router `i` to router `j`.
    adj: Vec<bool>,
}

impl Topology {
    /// Create an empty (link-free) topology.
    pub fn empty(name: impl Into<String>, layout: Layout, class: LinkClass) -> Self {
        let n = layout.num_routers();
        Topology {
            name: name.into(),
            layout,
            class,
            adj: vec![false; n * n],
        }
    }

    /// Build a topology from an explicit list of directed links.
    pub fn from_directed_links(
        name: impl Into<String>,
        layout: Layout,
        class: LinkClass,
        links: &[(RouterId, RouterId)],
    ) -> Self {
        let mut t = Topology::empty(name, layout, class);
        for &(i, j) in links {
            t.add_link(i, j);
        }
        t
    }

    /// Build a topology from an explicit list of bidirectional links: each
    /// pair adds both directions.
    pub fn from_bidirectional_links(
        name: impl Into<String>,
        layout: Layout,
        class: LinkClass,
        links: &[(RouterId, RouterId)],
    ) -> Self {
        let mut t = Topology::empty(name, layout, class);
        for &(i, j) in links {
            t.add_bidirectional(i, j);
        }
        t
    }

    /// Topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the topology (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The router layout this topology is defined over.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Link-length class.
    pub fn class(&self) -> LinkClass {
        self.class
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.layout.num_routers()
    }

    #[inline]
    fn idx(&self, i: RouterId, j: RouterId) -> usize {
        i * self.num_routers() + j
    }

    /// Whether a directed link `i -> j` exists.
    #[inline]
    pub fn has_link(&self, i: RouterId, j: RouterId) -> bool {
        self.adj[self.idx(i, j)]
    }

    /// Add a directed link (idempotent).
    pub fn add_link(&mut self, i: RouterId, j: RouterId) {
        assert!(i != j, "self links are not allowed");
        let idx = self.idx(i, j);
        self.adj[idx] = true;
    }

    /// Remove a directed link (idempotent).
    pub fn remove_link(&mut self, i: RouterId, j: RouterId) {
        let idx = self.idx(i, j);
        self.adj[idx] = false;
    }

    /// Add both directions of a link.
    pub fn add_bidirectional(&mut self, i: RouterId, j: RouterId) {
        self.add_link(i, j);
        self.add_link(j, i);
    }

    /// Toggle a directed link and return its new state.
    pub fn toggle_link(&mut self, i: RouterId, j: RouterId) -> bool {
        assert!(i != j);
        let idx = self.idx(i, j);
        self.adj[idx] = !self.adj[idx];
        self.adj[idx]
    }

    /// Iterate over all directed links `(i, j)`.
    pub fn links(&self) -> impl Iterator<Item = (RouterId, RouterId)> + '_ {
        let n = self.num_routers();
        (0..n).flat_map(move |i| {
            (0..n)
                .filter(move |&j| self.has_link(i, j))
                .map(move |j| (i, j))
        })
    }

    /// Total number of directed links.
    pub fn num_directed_links(&self) -> usize {
        self.adj.iter().filter(|&&b| b).count()
    }

    /// Number of "physical" links: a bidirectional pair counts as one full
    /// duplex link, a lone unidirectional link also occupies one physical
    /// channel in each direction budget.  This matches how the paper counts
    /// links in Table II (the hardware resource usage of asymmetric
    /// topologies equals that of symmetric ones).
    pub fn num_links(&self) -> usize {
        let n = self.num_routers();
        let mut count = 0usize;
        let mut singles = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let a = self.has_link(i, j);
                let b = self.has_link(j, i);
                if a && b {
                    count += 1;
                } else if a || b {
                    singles += 1;
                }
            }
        }
        // Two opposite unidirectional links elsewhere use the same wiring
        // budget as one full-duplex link; count unpaired halves in pairs,
        // rounding up.
        count + singles.div_ceil(2)
    }

    /// Out-degree of a router.
    pub fn out_degree(&self, i: RouterId) -> usize {
        let n = self.num_routers();
        (0..n).filter(|&j| self.has_link(i, j)).count()
    }

    /// In-degree of a router.
    pub fn in_degree(&self, j: RouterId) -> usize {
        let n = self.num_routers();
        (0..n).filter(|&i| self.has_link(i, j)).count()
    }

    /// Outgoing neighbours of a router.
    pub fn neighbours_out(&self, i: RouterId) -> Vec<RouterId> {
        let n = self.num_routers();
        (0..n).filter(|&j| self.has_link(i, j)).collect()
    }

    /// Incoming neighbours of a router.
    pub fn neighbours_in(&self, j: RouterId) -> Vec<RouterId> {
        let n = self.num_routers();
        (0..n).filter(|&i| self.has_link(i, j)).collect()
    }

    /// True when every link is paired with its reverse.
    pub fn is_symmetric(&self) -> bool {
        let n = self.num_routers();
        for i in 0..n {
            for j in 0..n {
                if self.has_link(i, j) != self.has_link(j, i) {
                    return false;
                }
            }
        }
        true
    }

    /// Total wire length of all links in millimetres (each full-duplex /
    /// paired link counted once, unpaired directed links counted once).
    pub fn total_wire_length_mm(&self) -> f64 {
        let n = self.num_routers();
        let mut total = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let fwd = self.has_link(i, j);
                let rev = self.has_link(j, i);
                if fwd || rev {
                    // A duplex pair shares the same physical route and an
                    // unpaired link still needs its own wire, so either way
                    // the pair contributes exactly one wire run.
                    total += self.layout.distance_mm(i, j);
                }
            }
        }
        total
    }

    /// Histogram of link spans, keyed by canonical `(dx, dy)`, counting each
    /// undirected router pair that is connected in at least one direction.
    pub fn link_span_histogram(&self) -> std::collections::BTreeMap<(usize, usize), usize> {
        let n = self.num_routers();
        let mut hist = std::collections::BTreeMap::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if self.has_link(i, j) || self.has_link(j, i) {
                    let (dx, dy) = self.layout.span(i, j);
                    let key = if dx >= dy { (dx, dy) } else { (dy, dx) };
                    *hist.entry(key).or_insert(0) += 1;
                }
            }
        }
        hist
    }

    /// Validate the topology against radix, link-length and connectivity
    /// constraints.  Returns the first violation found.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let n = self.num_routers();
        let radix = self.layout.radix();
        for i in 0..n {
            if self.has_link(i, i) {
                return Err(TopologyError::SelfLink { router: i });
            }
            let out = self.out_degree(i);
            if out > radix {
                return Err(TopologyError::OutRadixExceeded {
                    router: i,
                    degree: out,
                    radix,
                });
            }
            let inn = self.in_degree(i);
            if inn > radix {
                return Err(TopologyError::InRadixExceeded {
                    router: i,
                    degree: inn,
                    radix,
                });
            }
        }
        for (i, j) in self.links() {
            let (dx, dy) = self.layout.span(i, j);
            let span = LinkSpan::new(dx, dy);
            if !self.class.allows(span) {
                return Err(TopologyError::LinkTooLong {
                    from: i,
                    to: j,
                    span,
                });
            }
        }
        let unreachable = crate::metrics::unreachable_pairs(self);
        if unreachable > 0 {
            return Err(TopologyError::NotConnected {
                unreachable_pairs: unreachable,
            });
        }
        Ok(())
    }

    /// True if the topology satisfies all structural constraints.
    pub fn is_valid(&self) -> bool {
        self.validate().is_ok()
    }

    /// Remaining outgoing radix budget at router `i`.
    pub fn free_out_ports(&self, i: RouterId) -> usize {
        self.layout.radix().saturating_sub(self.out_degree(i))
    }

    /// Remaining incoming radix budget at router `j`.
    pub fn free_in_ports(&self, j: RouterId) -> usize {
        self.layout.radix().saturating_sub(self.in_degree(j))
    }

    /// The connectivity matrix as a flat row-major boolean vector (length
    /// `n*n`), matching the MIP variable `M`.
    pub fn adjacency(&self) -> &[bool] {
        &self.adj
    }

    /// Replace the adjacency wholesale (must have length `n*n`).
    pub fn set_adjacency(&mut self, adj: Vec<bool>) {
        assert_eq!(adj.len(), self.adj.len());
        self.adj = adj;
        let n = self.num_routers();
        for i in 0..n {
            self.adj[i * n + i] = false;
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} class, {} routers, {} links]",
            self.name,
            self.class.name(),
            self.num_routers(),
            self.num_links()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    fn tiny() -> Topology {
        // 2x2 ring.
        let layout = Layout::interposer_grid(2, 2, 4);
        Topology::from_bidirectional_links(
            "ring4",
            layout,
            LinkClass::Small,
            &[(0, 1), (1, 3), (3, 2), (2, 0)],
        )
    }

    #[test]
    fn add_and_remove_links() {
        let mut t = Topology::empty("t", Layout::noi_4x5(), LinkClass::Small);
        assert_eq!(t.num_directed_links(), 0);
        t.add_link(0, 1);
        assert!(t.has_link(0, 1));
        assert!(!t.has_link(1, 0));
        t.add_bidirectional(1, 2);
        assert_eq!(t.num_directed_links(), 3);
        t.remove_link(0, 1);
        assert!(!t.has_link(0, 1));
    }

    #[test]
    fn ring_is_valid_and_symmetric() {
        let t = tiny();
        assert!(t.is_valid());
        assert!(t.is_symmetric());
        assert_eq!(t.num_links(), 4);
        assert_eq!(t.num_directed_links(), 8);
    }

    #[test]
    fn radix_violation_detected() {
        let layout = Layout::interposer_grid(2, 3, 1);
        let mut t = Topology::empty("overload", layout, LinkClass::Large);
        t.add_link(0, 1);
        t.add_link(0, 2);
        assert!(matches!(
            t.validate(),
            Err(TopologyError::OutRadixExceeded { router: 0, .. })
        ));
    }

    #[test]
    fn link_length_violation_detected() {
        let layout = Layout::noi_4x5();
        let mut t = Topology::empty("long", layout, LinkClass::Small);
        // (0,0) to (0,2) spans (2,0): not allowed in Small.
        t.add_link(0, 2);
        assert!(matches!(
            t.validate(),
            Err(TopologyError::LinkTooLong { .. })
        ));
    }

    #[test]
    fn disconnection_detected() {
        let layout = Layout::interposer_grid(2, 2, 4);
        let t = Topology::from_bidirectional_links("disc", layout, LinkClass::Small, &[(0, 1)]);
        assert!(matches!(
            t.validate(),
            Err(TopologyError::NotConnected { .. })
        ));
    }

    #[test]
    fn unidirectional_links_break_symmetry() {
        let mut t = tiny();
        t.remove_link(1, 0);
        assert!(!t.is_symmetric());
    }

    #[test]
    fn degrees_and_neighbours_agree() {
        let t = tiny();
        for r in 0..t.num_routers() {
            assert_eq!(t.out_degree(r), t.neighbours_out(r).len());
            assert_eq!(t.in_degree(r), t.neighbours_in(r).len());
        }
    }

    #[test]
    fn span_histogram_counts_pairs_once() {
        let t = tiny();
        let hist = t.link_span_histogram();
        let total: usize = hist.values().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn free_ports_track_degree() {
        let mut t = Topology::empty("t", Layout::noi_4x5(), LinkClass::Large);
        assert_eq!(t.free_out_ports(0), 4);
        t.add_link(0, 1);
        t.add_link(0, 5);
        assert_eq!(t.free_out_ports(0), 2);
        assert_eq!(t.free_in_ports(1), 3);
    }

    #[test]
    fn serde_round_trip() {
        let t = tiny();
        let json = serde_json_round_trip(&t);
        assert_eq!(json.name(), t.name());
        assert_eq!(json.num_directed_links(), t.num_directed_links());
    }

    // Minimal round trip helper without depending on serde_json: use bincode-ish
    // manual check via serde's derived PartialEq after a clone. We emulate a
    // serialization round trip through the `serde` Value-free path by cloning.
    fn serde_json_round_trip(t: &Topology) -> Topology {
        // The project intentionally avoids pulling in serde_json; the derive
        // is exercised by downstream crates. Here we simply clone.
        t.clone()
    }
}
