//! A minimal JSON tree, printer and parser.
//!
//! The workspace's serde dependency is an offline no-op shim (see
//! `vendor/README.md`), so — like [`crate::serialize`] — the workspace
//! carries its own small text codec.  It lives in the base crate so both
//! the experiment API (`netsmith-exp`, which re-exports it) and the trace
//! format (`netsmith-trace`) can share one tree.  [`Json`] covers the
//! full JSON data model; numbers are `f64` (integers round-trip exactly up
//! to 2^53, far beyond anything a spec stores) and are printed with Rust's
//! shortest-round-trip formatting so `parse(print(x)) == x` bit-for-bit.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered key/value list (insertion order is preserved,
    /// which keeps printed specs diffable).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member lookup that errors with the missing key's name.
    pub fn require(&self, key: &str) -> Result<&Json, String> {
        self.get(key).ok_or_else(|| format!("missing key {key:?}"))
    }

    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    pub fn as_u64(&self) -> Result<u64, String> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Ok(n as u64)
        } else {
            Err(format!("expected unsigned integer, got {n}"))
        }
    }

    pub fn as_usize(&self) -> Result<usize, String> {
        Ok(self.as_u64()? as usize)
    }

    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }

    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest string that round-trips.
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; specs never store them, but keep
                    // the printer total.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("invalid number {text:?}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
        let mut chars = rest.char_indices();
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some((_, '"')) => {
                *pos += 1;
                return Ok(out);
            }
            Some((_, '\\')) => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some((_, c)) => {
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("fig06 \"quick\"\n".into())),
            (
                "loads".into(),
                Json::Arr(vec![Json::Num(0.05), Json::Num(0.3)]),
            ),
            ("quick".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("evals".into(), Json::Num(30_000.0)),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-12, 123_456.789, f64::MIN_POSITIVE] {
            let text = Json::Num(v).to_string();
            match Json::parse(&text).unwrap() {
                Json::Num(back) => assert_eq!(back.to_bits(), v.to_bits(), "{v}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"a\" : [ 1 , \"b\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            parsed,
            Json::Obj(vec![(
                "a".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("bA\n".into())])
            )])
        );
    }
}
