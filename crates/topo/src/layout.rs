//! Physical placement of interposer routers.
//!
//! NetSmith takes the router layout as an *input*: the number of routers,
//! their physical grid positions on the interposer, and what is attached to
//! each router (cores or memory controllers).  The paper's primary layout is
//! a misaligned 4-row by 5-column grid of twenty interposer routers: the
//! middle three columns concentrate four cores each, while the left-most and
//! right-most columns concentrate two cores plus two memory controllers.
//! Scalability studies use 6x5 (30 routers) and 8x6 (48 routers) grids.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an interposer router within a [`Layout`].
///
/// Routers are numbered row-major: router `r` sits at row `r / cols`,
/// column `r % cols`, matching the numbering used in the paper's Figure 4.
pub type RouterId = usize;

/// What a given interposer router concentrates (connects to vertically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Router concentrating compute cores only (the middle columns of the
    /// 4x5 layout concentrate four cores each).
    Cores { count: u8 },
    /// Router concentrating a mix of cores and memory controllers (the
    /// left-most/right-most columns of the 4x5 layout: two cores + two MCs).
    CoresAndMemory { cores: u8, memory_controllers: u8 },
}

impl NodeKind {
    /// Number of cores attached to the router.
    pub fn cores(&self) -> u8 {
        match *self {
            NodeKind::Cores { count } => count,
            NodeKind::CoresAndMemory { cores, .. } => cores,
        }
    }

    /// Number of memory controllers attached to the router.
    pub fn memory_controllers(&self) -> u8 {
        match *self {
            NodeKind::Cores { .. } => 0,
            NodeKind::CoresAndMemory {
                memory_controllers, ..
            } => memory_controllers,
        }
    }

    /// Total local (injection/ejection) ports required by the attached
    /// endpoints.
    pub fn local_ports(&self) -> u8 {
        self.cores() + self.memory_controllers()
    }

    /// True if at least one memory controller hangs off this router.
    pub fn has_memory(&self) -> bool {
        self.memory_controllers() > 0
    }
}

/// Physical layout of the interposer routers: a `rows x cols` grid with a
/// [`NodeKind`] per router and a network-port radix budget per router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    rows: usize,
    cols: usize,
    kinds: Vec<NodeKind>,
    /// Maximum number of *network* ports (links to other interposer
    /// routers) per router, in each direction.  The paper's cost-neutral
    /// comparison keeps this equal to the radix the expert topologies use.
    radix: usize,
    /// Physical pitch between adjacent router columns/rows in millimetres,
    /// used by the power/area model to derive wire lengths.
    pitch_mm: f64,
}

impl Layout {
    /// Create a layout over a `rows x cols` grid with an explicit kind per
    /// router (row-major order) and a per-router network radix.
    pub fn new(rows: usize, cols: usize, kinds: Vec<NodeKind>, radix: usize) -> Self {
        assert_eq!(
            kinds.len(),
            rows * cols,
            "layout requires one NodeKind per router"
        );
        assert!(radix >= 1, "radix must be at least 1");
        Layout {
            rows,
            cols,
            kinds,
            radix,
            pitch_mm: 4.0,
        }
    }

    /// The paper's primary 20-router, 4-row x 5-column interposer layout.
    ///
    /// Middle three columns: four cores per router.  Left-most and
    /// right-most columns: two cores and two memory controllers per router.
    /// The default network radix of 4 matches the expert-designed baselines
    /// (cost-neutral comparison in the paper's Figure 1).
    pub fn noi_4x5() -> Self {
        Self::interposer_grid(4, 5, 4)
    }

    /// The 30-router, 6-row x 5-column scalability layout from Table II.
    pub fn noi_6x5() -> Self {
        Self::interposer_grid(6, 5, 4)
    }

    /// The 48-router, 8-row x 6-column scalability layout from Figure 11.
    pub fn noi_8x6() -> Self {
        Self::interposer_grid(8, 6, 4)
    }

    /// Generic interposer grid following the paper's convention: edge
    /// columns host memory controllers, interior columns host cores only.
    pub fn interposer_grid(rows: usize, cols: usize, radix: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "interposer grid needs at least 2x2");
        let mut kinds = Vec::with_capacity(rows * cols);
        for _r in 0..rows {
            for c in 0..cols {
                if c == 0 || c == cols - 1 {
                    kinds.push(NodeKind::CoresAndMemory {
                        cores: 2,
                        memory_controllers: 2,
                    });
                } else {
                    kinds.push(NodeKind::Cores { count: 4 });
                }
            }
        }
        Layout::new(rows, cols, kinds, radix)
    }

    /// Number of rows in the router grid.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the router grid.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of interposer routers.
    pub fn num_routers(&self) -> usize {
        self.rows * self.cols
    }

    /// Per-router network radix (maximum in-degree and out-degree).
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Return a copy of this layout with a different network radix.
    pub fn with_radix(mut self, radix: usize) -> Self {
        assert!(radix >= 1);
        self.radix = radix;
        self
    }

    /// Physical pitch between adjacent routers (mm).
    pub fn pitch_mm(&self) -> f64 {
        self.pitch_mm
    }

    /// Return a copy of this layout with a different physical pitch.
    pub fn with_pitch_mm(mut self, pitch_mm: f64) -> Self {
        assert!(pitch_mm > 0.0);
        self.pitch_mm = pitch_mm;
        self
    }

    /// Kind of router `r`.
    pub fn kind(&self, r: RouterId) -> NodeKind {
        self.kinds[r]
    }

    /// Iterator over `(RouterId, NodeKind)`.
    pub fn kinds(&self) -> impl Iterator<Item = (RouterId, NodeKind)> + '_ {
        self.kinds.iter().copied().enumerate()
    }

    /// Grid position `(row, col)` of router `r`.
    pub fn position(&self, r: RouterId) -> (usize, usize) {
        assert!(r < self.num_routers(), "router id {r} out of range");
        (r / self.cols, r % self.cols)
    }

    /// Router at grid position `(row, col)`.
    pub fn router_at(&self, row: usize, col: usize) -> RouterId {
        assert!(row < self.rows && col < self.cols, "position out of range");
        row * self.cols + col
    }

    /// Absolute X/Y span (in grid hops) between two routers.
    pub fn span(&self, a: RouterId, b: RouterId) -> (usize, usize) {
        let (ra, ca) = self.position(a);
        let (rb, cb) = self.position(b);
        (ca.abs_diff(cb), ra.abs_diff(rb))
    }

    /// Euclidean distance between two routers in millimetres, used for wire
    /// delay/energy estimates.
    pub fn distance_mm(&self, a: RouterId, b: RouterId) -> f64 {
        let (dx, dy) = self.span(a, b);
        ((dx * dx + dy * dy) as f64).sqrt() * self.pitch_mm
    }

    /// All routers that host at least one memory controller.
    pub fn memory_routers(&self) -> Vec<RouterId> {
        self.kinds()
            .filter(|(_, k)| k.has_memory())
            .map(|(r, _)| r)
            .collect()
    }

    /// All routers that host at least one core.
    pub fn core_routers(&self) -> Vec<RouterId> {
        self.kinds()
            .filter(|(_, k)| k.cores() > 0)
            .map(|(r, _)| r)
            .collect()
    }

    /// Total number of cores across the system (64 for the 4x5 layout used
    /// in the paper's full-system evaluation).
    pub fn total_cores(&self) -> usize {
        self.kinds.iter().map(|k| k.cores() as usize).sum()
    }

    /// Total number of memory controllers (16 for the 4x5 layout).
    pub fn total_memory_controllers(&self) -> usize {
        self.kinds
            .iter()
            .map(|k| k.memory_controllers() as usize)
            .sum()
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} interposer layout ({} routers, radix {}, {} cores, {} MCs)",
            self.rows,
            self.cols,
            self.num_routers(),
            self.radix,
            self.total_cores(),
            self.total_memory_controllers()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noi_4x5_has_twenty_routers() {
        let l = Layout::noi_4x5();
        assert_eq!(l.num_routers(), 20);
        assert_eq!(l.rows(), 4);
        assert_eq!(l.cols(), 5);
        assert_eq!(l.radix(), 4);
    }

    #[test]
    fn noi_4x5_core_and_memory_counts_match_paper() {
        // 64 cores across 4 chiplets, 16 memory controllers (Table IV).
        let l = Layout::noi_4x5();
        assert_eq!(l.total_cores(), 4 * 3 * 4 + 4 * 2 * 2);
        assert_eq!(l.total_cores(), 64);
        assert_eq!(l.total_memory_controllers(), 16);
        assert_eq!(l.memory_routers().len(), 8);
    }

    #[test]
    fn positions_round_trip() {
        let l = Layout::noi_4x5();
        for r in 0..l.num_routers() {
            let (row, col) = l.position(r);
            assert_eq!(l.router_at(row, col), r);
        }
    }

    #[test]
    fn span_is_symmetric() {
        let l = Layout::noi_6x5();
        for a in 0..l.num_routers() {
            for b in 0..l.num_routers() {
                assert_eq!(l.span(a, b), l.span(b, a));
            }
        }
    }

    #[test]
    fn edge_columns_host_memory() {
        let l = Layout::noi_4x5();
        for (r, k) in l.kinds() {
            let (_, col) = l.position(r);
            if col == 0 || col == 4 {
                assert!(k.has_memory());
                assert_eq!(k.cores(), 2);
            } else {
                assert!(!k.has_memory());
                assert_eq!(k.cores(), 4);
            }
        }
    }

    #[test]
    fn scalability_layouts() {
        assert_eq!(Layout::noi_6x5().num_routers(), 30);
        assert_eq!(Layout::noi_8x6().num_routers(), 48);
    }

    #[test]
    fn distance_is_scaled_by_pitch() {
        let l = Layout::noi_4x5().with_pitch_mm(2.0);
        let a = l.router_at(0, 0);
        let b = l.router_at(0, 3);
        assert!((l.distance_mm(a, b) - 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn position_out_of_range_panics() {
        let l = Layout::noi_4x5();
        l.position(20);
    }
}
