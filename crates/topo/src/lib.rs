//! # netsmith-topo
//!
//! Router layouts, link-length classes, network-on-interposer (NoI)
//! topologies and the analytical metrics used throughout the NetSmith
//! reproduction (average hop count, diameter, bisection bandwidth, sparsest
//! cut, and cut-/occupancy-based throughput bounds).
//!
//! The paper ("NetSmith: An Optimization Framework for Machine-Discovered
//! Network Topologies", ICPP 2024) evaluates machine-discovered topologies
//! against a set of expert-designed interposer networks (Mesh, Folded Torus,
//! the Kite family, Butter Donut, Double Butterfly) and against topologies
//! produced by a prior MILP synthesis flow (LPBT).  This crate provides:
//!
//! * [`Layout`] — the physical placement of interposer routers (e.g. the
//!   4x5 grid used for the 20-router evaluation) together with the node
//!   kinds (core-concentrated routers vs. memory-controller routers).
//! * [`LinkClass`] — the Kite-style link-length taxonomy (small = (1,1),
//!   medium = (2,0), large = (2,1)) that constrains which router pairs may
//!   be connected, and the per-class NoI clock frequencies.
//! * [`Topology`] — a directed multigraph over the routers of a layout,
//!   with radix/length/connectivity validation.
//! * [`metrics`], [`cuts`], [`bounds`] — the analytical evaluation used by
//!   the paper's Figure 1 and Table II.
//! * [`analysis`] — the cached [`TopoAnalysis`] bundle shared by all
//!   synthesis objective terms, with exact delta evaluation for the
//!   annealer's single-link add/remove moves.
//! * [`resilience`] — critical-link detection and masked-connectivity
//!   helpers backing the `netsmith-fault` subsystem and the FaultOp
//!   synthesis objective.
//! * [`expert`] — reconstructions of the expert-designed baselines.
//! * [`traffic`] — traffic patterns (uniform random, shuffle, …) expressed
//!   as demand matrices so objectives can be traffic-weighted.

pub mod analysis;
pub mod bounds;
pub mod cuts;
pub mod error;
pub mod expert;
pub mod json;
pub mod layout;
pub mod linkclass;
pub mod metrics;
pub mod resilience;
pub mod serialize;
pub mod topology;
pub mod traffic;
pub mod viz;

pub use analysis::TopoAnalysis;
pub use bounds::{cut_throughput_bound, occupancy_throughput_bound, ThroughputBounds};
pub use cuts::{bisection_bandwidth, sparsest_cut, CutReport};
pub use error::PipelineError;
pub use layout::{Layout, NodeKind, RouterId};
pub use linkclass::{LinkClass, LinkSpan};
pub use metrics::{all_pairs_hops, average_hops, diameter, is_strongly_connected, TopologyMetrics};
pub use resilience::{
    critical_link_pairs, duplex_pairs, is_strongly_connected_among, min_directional_degree,
    unreachable_pairs_among,
};
pub use topology::{Topology, TopologyError};
pub use traffic::{DemandMatrix, TrafficPattern};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::bounds::ThroughputBounds;
    pub use crate::cuts::CutReport;
    pub use crate::error::PipelineError;
    pub use crate::layout::{Layout, NodeKind, RouterId};
    pub use crate::linkclass::{LinkClass, LinkSpan};
    pub use crate::metrics::TopologyMetrics;
    pub use crate::topology::Topology;
    pub use crate::traffic::{DemandMatrix, TrafficPattern};
}
