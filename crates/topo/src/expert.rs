//! Expert-designed baseline topologies.
//!
//! The paper compares NetSmith against the expert-designed interposer
//! networks from the Kite line of work — Mesh, Folded Torus, Kite
//! (small/medium/large), Butter Donut, Double Butterfly — and against the
//! LPBT topologies produced by the prior MILP NoC-synthesis flow of
//! Srinivasan et al.  The exact link lists of the Kite-family topologies are
//! not published in the NetSmith text, so this module provides *documented
//! reconstructions*:
//!
//! * `mesh` and `folded_torus` follow their standard definitions exactly.
//! * `double_butterfly` and `butter_donut` follow the published structural
//!   descriptions (row connectivity plus butterfly-style long links /
//!   torus-plus-diagonal hybrids) at the paper's radix budget.
//! * `kite_*` are produced by a deterministic expert-style greedy
//!   construction: starting from a Hamiltonian ring of short links, the
//!   builder repeatedly adds the symmetric (bidirectional) link allowed by
//!   the class that most reduces total hop count, exactly the kind of
//!   latency-driven refinement the Kite designers describe.  The resulting
//!   metrics land close to the paper's Table II values (38–40 links,
//!   diameter 4–5, average hops ≈ 2.3, bisection ≈ 8).
//! * `lpbt_hops` / `lpbt_power` reproduce the *qualitative* character the
//!   paper reports for LPBT: sparse, poorly cut-provisioned networks that
//!   were synthesized for an objective (power/resource) that does not match
//!   general-purpose traffic, yielding low bisection bandwidth and higher
//!   average hops.
//!
//! Every substitution is also recorded in `DESIGN.md`.

use crate::layout::{Layout, RouterId};
use crate::linkclass::{LinkClass, LinkSpan};
use crate::metrics;
use crate::topology::Topology;

/// Standard 2-D mesh over the router grid (link class small; only (1,0) and
/// (0,1) links are used).
pub fn mesh(layout: &Layout) -> Topology {
    let mut t = Topology::empty("Mesh", layout.clone(), LinkClass::Small);
    let (rows, cols) = (layout.rows(), layout.cols());
    for r in 0..rows {
        for c in 0..cols {
            let here = layout.router_at(r, c);
            if c + 1 < cols {
                t.add_bidirectional(here, layout.router_at(r, c + 1));
            }
            if r + 1 < rows {
                t.add_bidirectional(here, layout.router_at(r + 1, c));
            }
        }
    }
    t
}

/// Folded torus: every row and every column forms a folded ring, so all
/// links span at most two grid hops (medium class).  This matches the
/// 40-link medium-category Folded Torus of Table II for the 4x5 layout.
pub fn folded_torus(layout: &Layout) -> Topology {
    let mut t = Topology::empty("FoldedTorus", layout.clone(), LinkClass::Medium);
    let (rows, cols) = (layout.rows(), layout.cols());
    // Folded ring over `k` positions: consecutive even nodes, consecutive
    // odd nodes, plus the two "fold" links at the ends.
    let folded_ring = |k: usize| -> Vec<(usize, usize)> {
        let mut links = Vec::new();
        if k < 2 {
            return links;
        }
        if k == 2 {
            links.push((0, 1));
            return links;
        }
        // 0-2-4-...  and 1-3-5-... chains
        let mut i = 0;
        while i + 2 < k {
            links.push((i, i + 2));
            i += 2;
        }
        let mut i = 1;
        while i + 2 < k {
            links.push((i, i + 2));
            i += 2;
        }
        // folds at both ends
        links.push((0, 1));
        let last_even = if (k - 1).is_multiple_of(2) {
            k - 1
        } else {
            k - 2
        };
        let last_odd = if (k - 1) % 2 == 1 { k - 1 } else { k - 2 };
        links.push((last_even, last_odd));
        links
    };
    for r in 0..rows {
        for (a, b) in folded_ring(cols) {
            t.add_bidirectional(layout.router_at(r, a), layout.router_at(r, b));
        }
    }
    for c in 0..cols {
        for (a, b) in folded_ring(rows) {
            t.add_bidirectional(layout.router_at(a, c), layout.router_at(b, c));
        }
    }
    t
}

/// Double Butterfly reconstruction: per-row paths, edge-column vertical
/// paths, and two butterfly stages of (2,0)/(2,1) links between column pairs
/// (0,2) and (2,4) that swap row bits, mirroring the published figures.
/// Large link class.
pub fn double_butterfly(layout: &Layout) -> Topology {
    let mut t = Topology::empty("DoubleButterfly", layout.clone(), LinkClass::Large);
    let (rows, cols) = (layout.rows(), layout.cols());
    // Row paths.
    for r in 0..rows {
        for c in 0..cols - 1 {
            t.add_bidirectional(layout.router_at(r, c), layout.router_at(r, c + 1));
        }
    }
    // Edge-column vertical paths.
    for c in [0, cols - 1] {
        for r in 0..rows - 1 {
            t.add_bidirectional(layout.router_at(r, c), layout.router_at(r + 1, c));
        }
    }
    // Butterfly stages: between columns (c, c+2) swap a row bit, staying
    // within the (2,1) length budget by pairing adjacent rows.
    let mut c = 0usize;
    while c + 2 < cols {
        for r in 0..rows {
            // Every stage pairs adjacent rows: the (2,1) length budget
            // collapses the usual per-stage bit rotation down to `r ^ 1`.
            let partner = r ^ 1;
            if partner < rows && r < partner {
                let a = layout.router_at(r, c);
                let b = layout.router_at(partner, c + 2);
                let a2 = layout.router_at(partner, c);
                let b2 = layout.router_at(r, c + 2);
                if t.free_out_ports(a) > 0 && t.free_in_ports(b) > 0 {
                    add_bidirectional_if_ports(&mut t, a, b);
                }
                if t.free_out_ports(a2) > 0 && t.free_in_ports(b2) > 0 {
                    add_bidirectional_if_ports(&mut t, a2, b2);
                }
            }
        }
        c += 2;
    }
    t
}

/// Butter Donut reconstruction: folded-torus rows (donut) plus diagonal
/// (2,1) "butterfly" links between alternating rows, within the large link
/// class and the radix budget.
pub fn butter_donut(layout: &Layout) -> Topology {
    let mut t = Topology::empty("ButterDonut", layout.clone(), LinkClass::Large);
    let (rows, cols) = (layout.rows(), layout.cols());
    // Folded rings along each row.
    let torus = folded_torus(layout);
    for r in 0..rows {
        for c1 in 0..cols {
            for c2 in (c1 + 1)..cols {
                let a = layout.router_at(r, c1);
                let b = layout.router_at(r, c2);
                if torus.has_link(a, b) {
                    t.add_bidirectional(a, b);
                }
            }
        }
    }
    // Vertical neighbour links on edge columns to keep rows stitched.
    for c in [0, cols - 1] {
        for r in 0..rows - 1 {
            add_bidirectional_if_ports(&mut t, layout.router_at(r, c), layout.router_at(r + 1, c));
        }
    }
    // Diagonal (2,1) links between adjacent rows.
    for r in 0..rows - 1 {
        for c in 0..cols {
            if (r + c) % 2 == 0 && c + 2 < cols {
                add_bidirectional_if_ports(
                    &mut t,
                    layout.router_at(r, c),
                    layout.router_at(r + 1, c + 2),
                );
            }
        }
    }
    // Stitch any remaining free ports with vertical neighbours so the
    // topology stays well connected.
    for c in 0..cols {
        for r in 0..rows - 1 {
            add_bidirectional_if_ports(&mut t, layout.router_at(r, c), layout.router_at(r + 1, c));
        }
    }
    t
}

/// Kite-style reconstruction for the small link class.
pub fn kite_small(layout: &Layout) -> Topology {
    kite(layout, LinkClass::Small).with_name("Kite-Small")
}

/// Kite-style reconstruction for the medium link class.
pub fn kite_medium(layout: &Layout) -> Topology {
    kite(layout, LinkClass::Medium).with_name("Kite-Medium")
}

/// Kite-style reconstruction for the large link class.
pub fn kite_large(layout: &Layout) -> Topology {
    kite(layout, LinkClass::Large).with_name("Kite-Large")
}

/// Deterministic expert-style construction used for the Kite
/// reconstructions: a Hamiltonian ring of unit links for connectivity,
/// greedily refined with the symmetric link (within the class and radix
/// budget) that most reduces total hop count.  Ties are broken towards
/// shorter physical links and lower router indices, keeping the result
/// deterministic and "regular looking".
pub fn kite(layout: &Layout, class: LinkClass) -> Topology {
    let mut t = Topology::empty(format!("Kite-{}", class.name()), layout.clone(), class);
    for (a, b) in hamiltonian_ring(layout) {
        t.add_bidirectional(a, b);
    }
    greedy_fill_symmetric(&mut t);
    t
}

/// LPBT-Hops reconstruction: a sparse, tree-like synthesized network with a
/// latency-oriented objective but no bandwidth provisioning (low bisection,
/// higher average hops than the expert networks).
pub fn lpbt_hops(layout: &Layout) -> Topology {
    let mut t = Topology::empty("LPBT-Hops", layout.clone(), LinkClass::Medium);
    let (rows, cols) = (layout.rows(), layout.cols());
    // Row paths.
    for r in 0..rows {
        for c in 0..cols - 1 {
            t.add_bidirectional(layout.router_at(r, c), layout.router_at(r, c + 1));
        }
    }
    // Vertical paths on the edge columns and the middle column only.
    let mid = cols / 2;
    for c in [0, mid, cols - 1] {
        for r in 0..rows - 1 {
            add_bidirectional_if_ports(&mut t, layout.router_at(r, c), layout.router_at(r + 1, c));
        }
    }
    // A couple of (2,0) shortcuts along the middle rows, echoing LPBT's
    // preference for reusing already-placed resources.
    for r in 0..rows {
        if r % 2 == 0 && cols > 4 {
            add_bidirectional_if_ports(&mut t, layout.router_at(r, 0), layout.router_at(r, 2));
            add_bidirectional_if_ports(
                &mut t,
                layout.router_at(r, cols - 3),
                layout.router_at(r, cols - 1),
            );
        }
    }
    t
}

/// LPBT-Power reconstruction: the most frugal connected network the flow
/// would produce when minimizing power — row paths plus two vertical spines.
pub fn lpbt_power(layout: &Layout) -> Topology {
    let mut t = Topology::empty("LPBT-Power", layout.clone(), LinkClass::Medium);
    let (rows, cols) = (layout.rows(), layout.cols());
    for r in 0..rows {
        for c in 0..cols - 1 {
            t.add_bidirectional(layout.router_at(r, c), layout.router_at(r, c + 1));
        }
    }
    for c in [0, cols - 1] {
        for r in 0..rows - 1 {
            add_bidirectional_if_ports(&mut t, layout.router_at(r, c), layout.router_at(r + 1, c));
        }
    }
    t
}

/// All expert baselines the paper plots for a layout, grouped as in
/// Figure 1: small = {Mesh, Kite-Small}, medium = {Folded Torus,
/// Kite-Medium, LPBT}, large = {Butter Donut, Double Butterfly, Kite-Large}.
pub fn all_baselines(layout: &Layout) -> Vec<Topology> {
    vec![
        mesh(layout),
        kite_small(layout),
        folded_torus(layout),
        kite_medium(layout),
        lpbt_hops(layout),
        lpbt_power(layout),
        butter_donut(layout),
        double_butterfly(layout),
        kite_large(layout),
    ]
}

/// The expert baselines belonging to one link-length class.
pub fn baselines_for_class(layout: &Layout, class: LinkClass) -> Vec<Topology> {
    match class {
        LinkClass::Small => vec![mesh(layout), kite_small(layout)],
        LinkClass::Medium => vec![
            folded_torus(layout),
            kite_medium(layout),
            lpbt_hops(layout),
            lpbt_power(layout),
        ],
        LinkClass::Large => vec![
            butter_donut(layout),
            double_butterfly(layout),
            kite_large(layout),
        ],
        LinkClass::Custom(_) => vec![mesh(layout)],
    }
}

/// A Hamiltonian ring over the grid using only unit-length links:
/// boustrophedon over columns `1..cols`, returning along column 0.
pub fn hamiltonian_ring(layout: &Layout) -> Vec<(RouterId, RouterId)> {
    let (rows, cols) = (layout.rows(), layout.cols());
    assert!(rows >= 2 && cols >= 2);
    let mut path: Vec<RouterId> = Vec::with_capacity(rows * cols);
    // Serpentine over columns 1..cols for each row, top to bottom.
    for r in 0..rows {
        let cols_iter: Vec<usize> = if r % 2 == 0 {
            (1..cols).collect()
        } else {
            (1..cols).rev().collect()
        };
        for c in cols_iter {
            path.push(layout.router_at(r, c));
        }
    }
    // Return along column 0, bottom to top.
    for r in (0..rows).rev() {
        path.push(layout.router_at(r, 0));
    }
    let mut links = Vec::with_capacity(path.len());
    for w in path.windows(2) {
        links.push((w[0], w[1]));
    }
    links.push((*path.last().unwrap(), path[0]));
    links
}

/// Add a bidirectional link only if both routers have a free incoming and
/// outgoing port and the link does not already exist.
fn add_bidirectional_if_ports(t: &mut Topology, a: RouterId, b: RouterId) -> bool {
    if a == b || t.has_link(a, b) || t.has_link(b, a) {
        return false;
    }
    if t.free_out_ports(a) == 0
        || t.free_in_ports(a) == 0
        || t.free_out_ports(b) == 0
        || t.free_in_ports(b) == 0
    {
        return false;
    }
    t.add_bidirectional(a, b);
    true
}

/// Greedily add the symmetric link that most reduces total hops until no
/// candidate improves the objective or no ports remain.
fn greedy_fill_symmetric(t: &mut Topology) {
    let layout = t.layout().clone();
    let class = t.class();
    let n = layout.num_routers();
    loop {
        let base = metrics::total_hops(t).unwrap_or(u64::MAX);
        let mut best: Option<(u64, usize, (RouterId, RouterId))> = None;
        for a in 0..n {
            for b in (a + 1)..n {
                if t.has_link(a, b) || t.has_link(b, a) {
                    continue;
                }
                let (dx, dy) = layout.span(a, b);
                if !class.allows(LinkSpan::new(dx, dy)) {
                    continue;
                }
                if t.free_out_ports(a) == 0
                    || t.free_in_ports(a) == 0
                    || t.free_out_ports(b) == 0
                    || t.free_in_ports(b) == 0
                {
                    continue;
                }
                t.add_bidirectional(a, b);
                let hops = metrics::total_hops(t).unwrap_or(u64::MAX);
                t.remove_link(a, b);
                t.remove_link(b, a);
                let span_len = dx + dy;
                let candidate = (hops, span_len, (a, b));
                if best
                    .as_ref()
                    .is_none_or(|cur| (hops, span_len, (a, b)) < *cur)
                {
                    best = Some(candidate);
                }
            }
        }
        match best {
            Some((hops, _, (a, b))) if hops < base => {
                t.add_bidirectional(a, b);
            }
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts;

    #[test]
    fn mesh_4x5_link_count() {
        let m = mesh(&Layout::noi_4x5());
        // 4 rows x 4 horizontal + 3 x 5 vertical = 31 bidirectional links.
        assert_eq!(m.num_links(), 31);
        assert!(m.is_valid());
        assert!(m.is_symmetric());
    }

    #[test]
    fn folded_torus_4x5_matches_table2_link_count() {
        let t = folded_torus(&Layout::noi_4x5());
        assert_eq!(t.num_links(), 40, "folded torus on 4x5 has 40 links");
        assert!(t.is_valid(), "{:?}", t.validate());
        assert!(cuts::bisection_bandwidth(&t) >= 8.0);
    }

    #[test]
    fn kite_constructions_are_valid_and_within_class() {
        let layout = Layout::noi_4x5();
        for topo in [
            kite_small(&layout),
            kite_medium(&layout),
            kite_large(&layout),
        ] {
            assert!(topo.is_valid(), "{}: {:?}", topo.name(), topo.validate());
            assert!(topo.is_symmetric());
            // Expert-style networks use most of the radix budget.
            assert!(
                topo.num_links() >= 30,
                "{} has {}",
                topo.name(),
                topo.num_links()
            );
        }
    }

    #[test]
    fn kite_improves_over_mesh_and_ring() {
        let layout = Layout::noi_4x5();
        let m = mesh(&layout);
        let k = kite_small(&layout);
        assert!(metrics::average_hops(&k) < metrics::average_hops(&m));
        assert!(metrics::average_hops(&k) < 3.0);
    }

    #[test]
    fn kite_classes_get_better_with_longer_links() {
        let layout = Layout::noi_4x5();
        let s = metrics::average_hops(&kite_small(&layout));
        let l = metrics::average_hops(&kite_large(&layout));
        assert!(l <= s + 1e-9);
    }

    #[test]
    fn butter_donut_and_double_butterfly_are_valid() {
        let layout = Layout::noi_4x5();
        for t in [butter_donut(&layout), double_butterfly(&layout)] {
            assert!(t.is_valid(), "{}: {:?}", t.name(), t.validate());
            assert!(t.is_symmetric());
        }
    }

    #[test]
    fn lpbt_variants_have_lower_bisection_than_expert_designs() {
        let layout = Layout::noi_4x5();
        let lp = lpbt_hops(&layout);
        let lpp = lpbt_power(&layout);
        let kite = kite_medium(&layout);
        assert!(lp.is_valid());
        assert!(lpp.is_valid());
        assert!(cuts::bisection_bandwidth(&lp) <= cuts::bisection_bandwidth(&kite));
        assert!(cuts::bisection_bandwidth(&lpp) <= cuts::bisection_bandwidth(&lp));
    }

    #[test]
    fn hamiltonian_ring_visits_every_router_once() {
        let layout = Layout::noi_4x5();
        let ring = hamiltonian_ring(&layout);
        assert_eq!(ring.len(), 20);
        let mut seen = [0usize; 20];
        for (a, b) in &ring {
            seen[*a] += 1;
            seen[*b] += 1;
        }
        // Every router appears exactly twice (once as source, once as dest).
        assert!(seen.iter().all(|&c| c == 2));
        // All ring links are unit length.
        for (a, b) in &ring {
            let (dx, dy) = layout.span(*a, *b);
            assert!(dx + dy == 1, "ring link {a}->{b} spans ({dx},{dy})");
        }
    }

    #[test]
    fn hamiltonian_ring_works_on_larger_layouts() {
        for layout in [Layout::noi_6x5(), Layout::noi_8x6()] {
            let ring = hamiltonian_ring(&layout);
            assert_eq!(ring.len(), layout.num_routers());
        }
    }

    #[test]
    fn all_baselines_cover_three_classes() {
        let layout = Layout::noi_4x5();
        let all = all_baselines(&layout);
        assert!(all.len() >= 8);
        for t in &all {
            assert!(t.is_valid(), "{} invalid: {:?}", t.name(), t.validate());
        }
    }

    #[test]
    fn baselines_for_class_respect_class() {
        let layout = Layout::noi_4x5();
        for class in LinkClass::STANDARD {
            for t in baselines_for_class(&layout, class) {
                assert!(t.is_valid(), "{}", t.name());
            }
        }
    }
}
