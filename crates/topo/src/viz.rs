//! Plain-text visualisation helpers (DOT export and adjacency dumps).
//!
//! The paper's Figure 4 shows a discovered topology with bidirectional
//! links drawn solid and unidirectional links dashed, coloured by the
//! sparsest-cut partition.  These helpers emit the same information as
//! Graphviz DOT (with grid coordinates as `pos` attributes) and as a
//! compact adjacency listing for experiment logs.

use crate::cuts::CutReport;
use crate::topology::Topology;
use std::fmt::Write as _;

/// Render the topology as a Graphviz DOT string.  Bidirectional pairs are
/// emitted once with `dir=both`; unidirectional links keep their arrow.  If
/// a [`CutReport`] is supplied, the two partitions are coloured like the
/// paper's Figure 4.
pub fn to_dot(topo: &Topology, cut: Option<&CutReport>) -> String {
    let mut out = String::new();
    let layout = topo.layout();
    let _ = writeln!(out, "digraph \"{}\" {{", topo.name());
    let _ = writeln!(out, "  node [shape=circle];");
    for r in 0..topo.num_routers() {
        let (row, col) = layout.position(r);
        let colour = match cut {
            Some(c) if c.partition.contains(&r) => "red",
            Some(_) => "blue",
            None => "black",
        };
        let _ = writeln!(
            out,
            "  r{r} [label=\"{r}\", pos=\"{col},{row}!\", color={colour}];"
        );
    }
    let n = topo.num_routers();
    for i in 0..n {
        for j in 0..n {
            if i < j && topo.has_link(i, j) && topo.has_link(j, i) {
                let _ = writeln!(out, "  r{i} -> r{j} [dir=both];");
            } else if topo.has_link(i, j) && !topo.has_link(j, i) {
                let _ = writeln!(out, "  r{i} -> r{j} [style=dashed];");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Compact adjacency listing: one line per router with its outgoing
/// neighbours, used in experiment logs and EXPERIMENTS.md snippets.
pub fn adjacency_listing(topo: &Topology) -> String {
    let mut out = String::new();
    for r in 0..topo.num_routers() {
        let outs = topo.neighbours_out(r);
        let formatted: Vec<String> = outs.iter().map(|d| d.to_string()).collect();
        let _ = writeln!(out, "{r}: {}", formatted.join(" "));
    }
    out
}

/// ASCII grid summary showing each router's total degree, handy for a quick
/// look at how evenly the port budget is used.
pub fn degree_grid(topo: &Topology) -> String {
    let layout = topo.layout();
    let mut out = String::new();
    for row in 0..layout.rows() {
        for col in 0..layout.cols() {
            let r = layout.router_at(row, col);
            let _ = write!(out, "{:>3}", topo.out_degree(r));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts::sparsest_cut;
    use crate::expert::mesh;
    use crate::layout::Layout;

    #[test]
    fn dot_contains_every_router_and_link_direction_markers() {
        let m = mesh(&Layout::noi_4x5());
        let dot = to_dot(&m, None);
        assert!(dot.starts_with("digraph"));
        for r in 0..20 {
            assert!(dot.contains(&format!("r{r} [label")));
        }
        assert!(dot.contains("dir=both"));
        assert!(!dot.contains("style=dashed"));
    }

    #[test]
    fn dot_colours_cut_partitions() {
        let m = mesh(&Layout::noi_4x5());
        let cut = sparsest_cut(&m);
        let dot = to_dot(&m, Some(&cut));
        assert!(dot.contains("color=red"));
        assert!(dot.contains("color=blue"));
    }

    #[test]
    fn adjacency_listing_has_one_line_per_router() {
        let m = mesh(&Layout::noi_4x5());
        let listing = adjacency_listing(&m);
        assert_eq!(listing.lines().count(), 20);
    }

    #[test]
    fn degree_grid_shape() {
        let m = mesh(&Layout::noi_4x5());
        let grid = degree_grid(&m);
        assert_eq!(grid.lines().count(), 4);
    }

    #[test]
    fn dashed_for_unidirectional() {
        use crate::linkclass::LinkClass;
        use crate::topology::Topology;
        let layout = Layout::noi_4x5();
        let mut t = Topology::empty("uni", layout, LinkClass::Small);
        t.add_link(0, 1);
        let dot = to_dot(&t, None);
        assert!(dot.contains("style=dashed"));
    }
}
