//! Analytical saturation-throughput bounds.
//!
//! The paper reasons about two topology-level throughput bottlenecks
//! (Section II-D and Figure 7):
//!
//! * **Cut-based bound** — for any bipartition `(U, V)`, uniform traffic
//!   must push `lambda * |U| * |V| / (n-1)` flits per cycle across the cut,
//!   which cannot exceed the number of links crossing it.  The tightest such
//!   bound over all cuts is given by the sparsest cut.
//! * **Link-occupancy bound** — each injected flit occupies `avg_hops`
//!   channels on average (with minimal routing), so aggregate channel
//!   capacity limits the injection rate to `num_links / (n * avg_hops)`.
//!
//! Both are expressed in flits per node per cycle assuming unit-capacity
//! channels; converting to packets/node/ns additionally requires the NoI
//! clock frequency and the average packet length, which the simulator and
//! benchmark harness apply.

use crate::cuts;
use crate::metrics;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Cut-based saturation throughput bound (flits/node/cycle).
pub fn cut_throughput_bound(topo: &Topology) -> f64 {
    let n = topo.num_routers();
    if n < 2 {
        return 0.0;
    }
    let cut = cuts::sparsest_cut(topo);
    cut.normalized_bandwidth * (n - 1) as f64
}

/// Link-occupancy saturation throughput bound (flits/node/cycle) under
/// minimal (shortest-path) routing.
pub fn occupancy_throughput_bound(topo: &Topology) -> f64 {
    let n = topo.num_routers();
    let avg = metrics::average_hops(topo);
    if !avg.is_finite() || avg <= 0.0 {
        return 0.0;
    }
    topo.num_directed_links() as f64 / (n as f64 * avg)
}

/// Combined bound report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputBounds {
    /// Sparsest-cut based bound (flits/node/cycle).
    pub cut_bound: f64,
    /// Link-occupancy based bound (flits/node/cycle).
    pub occupancy_bound: f64,
    /// Injection/ejection port bound (flits/node/cycle); 1.0 for the single
    /// local port per router modelled here.
    pub injection_bound: f64,
}

impl ThroughputBounds {
    /// Compute all bounds for a topology.
    pub fn compute(topo: &Topology) -> Self {
        ThroughputBounds {
            cut_bound: cut_throughput_bound(topo),
            occupancy_bound: occupancy_throughput_bound(topo),
            injection_bound: 1.0,
        }
    }

    /// The binding (minimum) bound.
    pub fn limiting(&self) -> f64 {
        self.cut_bound
            .min(self.occupancy_bound)
            .min(self.injection_bound)
    }

    /// Which bound is binding, as a human-readable label.
    pub fn limiting_kind(&self) -> &'static str {
        let l = self.limiting();
        if l == self.cut_bound {
            "cut"
        } else if l == self.occupancy_bound {
            "occupancy"
        } else {
            "injection"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert;
    use crate::layout::Layout;

    #[test]
    fn bounds_are_positive_for_mesh() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let b = ThroughputBounds::compute(&mesh);
        assert!(b.cut_bound > 0.0);
        assert!(b.occupancy_bound > 0.0);
        assert!(b.limiting() <= b.cut_bound);
        assert!(b.limiting() <= b.occupancy_bound);
    }

    #[test]
    fn folded_torus_has_higher_cut_bound_than_mesh() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let torus = expert::folded_torus(&layout);
        assert!(cut_throughput_bound(&torus) > cut_throughput_bound(&mesh));
    }

    #[test]
    fn occupancy_bound_formula() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let avg = crate::metrics::average_hops(&mesh);
        let expected = mesh.num_directed_links() as f64 / (20.0 * avg);
        assert!((occupancy_throughput_bound(&mesh) - expected).abs() < 1e-12);
    }

    #[test]
    fn disconnected_topology_has_zero_bounds() {
        use crate::linkclass::LinkClass;
        use crate::topology::Topology;
        let t = Topology::empty("empty", Layout::noi_4x5(), LinkClass::Small);
        assert_eq!(occupancy_throughput_bound(&t), 0.0);
        let b = ThroughputBounds::compute(&t);
        assert_eq!(b.limiting(), 0.0);
    }

    #[test]
    fn limiting_kind_is_consistent() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let b = ThroughputBounds::compute(&mesh);
        match b.limiting_kind() {
            "cut" => assert_eq!(b.limiting(), b.cut_bound),
            "occupancy" => assert_eq!(b.limiting(), b.occupancy_bound),
            "injection" => assert_eq!(b.limiting(), b.injection_bound),
            other => panic!("unexpected kind {other}"),
        }
    }
}
