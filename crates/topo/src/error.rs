//! The workspace-wide pipeline error taxonomy.
//!
//! Every stage of the discover → route → allocate → evaluate pipeline used
//! to report failure as a bare `Option`, which made an unroutable
//! configuration indistinguishable from a VC-budget miss.  [`PipelineError`]
//! names each failure mode precisely; it lives in `netsmith-topo` — the root
//! of the crate DAG — so the routing, synthesis, energy and fault layers can
//! all speak the same type without a dependency cycle, and the `netsmith`
//! umbrella re-exports it as `netsmith::PipelineError`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed failure anywhere in the evaluation pipeline.
///
/// Lower layers return the variant that names their own failure
/// ([`PipelineError::Disconnected`], [`PipelineError::IncompleteRouting`],
/// [`PipelineError::VcBudgetExceeded`]); facades add context by wrapping
/// ([`PipelineError::RepairInfeasible`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineError {
    /// The topology is not strongly connected: `pairs` ordered router pairs
    /// have no directed path.
    Disconnected {
        /// Number of unreachable ordered pairs.
        pairs: usize,
    },
    /// A routing pass terminated without a path for every ordered pair.
    IncompleteRouting {
        /// Number of ordered pairs left without a route.
        missing_pairs: usize,
    },
    /// The deadlock-free escape-layer partition needs more virtual channels
    /// than the budget provides.
    VcBudgetExceeded {
        /// Escape layers the DFSSSP-style partition required.
        needed: usize,
        /// Virtual channels that were available.
        budget: usize,
    },
    /// A fault scenario could not be repaired; `reason` is the underlying
    /// pipeline failure on the surviving sub-topology.
    RepairInfeasible {
        /// Label of the fault scenario that was being repaired.
        scenario: String,
        /// The failure the repair ran into.
        reason: Box<PipelineError>,
    },
    /// Topology discovery finished without a usable incumbent.
    DiscoveryFailed {
        /// Short name of the objective that was being optimized.
        objective: String,
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Disconnected { pairs } => {
                write!(
                    f,
                    "topology is disconnected: {pairs} unreachable ordered pairs"
                )
            }
            PipelineError::IncompleteRouting { missing_pairs } => {
                write!(
                    f,
                    "routing is incomplete: {missing_pairs} pairs have no route"
                )
            }
            PipelineError::VcBudgetExceeded { needed, budget } => {
                write!(
                    f,
                    "deadlock-free allocation needs {needed} escape VCs but only {budget} are available"
                )
            }
            PipelineError::RepairInfeasible { scenario, reason } => {
                write!(f, "scenario {scenario} cannot be repaired: {reason}")
            }
            PipelineError::DiscoveryFailed { objective, reason } => {
                write!(f, "discovery for {objective} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_failure_mode() {
        let cases = [
            (
                PipelineError::Disconnected { pairs: 4 },
                "4 unreachable ordered pairs",
            ),
            (
                PipelineError::IncompleteRouting { missing_pairs: 2 },
                "2 pairs have no route",
            ),
            (
                PipelineError::VcBudgetExceeded {
                    needed: 4,
                    budget: 1,
                },
                "needs 4 escape VCs but only 1",
            ),
            (
                PipelineError::RepairInfeasible {
                    scenario: "L3-7".into(),
                    reason: Box::new(PipelineError::Disconnected { pairs: 38 }),
                },
                "scenario L3-7 cannot be repaired",
            ),
            (
                PipelineError::DiscoveryFailed {
                    objective: "LatOp".into(),
                    reason: "no connected incumbent".into(),
                },
                "discovery for LatOp failed",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }
}
