//! Traffic patterns and demand matrices.
//!
//! NetSmith optimizes topologies for a traffic model supplied as an input.
//! The paper's evaluation uses uniform random (all-to-all) traffic as the
//! default "pattern-agnostic" model, plus three specialised models: the gem5
//! "shuffle" permutation (Figure 10), memory traffic where only memory-
//! controller routers sink requests, and coherence traffic where every
//! router exchanges with every other.  A [`DemandMatrix`] normalizes any of
//! these into per-pair demand weights so that hop-count objectives and cut
//! bandwidths can be traffic-weighted.

use crate::layout::Layout;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Synthetic traffic patterns supported by the generator and optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Uniform random: every source sends to every other router with equal
    /// probability.  This is the paper's default optimization target.
    UniformRandom,
    /// The gem5 "shuffle" permutation used in Figure 10:
    /// `dest = 2*src` for `src < n/2`, `dest = (2*src + 1) mod n` otherwise.
    Shuffle,
    /// Bit-transpose style permutation on the grid: `(r, c) -> (c mod rows,
    /// r mod cols)`; exercises long diagonal flows.
    Transpose,
    /// Memory traffic: cores send requests only to memory-controller
    /// routers (uniformly among them) and MCs respond; models the paper's
    /// Figure 6(b) hot-spot behaviour.
    Memory,
    /// Coherence traffic: router-to-router all-to-all, modelling the
    /// coherence request/forward/response flows of Figure 6(a).  Equivalent
    /// to uniform random at the NoI level.
    Coherence,
    /// Hot-spot: a fraction of the traffic targets a designated set of
    /// routers; the remainder is uniform random.
    Hotspot { targets: Vec<usize>, fraction: f64 },
    /// Bit-complement permutation: `dest = (n - 1) - src`.  Every flow
    /// crosses the network centre, stressing the bisection.
    BitComplement,
    /// Tornado: `dest = (src + ceil(n/2) - 1) mod n`; the classic
    /// adversarial pattern for rings/tori.
    Tornado,
}

impl TrafficPattern {
    /// Human-readable name.
    pub fn name(&self) -> String {
        match self {
            TrafficPattern::UniformRandom => "uniform_random".into(),
            TrafficPattern::Shuffle => "shuffle".into(),
            TrafficPattern::Transpose => "transpose".into(),
            TrafficPattern::Memory => "memory".into(),
            TrafficPattern::Coherence => "coherence".into(),
            TrafficPattern::Hotspot { .. } => "hotspot".into(),
            TrafficPattern::BitComplement => "bit_complement".into(),
            TrafficPattern::Tornado => "tornado".into(),
        }
    }

    /// The bit-complement destination for `src` in an `n`-router network.
    pub fn bit_complement_destination(src: usize, n: usize) -> usize {
        (n - 1) - src
    }

    /// The tornado destination for `src` in an `n`-router network.
    pub fn tornado_destination(src: usize, n: usize) -> usize {
        (src + n.div_ceil(2) - 1) % n
    }

    /// The shuffle permutation destination for `src` in an `n`-router
    /// network (paper Section V-E).
    pub fn shuffle_destination(src: usize, n: usize) -> usize {
        if src < n / 2 {
            2 * src
        } else {
            (2 * src + 1) % n
        }
    }

    /// Build the normalized demand matrix for this pattern over `layout`.
    pub fn demand_matrix(&self, layout: &Layout) -> DemandMatrix {
        let n = layout.num_routers();
        let mut m = DemandMatrix::zeros(n);
        match self {
            TrafficPattern::UniformRandom | TrafficPattern::Coherence => {
                for s in 0..n {
                    for d in 0..n {
                        if s != d {
                            m.set(s, d, 1.0);
                        }
                    }
                }
            }
            TrafficPattern::Shuffle => {
                for s in 0..n {
                    let d = Self::shuffle_destination(s, n);
                    if d != s {
                        m.set(s, d, 1.0);
                    }
                }
            }
            TrafficPattern::Transpose => {
                let (rows, cols) = (layout.rows(), layout.cols());
                for s in 0..n {
                    let (r, c) = layout.position(s);
                    let d = layout.router_at(c % rows, r % cols);
                    if d != s {
                        m.set(s, d, 1.0);
                    }
                }
            }
            TrafficPattern::Memory => {
                let mcs = layout.memory_routers();
                assert!(!mcs.is_empty(), "memory pattern requires memory routers");
                for s in 0..n {
                    for &d in &mcs {
                        if s != d {
                            // request
                            m.add(s, d, 1.0);
                            // response
                            m.add(d, s, 1.0);
                        }
                    }
                }
            }
            TrafficPattern::Hotspot { targets, fraction } => {
                assert!(!targets.is_empty(), "hotspot pattern requires targets");
                assert!((0.0..=1.0).contains(fraction));
                for s in 0..n {
                    for d in 0..n {
                        if s != d {
                            m.add(s, d, 1.0 - fraction);
                        }
                    }
                    for &d in targets {
                        if s != d {
                            m.add(s, d, *fraction * (n - 1) as f64 / targets.len() as f64);
                        }
                    }
                }
            }
            TrafficPattern::BitComplement => {
                for s in 0..n {
                    let d = Self::bit_complement_destination(s, n);
                    if d != s {
                        m.set(s, d, 1.0);
                    }
                }
            }
            TrafficPattern::Tornado => {
                for s in 0..n {
                    let d = Self::tornado_destination(s, n);
                    if d != s {
                        m.set(s, d, 1.0);
                    }
                }
            }
        }
        m.normalize();
        m
    }

    /// Sample a destination for a packet injected at `src`, following the
    /// pattern.  Used by the simulator's traffic generators.
    pub fn sample_destination<R: Rng + ?Sized>(
        &self,
        layout: &Layout,
        src: usize,
        rng: &mut R,
    ) -> Option<usize> {
        let n = layout.num_routers();
        match self {
            TrafficPattern::UniformRandom | TrafficPattern::Coherence => {
                let mut d = rng.gen_range(0..n - 1);
                if d >= src {
                    d += 1;
                }
                Some(d)
            }
            TrafficPattern::Shuffle => {
                let d = Self::shuffle_destination(src, n);
                if d == src {
                    None
                } else {
                    Some(d)
                }
            }
            TrafficPattern::Transpose => {
                let (r, c) = layout.position(src);
                let d = layout.router_at(c % layout.rows(), r % layout.cols());
                if d == src {
                    None
                } else {
                    Some(d)
                }
            }
            TrafficPattern::Memory => {
                let mcs = layout.memory_routers();
                let choices: Vec<usize> = mcs.into_iter().filter(|&d| d != src).collect();
                if choices.is_empty() {
                    None
                } else {
                    Some(choices[rng.gen_range(0..choices.len())])
                }
            }
            TrafficPattern::BitComplement => {
                let d = Self::bit_complement_destination(src, n);
                if d == src {
                    None
                } else {
                    Some(d)
                }
            }
            TrafficPattern::Tornado => {
                let d = Self::tornado_destination(src, n);
                if d == src {
                    None
                } else {
                    Some(d)
                }
            }
            TrafficPattern::Hotspot { targets, fraction } => {
                if rng.gen_bool(*fraction) {
                    let choices: Vec<usize> =
                        targets.iter().copied().filter(|&d| d != src).collect();
                    if choices.is_empty() {
                        None
                    } else {
                        Some(choices[rng.gen_range(0..choices.len())])
                    }
                } else {
                    let mut d = rng.gen_range(0..n - 1);
                    if d >= src {
                        d += 1;
                    }
                    Some(d)
                }
            }
        }
    }
}

/// A normalized `n x n` traffic demand matrix.  Entries are non-negative
/// weights that sum to 1 after [`DemandMatrix::normalize`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandMatrix {
    n: usize,
    demand: Vec<f64>,
}

impl DemandMatrix {
    /// All-zero matrix.
    pub fn zeros(n: usize) -> Self {
        DemandMatrix {
            n,
            demand: vec![0.0; n * n],
        }
    }

    /// Uniform all-to-all demand (already normalized).
    pub fn uniform(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    m.set(s, d, 1.0);
                }
            }
        }
        m.normalize();
        m
    }

    /// Number of routers the matrix is defined over.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Demand weight from `s` to `d`.
    #[inline]
    pub fn demand(&self, s: usize, d: usize) -> f64 {
        self.demand[s * self.n + d]
    }

    /// Set the demand weight from `s` to `d`.
    pub fn set(&mut self, s: usize, d: usize, value: f64) {
        assert!(value >= 0.0, "demand must be non-negative");
        assert!(s != d || value == 0.0, "self demand must be zero");
        self.demand[s * self.n + d] = value;
    }

    /// Add to the demand weight from `s` to `d`.
    pub fn add(&mut self, s: usize, d: usize, value: f64) {
        assert!(value >= 0.0);
        if s != d {
            self.demand[s * self.n + d] += value;
        }
    }

    /// Sum of all entries.
    pub fn total(&self) -> f64 {
        self.demand.iter().sum()
    }

    /// Scale so that all entries sum to 1 (no-op on an all-zero matrix).
    pub fn normalize(&mut self) {
        let total = self.total();
        if total > 0.0 {
            for v in &mut self.demand {
                *v /= total;
            }
        }
    }

    /// Iterate over non-zero `(src, dst, weight)` triples.
    pub fn flows(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |s| {
            (0..n).filter_map(move |d| {
                let w = self.demand(s, d);
                if w > 0.0 {
                    Some((s, d, w))
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_matrix_is_normalized_and_symmetric() {
        let m = DemandMatrix::uniform(20);
        assert!((m.total() - 1.0).abs() < 1e-9);
        for s in 0..20 {
            assert_eq!(m.demand(s, s), 0.0);
            for d in 0..20 {
                assert!((m.demand(s, d) - m.demand(d, s)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shuffle_destination_matches_paper_formula() {
        let n = 20;
        assert_eq!(TrafficPattern::shuffle_destination(0, n), 0);
        assert_eq!(TrafficPattern::shuffle_destination(3, n), 6);
        assert_eq!(TrafficPattern::shuffle_destination(9, n), 18);
        assert_eq!(TrafficPattern::shuffle_destination(10, n), 1);
        assert_eq!(TrafficPattern::shuffle_destination(19, n), 19);
    }

    #[test]
    fn shuffle_matrix_has_at_most_one_flow_per_source() {
        let layout = Layout::noi_4x5();
        let m = TrafficPattern::Shuffle.demand_matrix(&layout);
        for s in 0..20 {
            let outgoing = (0..20).filter(|&d| m.demand(s, d) > 0.0).count();
            assert!(outgoing <= 1);
        }
        assert!((m.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_pattern_only_targets_memory_routers() {
        let layout = Layout::noi_4x5();
        let m = TrafficPattern::Memory.demand_matrix(&layout);
        let mcs = layout.memory_routers();
        for (s, d, _) in m.flows() {
            assert!(mcs.contains(&d) || mcs.contains(&s));
        }
    }

    #[test]
    fn uniform_sampling_never_returns_source() {
        let layout = Layout::noi_4x5();
        let mut rng = SmallRng::seed_from_u64(7);
        for src in 0..20 {
            for _ in 0..50 {
                let d = TrafficPattern::UniformRandom
                    .sample_destination(&layout, src, &mut rng)
                    .unwrap();
                assert_ne!(d, src);
                assert!(d < 20);
            }
        }
    }

    #[test]
    fn hotspot_biases_towards_targets() {
        let layout = Layout::noi_4x5();
        let pattern = TrafficPattern::Hotspot {
            targets: vec![0],
            fraction: 0.9,
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let mut hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            if pattern.sample_destination(&layout, 7, &mut rng) == Some(0) {
                hits += 1;
            }
        }
        assert!(hits as f64 > 0.7 * trials as f64);
    }

    #[test]
    fn memory_sampling_targets_memory_routers() {
        let layout = Layout::noi_4x5();
        let mcs = layout.memory_routers();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let d = TrafficPattern::Memory
                .sample_destination(&layout, 6, &mut rng)
                .unwrap();
            assert!(mcs.contains(&d));
        }
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let n = 20;
        for s in 0..n {
            let d = TrafficPattern::bit_complement_destination(s, n);
            assert_eq!(TrafficPattern::bit_complement_destination(d, n), s);
            assert_ne!(d, s);
        }
        let layout = Layout::noi_4x5();
        let m = TrafficPattern::BitComplement.demand_matrix(&layout);
        assert!((m.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tornado_shifts_by_half_minus_one() {
        let n = 20;
        assert_eq!(TrafficPattern::tornado_destination(0, n), 9);
        assert_eq!(TrafficPattern::tornado_destination(15, n), 4);
        let layout = Layout::noi_4x5();
        let m = TrafficPattern::Tornado.demand_matrix(&layout);
        // Every source has exactly one destination.
        for s in 0..n {
            let outgoing = (0..n).filter(|&d| m.demand(s, d) > 0.0).count();
            assert_eq!(outgoing, 1);
        }
    }

    #[test]
    fn adversarial_patterns_sample_their_permutation() {
        let layout = Layout::noi_4x5();
        let mut rng = SmallRng::seed_from_u64(5);
        for s in 0..20 {
            assert_eq!(
                TrafficPattern::BitComplement.sample_destination(&layout, s, &mut rng),
                Some(19 - s)
            );
            assert_eq!(
                TrafficPattern::Tornado.sample_destination(&layout, s, &mut rng),
                Some((s + 9) % 20)
            );
        }
    }

    #[test]
    fn transpose_is_an_involution_where_defined() {
        let layout = Layout::noi_4x5();
        let m = TrafficPattern::Transpose.demand_matrix(&layout);
        assert!(m.total() > 0.0);
    }

    #[test]
    fn demand_matrix_set_add_and_flows() {
        let mut m = DemandMatrix::zeros(4);
        m.set(0, 1, 2.0);
        m.add(0, 1, 1.0);
        m.add(2, 3, 3.0);
        assert_eq!(m.total(), 6.0);
        m.normalize();
        let flows: Vec<_> = m.flows().collect();
        assert_eq!(flows.len(), 2);
        assert!((m.demand(0, 1) - 0.5).abs() < 1e-12);
    }
}
