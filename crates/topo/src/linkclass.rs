//! Link-length taxonomy and valid-link enumeration.
//!
//! NetSmith constrains candidate links to a maximum physical span, both
//! because long interposer wires are slow (they bound the achievable NoI
//! clock) and because bounding the span keeps the MIP search space
//! tractable.  The taxonomy follows Kite: a link is named by the number of
//! grid hops it spans in X and Y.  Networks limited to (1,1) links are
//! "small", (2,0) "medium", and (2,1) "large"; the corresponding maximum
//! NoI clock frequencies used by the paper's evaluation are 3.6, 3.0 and
//! 2.7 GHz respectively.

use crate::layout::{Layout, RouterId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Grid span of a link in X (columns) and Y (rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkSpan {
    pub dx: usize,
    pub dy: usize,
}

impl LinkSpan {
    pub fn new(dx: usize, dy: usize) -> Self {
        LinkSpan { dx, dy }
    }

    /// Canonical form with `dx >= dy`, used when comparing spans against a
    /// symmetric budget.
    pub fn canonical(self) -> Self {
        if self.dx >= self.dy {
            self
        } else {
            LinkSpan {
                dx: self.dy,
                dy: self.dx,
            }
        }
    }

    /// Manhattan length of the span in grid hops.
    pub fn manhattan(self) -> usize {
        self.dx + self.dy
    }

    /// Euclidean length of the span in grid hops.
    pub fn euclidean(self) -> f64 {
        ((self.dx * self.dx + self.dy * self.dy) as f64).sqrt()
    }
}

impl fmt::Display for LinkSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.dx, self.dy)
    }
}

/// Maximum allowed link length, following the Kite/NetSmith taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Links up to (1,1): nearest neighbours and single diagonals.
    Small,
    /// Links up to (2,0): additionally allows two-hop straight links.
    Medium,
    /// Links up to (2,1): additionally allows knight's-move links.
    Large,
    /// Custom budget: any link whose canonical span `(dx, dy)` satisfies
    /// `dx <= max.dx && dy <= max.dy` (after canonicalisation) is allowed.
    Custom(LinkSpan),
}

impl LinkClass {
    /// All three standard classes in increasing length order.
    pub const STANDARD: [LinkClass; 3] = [LinkClass::Small, LinkClass::Medium, LinkClass::Large];

    /// The maximum canonical span allowed by the class.
    pub fn max_span(&self) -> LinkSpan {
        match *self {
            LinkClass::Small => LinkSpan::new(1, 1),
            LinkClass::Medium => LinkSpan::new(2, 0),
            LinkClass::Large => LinkSpan::new(2, 1),
            LinkClass::Custom(s) => s.canonical(),
        }
    }

    /// Whether a link spanning `(dx, dy)` grid hops is allowed.
    ///
    /// The classes are cumulative, exactly as in Kite: "medium" networks may
    /// also use every "small" link, and "large" networks may use every
    /// "small" and "medium" link.
    pub fn allows(&self, span: LinkSpan) -> bool {
        if span.dx == 0 && span.dy == 0 {
            return false; // self links are never allowed
        }
        let c = span.canonical();
        match *self {
            LinkClass::Small => c.dx <= 1 && c.dy <= 1,
            LinkClass::Medium => LinkClass::Small.allows(span) || (c.dx <= 2 && c.dy == 0),
            LinkClass::Large => LinkClass::Medium.allows(span) || (c.dx <= 2 && c.dy <= 1),
            LinkClass::Custom(max) => {
                let m = max.canonical();
                c.dx <= m.dx && c.dy <= m.dy
            }
        }
    }

    /// NoI clock frequency (GHz) the class can sustain, from the paper's
    /// evaluation methodology: small 3.6 GHz, medium 3.0 GHz, large 2.7 GHz.
    pub fn clock_ghz(&self) -> f64 {
        match *self {
            LinkClass::Small => 3.6,
            LinkClass::Medium => 3.0,
            LinkClass::Large => 2.7,
            // Conservative: scale with the euclidean length of the longest
            // allowed link relative to the large class.
            LinkClass::Custom(s) => {
                let large = LinkSpan::new(2, 1).euclidean();
                (2.7 * large / s.canonical().euclidean().max(1.0)).min(3.6)
            }
        }
    }

    /// Human-readable class name as used in the paper ("small"/"medium"/…).
    pub fn name(&self) -> String {
        match *self {
            LinkClass::Small => "small".to_string(),
            LinkClass::Medium => "medium".to_string(),
            LinkClass::Large => "large".to_string(),
            LinkClass::Custom(s) => format!("custom{s}"),
        }
    }

    /// Enumerate every ordered pair `(i, j)` of distinct routers in the
    /// layout that this class allows to be directly connected.  This is the
    /// set `L` that constrains the MIP connectivity map (constraint C3 in
    /// the paper's Table I).
    pub fn valid_links(&self, layout: &Layout) -> Vec<(RouterId, RouterId)> {
        let n = layout.num_routers();
        let mut links = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (dx, dy) = layout.span(i, j);
                if self.allows(LinkSpan::new(dx, dy)) {
                    links.push((i, j));
                }
            }
        }
        links
    }

    /// Number of valid outgoing candidate links per router.
    pub fn candidate_degree(&self, layout: &Layout, r: RouterId) -> usize {
        let n = layout.num_routers();
        (0..n)
            .filter(|&j| {
                j != r && {
                    let (dx, dy) = layout.span(r, j);
                    self.allows(LinkSpan::new(dx, dy))
                }
            })
            .count()
    }
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_allows_only_neighbours_and_diagonals() {
        let c = LinkClass::Small;
        assert!(c.allows(LinkSpan::new(1, 0)));
        assert!(c.allows(LinkSpan::new(0, 1)));
        assert!(c.allows(LinkSpan::new(1, 1)));
        assert!(!c.allows(LinkSpan::new(2, 0)));
        assert!(!c.allows(LinkSpan::new(2, 1)));
        assert!(!c.allows(LinkSpan::new(0, 0)));
    }

    #[test]
    fn medium_is_cumulative_over_small() {
        let c = LinkClass::Medium;
        assert!(c.allows(LinkSpan::new(1, 1)));
        assert!(c.allows(LinkSpan::new(2, 0)));
        assert!(c.allows(LinkSpan::new(0, 2)));
        assert!(!c.allows(LinkSpan::new(2, 1)));
        assert!(!c.allows(LinkSpan::new(2, 2)));
    }

    #[test]
    fn large_is_cumulative_over_medium() {
        let c = LinkClass::Large;
        assert!(c.allows(LinkSpan::new(1, 1)));
        assert!(c.allows(LinkSpan::new(2, 0)));
        assert!(c.allows(LinkSpan::new(2, 1)));
        assert!(c.allows(LinkSpan::new(1, 2)));
        assert!(!c.allows(LinkSpan::new(2, 2)));
        assert!(!c.allows(LinkSpan::new(3, 0)));
    }

    #[test]
    fn clock_frequencies_match_paper() {
        assert_eq!(LinkClass::Small.clock_ghz(), 3.6);
        assert_eq!(LinkClass::Medium.clock_ghz(), 3.0);
        assert_eq!(LinkClass::Large.clock_ghz(), 2.7);
    }

    #[test]
    fn valid_links_are_within_class_and_distinct() {
        let layout = Layout::noi_4x5();
        for class in LinkClass::STANDARD {
            let links = class.valid_links(&layout);
            assert!(!links.is_empty());
            for (i, j) in &links {
                assert_ne!(i, j);
                let (dx, dy) = layout.span(*i, *j);
                assert!(class.allows(LinkSpan::new(dx, dy)));
            }
        }
    }

    #[test]
    fn valid_link_counts_grow_with_class() {
        let layout = Layout::noi_4x5();
        let small = LinkClass::Small.valid_links(&layout).len();
        let medium = LinkClass::Medium.valid_links(&layout).len();
        let large = LinkClass::Large.valid_links(&layout).len();
        assert!(small < medium);
        assert!(medium < large);
    }

    #[test]
    fn corner_router_candidate_degree_small() {
        // Corner of the 4x5 grid has 3 neighbours within (1,1).
        let layout = Layout::noi_4x5();
        assert_eq!(LinkClass::Small.candidate_degree(&layout, 0), 3);
    }

    #[test]
    fn custom_class_respects_budget() {
        let c = LinkClass::Custom(LinkSpan::new(3, 1));
        assert!(c.allows(LinkSpan::new(3, 0)));
        assert!(c.allows(LinkSpan::new(1, 3))); // canonicalised
        assert!(!c.allows(LinkSpan::new(2, 2)));
    }

    #[test]
    fn span_canonicalisation() {
        assert_eq!(LinkSpan::new(1, 2).canonical(), LinkSpan::new(2, 1));
        assert_eq!(LinkSpan::new(2, 1).canonical(), LinkSpan::new(2, 1));
        assert_eq!(LinkSpan::new(0, 2).manhattan(), 2);
    }
}
