//! Analytical topology metrics: hop distances, average hops, diameter.
//!
//! At low loads the end-to-end latency of a packet is (average hops) x
//! (per-hop delay), so the paper uses the average hop count under uniform
//! all-to-all traffic as its latency proxy (objective O1 / constraint C5 in
//! Table I).  These helpers compute exact all-pairs shortest hop distances
//! by breadth-first search from every source, which for the network sizes
//! of interest (20–48 routers) is far cheaper than a general Floyd–Warshall
//! and is used both by the metric reports and by the optimizer's
//! incremental evaluation.

use crate::cuts;
use crate::topology::Topology;
use crate::traffic::DemandMatrix;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Distance value used to mark unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// All-pairs hop distance matrix (row-major `n x n`), computed by BFS from
/// each source over the directed adjacency.  `dist[s*n + d]` is the minimum
/// number of links a packet from `s` to `d` must traverse, `0` on the
/// diagonal and [`UNREACHABLE`] when no path exists.
pub fn all_pairs_hops(topo: &Topology) -> Vec<u32> {
    let n = topo.num_routers();
    let mut dist = vec![UNREACHABLE; n * n];
    // Pre-collect adjacency lists once; BFS from each source.
    let adj: Vec<Vec<usize>> = (0..n).map(|i| topo.neighbours_out(i)).collect();
    let mut queue = VecDeque::with_capacity(n);
    for s in 0..n {
        let row = &mut dist[s * n..(s + 1) * n];
        row[s] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = row[u];
            for &v in &adj[u] {
                if row[v] == UNREACHABLE {
                    row[v] = du + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

/// Number of ordered `(s, d)` pairs (s != d) with no directed path.
pub fn unreachable_pairs(topo: &Topology) -> usize {
    let n = topo.num_routers();
    let dist = all_pairs_hops(topo);
    let mut count = 0;
    for s in 0..n {
        for d in 0..n {
            if s != d && dist[s * n + d] == UNREACHABLE {
                count += 1;
            }
        }
    }
    count
}

/// True when every router can reach every other router.
pub fn is_strongly_connected(topo: &Topology) -> bool {
    unreachable_pairs(topo) == 0
}

/// Average hop count over all ordered source/destination pairs (excluding
/// self pairs), i.e. the unweighted latency proxy from the paper's Table II.
/// Returns `f64::INFINITY` when the topology is not strongly connected.
pub fn average_hops(topo: &Topology) -> f64 {
    let n = topo.num_routers();
    let dist = all_pairs_hops(topo);
    let mut total = 0u64;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let h = dist[s * n + d];
            if h == UNREACHABLE {
                return f64::INFINITY;
            }
            total += h as u64;
        }
    }
    total as f64 / (n * (n - 1)) as f64
}

/// Demand-weighted average hop count: `sum(demand[s][d] * hops(s,d)) /
/// sum(demand)`.  Used for pattern-optimized topologies (e.g. the paper's
/// shuffle-optimized "NS ShufOpt" networks).
pub fn weighted_average_hops(topo: &Topology, demand: &DemandMatrix) -> f64 {
    let n = topo.num_routers();
    assert_eq!(demand.num_nodes(), n, "demand matrix size mismatch");
    let dist = all_pairs_hops(topo);
    let mut total = 0.0;
    let mut weight = 0.0;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let w = demand.demand(s, d);
            if w <= 0.0 {
                continue;
            }
            let h = dist[s * n + d];
            if h == UNREACHABLE {
                return f64::INFINITY;
            }
            total += w * h as f64;
            weight += w;
        }
    }
    if weight == 0.0 {
        0.0
    } else {
        total / weight
    }
}

/// Total hop count: the raw objective `O1 = sum_{s,d} D(s,d)` of Table I.
pub fn total_hops(topo: &Topology) -> Option<u64> {
    let n = topo.num_routers();
    let dist = all_pairs_hops(topo);
    let mut total = 0u64;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let h = dist[s * n + d];
            if h == UNREACHABLE {
                return None;
            }
            total += h as u64;
        }
    }
    Some(total)
}

/// Network diameter: the maximum shortest-path hop distance over all pairs,
/// or `None` when the topology is not strongly connected.
pub fn diameter(topo: &Topology) -> Option<u32> {
    let n = topo.num_routers();
    let dist = all_pairs_hops(topo);
    let mut max = 0;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let h = dist[s * n + d];
            if h == UNREACHABLE {
                return None;
            }
            max = max.max(h);
        }
    }
    Some(max)
}

/// Full distribution of shortest-path hop counts across ordered pairs.
/// Index `h` holds the number of pairs at exactly `h` hops.  Used to verify
/// the paper's observation that NetSmith shifts the whole latency
/// distribution downward rather than trading some pairs off against others.
pub fn hop_histogram(topo: &Topology) -> Vec<usize> {
    let n = topo.num_routers();
    let dist = all_pairs_hops(topo);
    let mut hist = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let h = dist[s * n + d];
            if h == UNREACHABLE {
                continue;
            }
            let h = h as usize;
            if hist.len() <= h {
                hist.resize(h + 1, 0);
            }
            hist[h] += 1;
        }
    }
    hist
}

/// Aggregated metric report for one topology, matching the columns of the
/// paper's Table II plus the cut/occupancy throughput bounds of Figure 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyMetrics {
    pub name: String,
    pub class: String,
    pub num_routers: usize,
    pub num_links: usize,
    pub diameter: Option<u32>,
    pub average_hops: f64,
    pub bisection_bandwidth: f64,
    pub sparsest_cut: f64,
    /// Saturation throughput bound from the sparsest cut (flits/node/cycle).
    pub cut_bound: f64,
    /// Saturation throughput bound from link occupancy (flits/node/cycle).
    pub occupancy_bound: f64,
}

impl TopologyMetrics {
    /// Compute the full metric report for a topology.
    pub fn compute(topo: &Topology) -> Self {
        let bounds = crate::bounds::ThroughputBounds::compute(topo);
        TopologyMetrics {
            name: topo.name().to_string(),
            class: topo.class().name(),
            num_routers: topo.num_routers(),
            num_links: topo.num_links(),
            diameter: diameter(topo),
            average_hops: average_hops(topo),
            bisection_bandwidth: cuts::bisection_bandwidth(topo),
            sparsest_cut: cuts::sparsest_cut(topo).normalized_bandwidth,
            cut_bound: bounds.cut_bound,
            occupancy_bound: bounds.occupancy_bound,
        }
    }

    /// One-line CSV row (matching the header from [`TopologyMetrics::csv_header`]).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.3},{:.1},{:.4},{:.4},{:.4}",
            self.name,
            self.class,
            self.num_routers,
            self.num_links,
            self.diameter
                .map(|d| d.to_string())
                .unwrap_or_else(|| "inf".into()),
            self.average_hops,
            self.bisection_bandwidth,
            self.sparsest_cut,
            self.cut_bound,
            self.occupancy_bound
        )
    }

    /// CSV header for [`TopologyMetrics::csv_row`].
    pub fn csv_header() -> &'static str {
        "name,class,routers,links,diameter,avg_hops,bisection_bw,sparsest_cut,cut_bound,occupancy_bound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert;
    use crate::layout::Layout;
    use crate::linkclass::LinkClass;

    fn ring(n: usize) -> Topology {
        // Build a directed cycle over the first `n` routers of a 4x5 layout;
        // the Custom class bypasses length validation for metric tests.
        let layout = Layout::interposer_grid(4, 5, 4);
        let mut t = Topology::empty(
            format!("ring{n}"),
            layout,
            LinkClass::Custom(crate::linkclass::LinkSpan::new(8, 8)),
        );
        for i in 0..n {
            t.add_link(i, (i + 1) % n);
        }
        t
    }

    #[test]
    fn directed_ring_distances() {
        let t = ring(5);
        let n = t.num_routers();
        let dist = all_pairs_hops(&t);
        // Within the ring of the first five routers, distance 0->4 is 4.
        assert_eq!(dist[4], 4);
        assert_eq!(dist[1], 1);
        // Routers outside the ring are unreachable.
        assert_eq!(dist[5], UNREACHABLE);
        assert!(unreachable_pairs(&t) > 0);
        assert_eq!(n, 20);
    }

    #[test]
    fn mesh_average_hops_and_diameter() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let d = diameter(&mesh).unwrap();
        // 4x5 mesh diameter = (4-1)+(5-1) = 7
        assert_eq!(d, 7);
        let avg = average_hops(&mesh);
        assert!(avg > 2.5 && avg < 3.5, "mesh avg hops {avg}");
    }

    #[test]
    fn hop_histogram_sums_to_pairs() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let hist = hop_histogram(&mesh);
        let total: usize = hist.iter().sum();
        assert_eq!(total, 20 * 19);
        // No pairs at distance 0 (diagonal excluded).
        assert_eq!(hist[0], 0);
    }

    #[test]
    fn total_hops_matches_average() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let total = total_hops(&mesh).unwrap();
        let avg = average_hops(&mesh);
        assert!((total as f64 / (20.0 * 19.0) - avg).abs() < 1e-9);
    }

    #[test]
    fn disconnected_topology_reports_infinite_metrics() {
        let t = Topology::empty("empty", Layout::noi_4x5(), LinkClass::Small);
        assert_eq!(average_hops(&t), f64::INFINITY);
        assert_eq!(diameter(&t), None);
        assert_eq!(total_hops(&t), None);
        assert!(!is_strongly_connected(&t));
    }

    #[test]
    fn metrics_report_is_consistent() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let m = TopologyMetrics::compute(&mesh);
        assert_eq!(m.num_routers, 20);
        assert_eq!(m.diameter, Some(7));
        assert!(m.csv_row().starts_with("Mesh"));
        assert!(TopologyMetrics::csv_header().contains("avg_hops"));
    }

    #[test]
    fn weighted_hops_uniform_matches_plain_average() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let demand = DemandMatrix::uniform(20);
        let w = weighted_average_hops(&mesh, &demand);
        let a = average_hops(&mesh);
        assert!((w - a).abs() < 1e-9);
    }
}
