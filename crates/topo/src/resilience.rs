//! Structural robustness metrics: critical (articulation) links, spare
//! port capacity, and connectivity under router failures.
//!
//! Datacenter-scale interposer fabrics run under sustained traffic for
//! years, so permanent link and router failures are the common case rather
//! than the exception.  The helpers in this module answer the two questions
//! a fault-tolerant synthesis flow keeps asking about a candidate topology:
//!
//! * which full-duplex links are *critical* — single points of failure
//!   whose loss breaks strong connectivity — and
//! * how much spare routing capacity remains around the weakest router
//!   (every router's in/out degree is an isolating cut, so the minimum
//!   directional degree upper-bounds the directed edge connectivity).
//!
//! They are deliberately cheap (a handful of BFS traversals) because the
//! `netsmith-gen` annealer evaluates them on every candidate move; the full
//! fault-injection machinery lives in `netsmith-fault` and uses the masked
//! connectivity helpers here to reason about degraded sub-topologies.

use crate::layout::RouterId;
use crate::topology::Topology;

/// All full-duplex router pairs that are connected in at least one
/// direction, in canonical `(lo, hi)` order.  These are the physical wires
/// a single link fault takes out (both directions share the wire run).
pub fn duplex_pairs(topo: &Topology) -> Vec<(RouterId, RouterId)> {
    let n = topo.num_routers();
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if topo.has_link(i, j) || topo.has_link(j, i) {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

/// BFS reachability from `root` over the directed adjacency, restricted to
/// routers with `alive[r]` set and optionally skipping the duplex pair
/// `skip` (both directions).  `reverse` walks incoming links instead of
/// outgoing ones.
fn reach(
    topo: &Topology,
    root: RouterId,
    alive: &[bool],
    skip: Option<(RouterId, RouterId)>,
    reverse: bool,
) -> Vec<bool> {
    let n = topo.num_routers();
    let mut seen = vec![false; n];
    if !alive[root] {
        return seen;
    }
    let skipped = |a: RouterId, b: RouterId| {
        skip.is_some_and(|(i, j)| (a == i && b == j) || (a == j && b == i))
    };
    let mut queue = std::collections::VecDeque::with_capacity(n);
    seen[root] = true;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for v in 0..n {
            if seen[v] || !alive[v] || skipped(u, v) {
                continue;
            }
            let linked = if reverse {
                topo.has_link(v, u)
            } else {
                topo.has_link(u, v)
            };
            if linked {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// True when every router in `alive` can reach every other alive router
/// through alive routers only.  Uses one forward and one backward BFS from
/// an arbitrary alive root (a directed graph is strongly connected iff some
/// vertex reaches and is reached by every other), so the check is `O(n²)`
/// on the dense adjacency rather than `O(n³)` for all-pairs distances.
pub fn is_strongly_connected_among(topo: &Topology, alive: &[bool]) -> bool {
    assert_eq!(alive.len(), topo.num_routers(), "alive mask size mismatch");
    let Some(root) = alive.iter().position(|&a| a) else {
        return true; // no alive routers: vacuously connected
    };
    let fwd = reach(topo, root, alive, None, false);
    let bwd = reach(topo, root, alive, None, true);
    alive
        .iter()
        .enumerate()
        .all(|(r, &a)| !a || (fwd[r] && bwd[r]))
}

/// Number of ordered alive `(s, d)` pairs (s != d) with no directed path
/// through alive routers.  The degraded-topology analogue of
/// [`crate::metrics::unreachable_pairs`].
pub fn unreachable_pairs_among(topo: &Topology, alive: &[bool]) -> usize {
    assert_eq!(alive.len(), topo.num_routers(), "alive mask size mismatch");
    let n = topo.num_routers();
    let mut count = 0usize;
    for s in 0..n {
        if !alive[s] {
            continue;
        }
        let seen = reach(topo, s, alive, None, false);
        for d in 0..n {
            if d != s && alive[d] && !seen[d] {
                count += 1;
            }
        }
    }
    count
}

/// True when the topology stays strongly connected after removing both
/// directions of the duplex pair `(i, j)`.
pub fn survives_pair_removal(topo: &Topology, i: RouterId, j: RouterId) -> bool {
    let n = topo.num_routers();
    let alive = vec![true; n];
    let fwd = reach(topo, 0, &alive, Some((i, j)), false);
    let bwd = reach(topo, 0, &alive, Some((i, j)), true);
    (0..n).all(|r| fwd[r] && bwd[r])
}

/// Early-exit BFS: can `from` reach `to` over alive routers while skipping
/// both directions of the duplex pair `skip`?
fn reaches_with_skip(
    topo: &Topology,
    from: RouterId,
    to: RouterId,
    skip: (RouterId, RouterId),
) -> bool {
    let n = topo.num_routers();
    let skipped =
        |a: RouterId, b: RouterId| (a == skip.0 && b == skip.1) || (a == skip.1 && b == skip.0);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::with_capacity(n);
    seen[from] = true;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        let mut found = false;
        for (v, s) in seen.iter_mut().enumerate() {
            if !*s && !skipped(u, v) && topo.has_link(u, v) {
                if v == to {
                    found = true;
                    break;
                }
                *s = true;
                queue.push_back(v);
            }
        }
        if found {
            return true;
        }
    }
    false
}

/// The *critical* duplex pairs of a topology: physical links whose failure
/// (removal of both directions) leaves some ordered router pair without a
/// directed path.  A topology with no critical pairs re-routes around any
/// single link failure; the `netsmith-gen` FaultOp objective drives this
/// count to zero during synthesis (so this runs on every annealer move and
/// is kept as cheap as possible).
pub fn critical_link_pairs(topo: &Topology) -> Vec<(RouterId, RouterId)> {
    let alive = vec![true; topo.num_routers()];
    if is_strongly_connected_among(topo, &alive) {
        // On a strongly connected digraph, removing the duplex pair (i, j)
        // preserves strong connectivity iff i and j still reach each other:
        // any other path that used a removed direction can splice in the
        // surviving i→j / j→i detour.  Two early-exit BFS per pair instead
        // of two full sweeps.
        duplex_pairs(topo)
            .into_iter()
            .filter(|&(i, j)| {
                !(reaches_with_skip(topo, i, j, (i, j)) && reaches_with_skip(topo, j, i, (i, j)))
            })
            .collect()
    } else {
        duplex_pairs(topo)
            .into_iter()
            .filter(|&(i, j)| !survives_pair_removal(topo, i, j))
            .collect()
    }
}

/// Minimum over all routers of `min(out_degree, in_degree)` — the capacity
/// of the weakest isolating cut.  The directed edge connectivity of the
/// topology can never exceed this, so it acts as the cheap spare-min-cut
/// proxy the FaultOp objective rewards: a fabric whose weakest router keeps
/// several independent links can absorb that many link faults around it.
pub fn min_directional_degree(topo: &Topology) -> usize {
    (0..topo.num_routers())
        .map(|r| topo.out_degree(r).min(topo.in_degree(r)))
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert;
    use crate::layout::Layout;
    use crate::linkclass::{LinkClass, LinkSpan};

    fn chain() -> Topology {
        // Bidirectional snake path 0-1-2-5-4-3 over a 2x3 grid: every link
        // is critical.  The Custom class bypasses length validation.
        let layout = Layout::interposer_grid(2, 3, 4);
        Topology::from_bidirectional_links(
            "chain",
            layout,
            LinkClass::Custom(LinkSpan::new(8, 8)),
            &[(0, 1), (1, 2), (2, 5), (5, 4), (4, 3)],
        )
    }

    #[test]
    fn every_chain_link_is_critical() {
        let t = chain();
        let critical = critical_link_pairs(&t);
        assert_eq!(critical.len(), 5);
        assert_eq!(min_directional_degree(&t), 1);
    }

    #[test]
    fn mesh_has_no_critical_links() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        assert!(critical_link_pairs(&mesh).is_empty());
        // Mesh corners have degree 2 in each direction.
        assert_eq!(min_directional_degree(&mesh), 2);
    }

    #[test]
    fn duplex_pairs_count_matches_num_links_for_symmetric_topologies() {
        let torus = expert::folded_torus(&Layout::noi_4x5());
        assert_eq!(duplex_pairs(&torus).len(), torus.num_links());
    }

    #[test]
    fn masked_connectivity_ignores_dead_routers() {
        let t = chain();
        let mut alive = vec![true; t.num_routers()];
        // Killing the chain's tail router leaves the rest connected...
        alive[3] = false;
        assert!(is_strongly_connected_among(&t, &alive));
        assert_eq!(unreachable_pairs_among(&t, &alive), 0);
        // ...but killing a middle router splits it.
        alive[3] = true;
        alive[2] = false;
        assert!(!is_strongly_connected_among(&t, &alive));
        // {0,1} and {5,4,3} are mutually unreachable: 2*3 ordered pairs
        // each way.
        assert_eq!(unreachable_pairs_among(&t, &alive), 12);
    }

    #[test]
    fn survives_pair_removal_matches_critical_set() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        for (i, j) in duplex_pairs(&mesh) {
            assert!(survives_pair_removal(&mesh, i, j));
        }
        let t = chain();
        assert!(!survives_pair_removal(&t, 0, 1));
    }

    #[test]
    fn empty_alive_mask_is_vacuously_connected() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let alive = vec![false; mesh.num_routers()];
        assert!(is_strongly_connected_among(&mesh, &alive));
        assert_eq!(unreachable_pairs_among(&mesh, &alive), 0);
    }
}
