//! Shared, cached topology analysis with delta evaluation.
//!
//! Every objective the NetSmith search engines optimize is a function of a
//! small set of structural quantities: the all-pairs hop-distance matrix
//! (total/average/demand-weighted hops, diameter), the per-router degrees
//! (spare min-cut capacity), the wire inventory (static power) and the
//! critical-link set (single points of failure).  Before this module each
//! objective recomputed its inputs from scratch on every candidate — a full
//! all-pairs BFS per annealer move, ~10⁵ times per synthesis run.
//!
//! [`TopoAnalysis`] computes the bundle once per candidate and shares it
//! across all objective terms; the expensive optional pieces (wire length,
//! critical links) are filled lazily so objectives that never ask for them
//! never pay for them.  For the annealer's single-link add/remove moves,
//! [`TopoAnalysis::after_move`] updates the distance matrix *incrementally*:
//!
//! * **additions** can only shorten distances, so each source row is
//!   repaired with a decrease-only relaxation seeded at the new link —
//!   untouched rows cost one comparison per added link;
//! * **removals** can only lengthen distances, and only for sources whose
//!   shortest-path DAG used the removed link (`dist(s,a) + 1 == dist(s,b)`);
//!   exactly those rows are re-derived by a fresh BFS on the new topology;
//! * when a removal dirties more than half the rows the update falls back
//!   to a full recomputation, so the delta path is never slower than the
//!   from-scratch one by more than a constant factor.
//!
//! The incremental distances are exact (integer hop counts, no floating
//! point drift), which the property tests assert by replaying random move
//! sequences against from-scratch analyses.

use crate::layout::RouterId;
use crate::metrics::{self, UNREACHABLE};
use crate::resilience;
use crate::topology::Topology;
use crate::traffic::DemandMatrix;
use std::cell::OnceCell;
use std::collections::VecDeque;

/// Fraction (numerator/denominator) of rows that may be dirtied by link
/// removals before [`TopoAnalysis::after_move`] abandons the incremental
/// update and recomputes from scratch.
const FULL_RECOMPUTE_NUM: usize = 1;
const FULL_RECOMPUTE_DEN: usize = 2;

/// Wire inventory shared by the energy terms: total length and the physical
/// link count (a duplex pair counts once, matching
/// [`Topology::total_wire_length_mm`] / [`Topology::num_links`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireStats {
    /// Total wire length in millimetres.
    pub total_mm: f64,
    /// Number of physical links.
    pub num_links: usize,
}

/// Cached structural analysis of one candidate topology.
///
/// Create with [`TopoAnalysis::new`]; derive the analysis of a neighbouring
/// candidate (one move away) with [`TopoAnalysis::after_move`].  The lazily
/// cached members ([`TopoAnalysis::critical_links`],
/// [`TopoAnalysis::wire_stats`]) take the topology as an argument: callers
/// must pass the same topology the analysis was built from.
#[derive(Debug, Clone)]
pub struct TopoAnalysis {
    n: usize,
    /// Row-major `n x n` hop distances ([`UNREACHABLE`] when no path).
    dist: Vec<u32>,
    /// Per-source sum of finite distances.
    row_sum: Vec<u64>,
    /// Per-source count of unreachable destinations.
    row_unreachable: Vec<u32>,
    out_deg: Vec<u32>,
    in_deg: Vec<u32>,
    wire: OnceCell<WireStats>,
    critical: OnceCell<Vec<(RouterId, RouterId)>>,
}

impl TopoAnalysis {
    /// Analyse a topology from scratch (one BFS per source).
    pub fn new(topo: &Topology) -> Self {
        let n = topo.num_routers();
        let dist = metrics::all_pairs_hops(topo);
        let mut analysis = TopoAnalysis {
            n,
            dist,
            row_sum: vec![0; n],
            row_unreachable: vec![0; n],
            out_deg: (0..n).map(|r| topo.out_degree(r) as u32).collect(),
            in_deg: (0..n).map(|r| topo.in_degree(r) as u32).collect(),
            wire: OnceCell::new(),
            critical: OnceCell::new(),
        };
        for s in 0..n {
            analysis.refresh_row_aggregate(s);
        }
        analysis
    }

    /// The analysis of `topo`, a topology derived from this analysis's
    /// topology by removing the directed links in `removed` and then adding
    /// the directed links in `added` (each directed pair at most once).
    ///
    /// Distances are updated incrementally where profitable and recomputed
    /// from scratch otherwise; either way the result is identical to
    /// `TopoAnalysis::new(topo)`.
    pub fn after_move(
        &self,
        topo: &Topology,
        removed: &[(RouterId, RouterId)],
        added: &[(RouterId, RouterId)],
    ) -> Self {
        let n = self.n;
        debug_assert_eq!(topo.num_routers(), n, "analysis/topology size mismatch");

        // A source row is invalidated by a removal only when the removed
        // link was *tight* from that source (on some shortest path).
        let mut dirty = vec![false; n];
        let mut dirty_count = 0usize;
        for (s, flag) in dirty.iter_mut().enumerate() {
            for &(a, b) in removed {
                let da = self.dist[s * n + a];
                if da != UNREACHABLE && da + 1 == self.dist[s * n + b] {
                    *flag = true;
                    dirty_count += 1;
                    break;
                }
            }
        }
        if dirty_count * FULL_RECOMPUTE_DEN > n * FULL_RECOMPUTE_NUM {
            return TopoAnalysis::new(topo);
        }

        let mut out_deg = self.out_deg.clone();
        let mut in_deg = self.in_deg.clone();
        for &(a, b) in removed {
            debug_assert!(!topo.has_link(a, b) || added.contains(&(a, b)));
            out_deg[a] -= 1;
            in_deg[b] -= 1;
        }
        for &(a, b) in added {
            debug_assert!(topo.has_link(a, b));
            out_deg[a] += 1;
            in_deg[b] += 1;
        }

        let mut analysis = TopoAnalysis {
            n,
            dist: self.dist.clone(),
            row_sum: self.row_sum.clone(),
            row_unreachable: self.row_unreachable.clone(),
            out_deg,
            in_deg,
            wire: OnceCell::new(),
            critical: OnceCell::new(),
        };

        for (s, &row_dirty) in dirty.iter().enumerate() {
            let row = &mut analysis.dist[s * n..(s + 1) * n];
            if row_dirty {
                // Rows whose shortest-path DAG lost a link: re-derive on the
                // new topology (additions included, so the row is final).
                bfs_row(topo, s, row);
            } else if !added.is_empty() {
                // Clean rows are still valid for the link-removed graph;
                // additions can only shorten, so a decrease-only relaxation
                // seeded at the new links repairs the row exactly.
                relax_row_with_additions(topo, row, added);
            } else {
                continue;
            }
            analysis.refresh_row_aggregate(s);
        }
        analysis
    }

    fn refresh_row_aggregate(&mut self, s: usize) {
        let row = &self.dist[s * self.n..(s + 1) * self.n];
        let mut sum = 0u64;
        let mut unreachable = 0u32;
        for (d, &h) in row.iter().enumerate() {
            if d == s {
                continue;
            }
            if h == UNREACHABLE {
                unreachable += 1;
            } else {
                sum += h as u64;
            }
        }
        self.row_sum[s] = sum;
        self.row_unreachable[s] = unreachable;
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.n
    }

    /// Shortest-path hop distance, `None` when unreachable.
    pub fn hop_distance(&self, s: RouterId, d: RouterId) -> Option<u32> {
        let h = self.dist[s * self.n + d];
        (h != UNREACHABLE).then_some(h)
    }

    /// Number of ordered `(s, d)` pairs (s != d) with no directed path.
    pub fn unreachable_pairs(&self) -> usize {
        self.row_unreachable.iter().map(|&u| u as usize).sum()
    }

    /// True when every router reaches every other router.
    pub fn is_connected(&self) -> bool {
        self.row_unreachable.iter().all(|&u| u == 0)
    }

    /// Total hop count over ordered pairs, `None` when disconnected.
    pub fn total_hops(&self) -> Option<u64> {
        self.is_connected().then(|| self.row_sum.iter().sum())
    }

    /// Average hop count (`f64::INFINITY` when disconnected).
    pub fn average_hops(&self) -> f64 {
        match self.total_hops() {
            Some(total) => total as f64 / (self.n as f64 * (self.n as f64 - 1.0)),
            None => f64::INFINITY,
        }
    }

    /// Network diameter, `None` when disconnected.
    pub fn diameter(&self) -> Option<u32> {
        if !self.is_connected() {
            return None;
        }
        self.dist
            .iter()
            .filter(|&&h| h != UNREACHABLE)
            .max()
            .copied()
    }

    /// Demand-weighted average hop count (`f64::INFINITY` when some pair
    /// with positive demand is unreachable), mirroring
    /// [`metrics::weighted_average_hops`] but reusing the cached distances.
    pub fn demand_weighted_hops(&self, demand: &DemandMatrix) -> f64 {
        let n = self.n;
        assert_eq!(demand.num_nodes(), n, "demand matrix size mismatch");
        let mut total = 0.0;
        let mut weight = 0.0;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let w = demand.demand(s, d);
                if w <= 0.0 {
                    continue;
                }
                let h = self.dist[s * n + d];
                if h == UNREACHABLE {
                    return f64::INFINITY;
                }
                total += w * h as f64;
                weight += w;
            }
        }
        if weight == 0.0 {
            0.0
        } else {
            total / weight
        }
    }

    /// Out-degree of a router.
    pub fn out_degree(&self, r: RouterId) -> usize {
        self.out_deg[r] as usize
    }

    /// In-degree of a router.
    pub fn in_degree(&self, r: RouterId) -> usize {
        self.in_deg[r] as usize
    }

    /// Minimum over routers of `min(out_degree, in_degree)` — the spare
    /// min-cut capacity proxy of [`resilience::min_directional_degree`].
    pub fn min_directional_degree(&self) -> usize {
        (0..self.n)
            .map(|r| self.out_deg[r].min(self.in_deg[r]) as usize)
            .min()
            .unwrap_or(0)
    }

    /// The critical (articulation) duplex pairs of the topology, computed
    /// on first use and cached.  `topo` must be the topology this analysis
    /// was built from.
    pub fn critical_links(&self, topo: &Topology) -> &[(RouterId, RouterId)] {
        debug_assert_eq!(topo.num_routers(), self.n);
        self.critical
            .get_or_init(|| resilience::critical_link_pairs(topo))
    }

    /// Total wire length and physical link count, computed on first use and
    /// cached.  `topo` must be the topology this analysis was built from.
    pub fn wire_stats(&self, topo: &Topology) -> WireStats {
        debug_assert_eq!(topo.num_routers(), self.n);
        *self.wire.get_or_init(|| WireStats {
            total_mm: topo.total_wire_length_mm(),
            num_links: topo.num_links(),
        })
    }
}

/// One BFS row over the directed adjacency of `topo`.
fn bfs_row(topo: &Topology, s: usize, row: &mut [u32]) {
    let n = row.len();
    row.fill(UNREACHABLE);
    row[s] = 0;
    let mut queue = VecDeque::with_capacity(n);
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        let du = row[u];
        for (v, d) in row.iter_mut().enumerate() {
            if *d == UNREACHABLE && topo.has_link(u, v) {
                *d = du + 1;
                queue.push_back(v);
            }
        }
    }
}

/// Decrease-only repair of one source row after link additions: seed a
/// relaxation queue at every added link that shortens a path, then
/// propagate improvements along outgoing links of the *new* topology.
fn relax_row_with_additions(topo: &Topology, row: &mut [u32], added: &[(RouterId, RouterId)]) {
    let mut queue = VecDeque::new();
    for &(a, b) in added {
        let da = row[a];
        if da != UNREACHABLE && da + 1 < row[b] {
            row[b] = da + 1;
            queue.push_back(b);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = row[u];
        for (v, d) in row.iter_mut().enumerate() {
            if du + 1 < *d && topo.has_link(u, v) {
                *d = du + 1;
                queue.push_back(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert;
    use crate::layout::Layout;
    use crate::linkclass::LinkClass;

    fn assert_matches_scratch(analysis: &TopoAnalysis, topo: &Topology) {
        let scratch = TopoAnalysis::new(topo);
        let n = topo.num_routers();
        for s in 0..n {
            for d in 0..n {
                assert_eq!(
                    analysis.hop_distance(s, d),
                    scratch.hop_distance(s, d),
                    "dist({s},{d}) mismatch"
                );
            }
            assert_eq!(analysis.out_degree(s), scratch.out_degree(s));
            assert_eq!(analysis.in_degree(s), scratch.in_degree(s));
        }
        assert_eq!(analysis.total_hops(), scratch.total_hops());
        assert_eq!(analysis.unreachable_pairs(), scratch.unreachable_pairs());
    }

    #[test]
    fn fresh_analysis_matches_metrics() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let analysis = TopoAnalysis::new(&mesh);
        assert_eq!(analysis.total_hops(), metrics::total_hops(&mesh));
        assert_eq!(analysis.diameter(), metrics::diameter(&mesh));
        assert!((analysis.average_hops() - metrics::average_hops(&mesh)).abs() < 1e-12);
        assert_eq!(
            analysis.min_directional_degree(),
            resilience::min_directional_degree(&mesh)
        );
        let stats = analysis.wire_stats(&mesh);
        assert_eq!(stats.total_mm, mesh.total_wire_length_mm());
        assert_eq!(stats.num_links, mesh.num_links());
        assert_eq!(
            analysis.critical_links(&mesh),
            resilience::critical_link_pairs(&mesh).as_slice()
        );
    }

    #[test]
    fn addition_delta_matches_scratch() {
        let layout = Layout::noi_4x5();
        let mut topo = expert::mesh(&layout);
        let analysis = TopoAnalysis::new(&topo);
        // Add a diagonal link (mesh is Small class; force via Custom not
        // needed — (0,6) spans (1,1) which Small allows).
        topo.add_link(0, 6);
        let moved = analysis.after_move(&topo, &[], &[(0, 6)]);
        assert_matches_scratch(&moved, &topo);
    }

    #[test]
    fn removal_delta_matches_scratch() {
        let layout = Layout::noi_4x5();
        let mut topo = expert::folded_torus(&layout);
        let analysis = TopoAnalysis::new(&topo);
        let (a, b) = topo.links().next().unwrap();
        topo.remove_link(a, b);
        let moved = analysis.after_move(&topo, &[(a, b)], &[]);
        assert_matches_scratch(&moved, &topo);
    }

    #[test]
    fn rewire_delta_matches_scratch() {
        let layout = Layout::noi_4x5();
        let mut topo = expert::mesh(&layout);
        let analysis = TopoAnalysis::new(&topo);
        // Swap (0,1) for (0,6): a remove+add compound move.
        topo.remove_link(0, 1);
        topo.add_link(0, 6);
        let moved = analysis.after_move(&topo, &[(0, 1)], &[(0, 6)]);
        assert_matches_scratch(&moved, &topo);
    }

    #[test]
    fn disconnecting_removal_delta_matches_scratch() {
        // A chain: removing a middle pair splits the network; the delta
        // path must agree on the unreachable accounting.
        let layout = Layout::interposer_grid(2, 3, 4);
        let mut topo = Topology::from_bidirectional_links(
            "chain",
            layout,
            LinkClass::Custom(crate::linkclass::LinkSpan::new(8, 8)),
            &[(0, 1), (1, 2), (2, 5), (5, 4), (4, 3)],
        );
        let analysis = TopoAnalysis::new(&topo);
        topo.remove_link(1, 2);
        topo.remove_link(2, 1);
        let moved = analysis.after_move(&topo, &[(1, 2), (2, 1)], &[]);
        assert_matches_scratch(&moved, &topo);
        assert!(!moved.is_connected());
        assert_eq!(moved.total_hops(), None);
        assert_eq!(moved.average_hops(), f64::INFINITY);
    }

    #[test]
    fn reconnecting_addition_delta_matches_scratch() {
        let layout = Layout::interposer_grid(2, 3, 4);
        let class = LinkClass::Custom(crate::linkclass::LinkSpan::new(8, 8));
        let mut topo =
            Topology::from_bidirectional_links("split", layout, class, &[(0, 1), (4, 3)]);
        let analysis = TopoAnalysis::new(&topo);
        assert!(!analysis.is_connected());
        topo.add_link(1, 4);
        let moved = analysis.after_move(&topo, &[], &[(1, 4)]);
        assert_matches_scratch(&moved, &topo);
    }

    #[test]
    fn demand_weighted_hops_matches_metrics() {
        let layout = Layout::noi_4x5();
        let topo = expert::kite_medium(&layout);
        let demand = crate::traffic::TrafficPattern::Shuffle.demand_matrix(&layout);
        let analysis = TopoAnalysis::new(&topo);
        let cached = analysis.demand_weighted_hops(&demand);
        let scratch = metrics::weighted_average_hops(&topo, &demand);
        assert!((cached - scratch).abs() < 1e-12);
    }
}
