//! Cut-based bandwidth metrics: bisection bandwidth and the sparsest cut.
//!
//! Bisection bandwidth (the traditional metric reported by the expert
//! topology papers and in Table II) is the minimum number of links crossing
//! any *balanced* bipartition of the routers.  The sparsest cut is the more
//! general — and tighter — cut-based throughput bottleneck used by NetSmith
//! as its bandwidth objective (constraint C6 of Table I): over every
//! bipartition `(U, V)` of the routers, the crossing capacity is normalized
//! by `|U| * |V|`, which is proportional to the uniform-traffic demand that
//! must cross the cut.  For asymmetric topologies the minimum of the two
//! directions is taken, because the weaker direction is the true bottleneck.
//!
//! For the paper's 20-router configurations the sparsest cut is computed
//! exhaustively (2^19 bipartitions); for larger networks (30/48 routers) an
//! exhaustive sweep is infeasible, so a seeded multi-start local-search
//! (Kernighan–Lin style single-node moves) is used instead, which matches
//! how we use the metric (as an optimization objective and reporting
//! statistic, not a proof of optimality).

use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Largest router count for which cuts are enumerated exhaustively.
pub const EXHAUSTIVE_LIMIT: usize = 24;

/// Report describing the minimizing cut found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutReport {
    /// Routers in partition `U` (the complement forms `V`).
    pub partition: Vec<usize>,
    /// Directed links crossing from `U` to `V`.
    pub crossing_forward: usize,
    /// Directed links crossing from `V` to `U`.
    pub crossing_backward: usize,
    /// `min(forward, backward) / (|U| * |V|)` — the normalized sparsest-cut
    /// bandwidth `B(U, V)` from the paper's constraint C6.
    pub normalized_bandwidth: f64,
    /// Whether the minimizing partition happens to be a bisection.
    pub is_bisection: bool,
    /// Whether the value is exact (exhaustive enumeration) or heuristic.
    pub exact: bool,
}

impl CutReport {
    /// Bottleneck crossing capacity (the weaker direction).
    pub fn crossing_min(&self) -> usize {
        self.crossing_forward.min(self.crossing_backward)
    }
}

/// Count directed links crossing a bipartition given membership flags
/// (`true` = in `U`).  Returns `(U -> V, V -> U)`.
pub fn crossing_links(topo: &Topology, in_u: &[bool]) -> (usize, usize) {
    let mut fwd = 0;
    let mut bwd = 0;
    for (i, j) in topo.links() {
        match (in_u[i], in_u[j]) {
            (true, false) => fwd += 1,
            (false, true) => bwd += 1,
            _ => {}
        }
    }
    (fwd, bwd)
}

fn report_for(topo: &Topology, in_u: &[bool], exact: bool) -> CutReport {
    let n = topo.num_routers();
    let (fwd, bwd) = crossing_links(topo, in_u);
    let size_u = in_u.iter().filter(|&&b| b).count();
    let size_v = n - size_u;
    let norm = if size_u == 0 || size_v == 0 {
        f64::INFINITY
    } else {
        fwd.min(bwd) as f64 / (size_u * size_v) as f64
    };
    CutReport {
        partition: (0..n).filter(|&i| in_u[i]).collect(),
        crossing_forward: fwd,
        crossing_backward: bwd,
        normalized_bandwidth: norm,
        is_bisection: size_u == size_v || size_u.abs_diff(size_v) == 1,
        exact,
    }
}

/// Exhaustive sparsest cut over all bipartitions (requires `n <=
/// EXHAUSTIVE_LIMIT`).  The partition containing router 0 is fixed to `U`
/// to avoid enumerating mirror-image cuts twice.
pub fn sparsest_cut_exhaustive(topo: &Topology) -> CutReport {
    let n = topo.num_routers();
    assert!(
        n <= EXHAUSTIVE_LIMIT,
        "exhaustive sparsest cut limited to {EXHAUSTIVE_LIMIT} routers"
    );
    assert!(n >= 2);
    // Collect links once for the inner loop.
    let links: Vec<(usize, usize)> = topo.links().collect();
    let mut best: Option<(f64, Vec<bool>)> = None;
    // Router 0 always in U; enumerate membership of routers 1..n.
    let combos: u64 = 1u64 << (n - 1);
    for mask in 0..combos {
        let mut in_u = vec![false; n];
        in_u[0] = true;
        let mut size_u = 1usize;
        for b in 0..(n - 1) {
            if (mask >> b) & 1 == 1 {
                in_u[b + 1] = true;
                size_u += 1;
            }
        }
        if size_u == n {
            continue; // V must be non-empty
        }
        let size_v = n - size_u;
        let mut fwd = 0usize;
        let mut bwd = 0usize;
        for &(i, j) in &links {
            match (in_u[i], in_u[j]) {
                (true, false) => fwd += 1,
                (false, true) => bwd += 1,
                _ => {}
            }
        }
        let norm = fwd.min(bwd) as f64 / (size_u * size_v) as f64;
        if best.as_ref().is_none_or(|(b, _)| norm < *b) {
            best = Some((norm, in_u));
        }
    }
    let (_, in_u) = best.expect("at least one cut exists");
    report_for(topo, &in_u, true)
}

/// Heuristic sparsest cut: multi-start single-node-move local search.
pub fn sparsest_cut_heuristic(topo: &Topology, starts: usize, seed: u64) -> CutReport {
    let n = topo.num_routers();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best: Option<CutReport> = None;
    for _ in 0..starts.max(1) {
        let mut in_u = vec![false; n];
        // Random initial partition, non-trivial.
        loop {
            let mut size_u = 0;
            for flag in in_u.iter_mut() {
                *flag = rng.gen_bool(0.5);
                size_u += *flag as usize;
            }
            if size_u > 0 && size_u < n {
                break;
            }
        }
        // Greedy single-node moves until no improvement.
        let mut current = report_for(topo, &in_u, false);
        loop {
            let mut improved = false;
            for v in 0..n {
                let size_u = in_u.iter().filter(|&&b| b).count();
                // Keep both sides non-empty.
                if (in_u[v] && size_u == 1) || (!in_u[v] && size_u == n - 1) {
                    continue;
                }
                in_u[v] = !in_u[v];
                let candidate = report_for(topo, &in_u, false);
                if candidate.normalized_bandwidth < current.normalized_bandwidth - 1e-12 {
                    current = candidate;
                    improved = true;
                } else {
                    in_u[v] = !in_u[v];
                }
            }
            if !improved {
                break;
            }
        }
        if best
            .as_ref()
            .is_none_or(|b| current.normalized_bandwidth < b.normalized_bandwidth)
        {
            best = Some(current);
        }
    }
    best.expect("at least one start")
}

/// Sparsest cut with automatic method selection: exhaustive when the router
/// count permits, heuristic otherwise.
pub fn sparsest_cut(topo: &Topology) -> CutReport {
    if topo.num_routers() <= EXHAUSTIVE_LIMIT {
        sparsest_cut_exhaustive(topo)
    } else {
        sparsest_cut_heuristic(topo, 32, 0x5EEDCA7)
    }
}

/// Bisection bandwidth: minimum crossing capacity (weaker direction) over
/// balanced bipartitions.  Exhaustive for small networks; for larger ones a
/// heuristic restricted to balanced partitions is used.  The value reported
/// matches how the expert-topology papers count it: number of (full-duplex)
/// links crossing the bisection, i.e. the directed crossing count of the
/// weaker direction.
pub fn bisection_bandwidth(topo: &Topology) -> f64 {
    let n = topo.num_routers();
    if n <= EXHAUSTIVE_LIMIT {
        bisection_exhaustive(topo)
    } else {
        bisection_heuristic(topo, 64, 0xB15EC)
    }
}

fn bisection_exhaustive(topo: &Topology) -> f64 {
    let n = topo.num_routers();
    let half = n / 2;
    let links: Vec<(usize, usize)> = topo.links().collect();
    let mut best = f64::INFINITY;
    let combos: u64 = 1u64 << (n - 1);
    for mask in 0..combos {
        let size_u = 1 + mask.count_ones() as usize;
        if size_u != half {
            continue;
        }
        let mut in_u = vec![false; n];
        in_u[0] = true;
        for b in 0..(n - 1) {
            if (mask >> b) & 1 == 1 {
                in_u[b + 1] = true;
            }
        }
        let mut fwd = 0usize;
        let mut bwd = 0usize;
        for &(i, j) in &links {
            match (in_u[i], in_u[j]) {
                (true, false) => fwd += 1,
                (false, true) => bwd += 1,
                _ => {}
            }
        }
        best = best.min(fwd.min(bwd) as f64);
    }
    best
}

fn bisection_heuristic(topo: &Topology, starts: usize, seed: u64) -> f64 {
    let n = topo.num_routers();
    let half = n / 2;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best = f64::INFINITY;
    for _ in 0..starts {
        // Random balanced partition.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut in_u = vec![false; n];
        for &r in order.iter().take(half) {
            in_u[r] = true;
        }
        // Pairwise swap local search maintaining balance.  After an accepted
        // swap the current `a` is no longer in U, so the inner scan must be
        // restarted (otherwise further swaps would unbalance the partition).
        let mut current = {
            let (f, b) = crossing_links(topo, &in_u);
            f.min(b) as f64
        };
        loop {
            let mut improved = false;
            'outer: for a in 0..n {
                if !in_u[a] {
                    continue;
                }
                for b in 0..n {
                    if in_u[b] {
                        continue;
                    }
                    in_u[a] = false;
                    in_u[b] = true;
                    let (f, w) = crossing_links(topo, &in_u);
                    let cand = f.min(w) as f64;
                    if cand < current {
                        current = cand;
                        improved = true;
                        break 'outer;
                    } else {
                        in_u[a] = true;
                        in_u[b] = false;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        best = best.min(current);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert;
    use crate::layout::Layout;
    use crate::linkclass::{LinkClass, LinkSpan};

    #[test]
    fn ring_sparsest_cut() {
        // Bidirectional ring over 6 routers: any contiguous cut crosses 2
        // links each way; the sparsest cut balances the partition.
        let layout = Layout::interposer_grid(2, 3, 4);
        let links = [(0, 1), (1, 2), (2, 5), (5, 4), (4, 3), (3, 0)];
        let t = Topology::from_bidirectional_links(
            "ring6",
            layout,
            LinkClass::Custom(LinkSpan::new(8, 8)),
            &links,
        );
        let cut = sparsest_cut_exhaustive(&t);
        assert!(cut.exact);
        assert_eq!(cut.crossing_min(), 2);
        // Minimum normalized value is 2 / (3*3).
        assert!((cut.normalized_bandwidth - 2.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn mesh_bisection_matches_row_cut() {
        // 4x5 mesh: the balanced 10/10 cut with the fewest crossing links is
        // the horizontal cut between rows 1 and 2, severing 5 column links.
        // (Column cuts sever only 4 links but are 8/12, not balanced.)
        let mesh = expert::mesh(&Layout::noi_4x5());
        let bb = bisection_bandwidth(&mesh);
        assert_eq!(bb, 5.0);
    }

    #[test]
    fn heuristic_close_to_exhaustive_on_small_networks() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let exact = sparsest_cut_exhaustive(&mesh);
        let heur = sparsest_cut_heuristic(&mesh, 16, 42);
        assert!(heur.normalized_bandwidth >= exact.normalized_bandwidth - 1e-12);
        assert!(heur.normalized_bandwidth <= exact.normalized_bandwidth * 1.5 + 1e-9);
    }

    #[test]
    fn asymmetric_direction_minimum_is_used() {
        // Two routers connected one way only: the reverse direction has zero
        // capacity, so the sparsest cut must be zero.
        let layout = Layout::interposer_grid(2, 2, 4);
        let mut t = Topology::empty("one-way", layout, LinkClass::Large);
        t.add_link(0, 1);
        t.add_link(1, 0);
        t.add_link(1, 3);
        t.add_link(3, 1);
        t.add_link(3, 2);
        t.add_link(2, 3);
        t.add_link(2, 0);
        // Missing 0 -> 2 reverse: cut {0,1} vs {2,3} has fwd 1 (1->3? no..)
        let cut = sparsest_cut_exhaustive(&t);
        assert!(cut.normalized_bandwidth <= 0.25 + 1e-12);
    }

    #[test]
    fn crossing_links_counts_directions_separately() {
        let layout = Layout::interposer_grid(2, 2, 4);
        let mut t = Topology::empty("x", layout, LinkClass::Large);
        t.add_link(0, 3);
        t.add_link(3, 0);
        t.add_link(1, 2);
        let in_u = vec![true, true, false, false];
        let (f, b) = crossing_links(&t, &in_u);
        assert_eq!(f, 2);
        assert_eq!(b, 1);
    }

    #[test]
    fn heuristic_bisection_stays_balanced_on_larger_layouts() {
        // 6x5 mesh: the minimum balanced (15/15) cut severs the 5 column
        // links between two rows; the heuristic reports a real cut, so it
        // can never be below that optimum and must stay close to it.
        let mesh = expert::mesh(&Layout::noi_6x5());
        let bb = bisection_heuristic(&mesh, 64, 0xB15EC);
        assert!(bb >= 5.0, "heuristic produced an impossible cut {bb}");
        assert!(bb <= 7.0, "heuristic far from the optimum: {bb}");
    }

    #[test]
    fn folded_torus_beats_mesh_on_bisection() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let torus = expert::folded_torus(&layout);
        assert!(bisection_bandwidth(&torus) > bisection_bandwidth(&mesh));
    }

    #[test]
    fn cut_report_partition_is_consistent() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let cut = sparsest_cut(&mesh);
        assert!(!cut.partition.is_empty());
        assert!(cut.partition.len() < 20);
        assert!(cut.partition.contains(&0));
    }
}
