//! # netsmith-power
//!
//! A first-order area/power model for NoI topologies, standing in for the
//! DSENT analysis of the paper's Figure 9 (22 nm bulk LVT).
//!
//! The model reproduces the structure DSENT reports for these networks:
//!
//! * **Leakage** is dominated by the routers and is essentially the same
//!   across topologies because every design uses the same number of routers
//!   at the same radix; wire leakage adds a small length-proportional term.
//! * **Dynamic power** scales with activity (flits traversed per cycle) and
//!   with the wire length each traversal drives, times the NoI clock and
//!   the per-millimetre wire capacitance.
//! * **Area** splits into router area (identical across topologies) and
//!   wire area (proportional to total link length), with wires dominating.
//!
//! All figures are reported normalized to the mesh baseline, exactly like
//! the paper's Figure 9.

pub mod model;

pub use model::{
    area_report, power_report_from_activity, relative_to, static_power_mw, AreaReport, PowerConfig,
    PowerReport,
};
