//! The analytical area/power model.

use netsmith_sim::{ActivityProfile, SimConfig};
use netsmith_topo::Topology;
use serde::{Deserialize, Serialize};

/// Technology and circuit constants (22 nm-class defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Router leakage power per router in milliwatts.
    pub router_leakage_mw: f64,
    /// Wire leakage (repeaters) per millimetre in milliwatts.
    pub wire_leakage_mw_per_mm: f64,
    /// Endpoint leakage per physical link in milliwatts: the two port
    /// macros (SerDes, link buffers, clocking) a link keeps powered at
    /// both ends even when no flit moves.  Counted per full-duplex pair,
    /// like the wire run itself; this is the static component power
    /// gating a link actually recovers, on top of its repeaters.
    pub link_port_leakage_mw: f64,
    /// Dynamic energy per flit per router traversal in picojoules.
    pub router_energy_pj_per_flit: f64,
    /// Dynamic energy per flit per millimetre of wire in picojoules.
    pub wire_energy_pj_per_flit_mm: f64,
    /// Router area in square millimetres (radix-4, 8B links).
    pub router_area_mm2: f64,
    /// Wire area per millimetre of link (all repeated wires of one 8B
    /// full-duplex link), in square millimetres per millimetre.
    pub wire_area_mm2_per_mm: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            router_leakage_mw: 4.0,
            wire_leakage_mw_per_mm: 0.15,
            link_port_leakage_mw: 3.0,
            router_energy_pj_per_flit: 3.0,
            wire_energy_pj_per_flit_mm: 0.9,
            router_area_mm2: 0.045,
            wire_area_mm2_per_mm: 0.012,
        }
    }
}

/// Power broken into static (leakage) and dynamic components, in mW.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    pub static_mw: f64,
    pub dynamic_mw: f64,
}

impl PowerReport {
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }
}

/// Area broken into router and wire components, in mm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    pub router_mm2: f64,
    pub wire_mm2: f64,
}

impl AreaReport {
    pub fn total_mm2(&self) -> f64 {
        self.router_mm2 + self.wire_mm2
    }
}

/// Static (leakage) power of a topology in mW: router leakage,
/// length-proportional wire leakage, and per-link endpoint port leakage.
pub fn static_power_mw(topo: &Topology, config: &PowerConfig) -> f64 {
    topo.num_routers() as f64 * config.router_leakage_mw
        + topo.total_wire_length_mm() * config.wire_leakage_mw_per_mm
        + topo.num_links() as f64 * config.link_port_leakage_mw
}

/// Compute the power of a topology from the simulator's measured per-link
/// activity.
///
/// Every flit traversal is charged the wire energy of the *specific* link
/// it crossed, so topologies that concentrate traffic on short links are
/// not over-charged by the network-average wire length (and vice versa) —
/// unlike the retired scalar-utilization model, which fed the whole
/// network one hand-picked activity factor.
pub fn power_report_from_activity(
    topo: &Topology,
    config: &PowerConfig,
    sim: &SimConfig,
    activity: &ActivityProfile,
) -> PowerReport {
    let static_mw = static_power_mw(topo, config);
    let mut dynamic_mw = 0.0;
    if activity.measured_cycles > 0 {
        let layout = topo.layout();
        for link in &activity.links {
            let flits_per_ns = link.flits as f64 / activity.measured_cycles as f64 * sim.clock_ghz;
            let energy_per_flit_pj = config.router_energy_pj_per_flit
                + config.wire_energy_pj_per_flit_mm * layout.distance_mm(link.from, link.to);
            dynamic_mw += flits_per_ns * energy_per_flit_pj;
        }
    }
    PowerReport {
        static_mw,
        dynamic_mw,
    }
}

/// Compute the area of a topology.
pub fn area_report(topo: &Topology, config: &PowerConfig) -> AreaReport {
    let n = topo.num_routers() as f64;
    AreaReport {
        router_mm2: n * config.router_area_mm2,
        wire_mm2: topo.total_wire_length_mm() * config.wire_area_mm2_per_mm,
    }
}

/// Normalize a value against a baseline (mesh in the paper's Figure 9).
pub fn relative_to(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_sim::LinkActivity;
    use netsmith_topo::expert;
    use netsmith_topo::{Layout, LinkClass};

    /// A uniform activity profile with every link busy `utilization` of the
    /// window.
    fn uniform_activity(topo: &Topology, utilization: f64) -> ActivityProfile {
        let cycles = 1_000u64;
        ActivityProfile {
            measured_cycles: cycles,
            links: topo
                .links()
                .map(|(from, to)| LinkActivity {
                    from,
                    to,
                    flits: (utilization * cycles as f64) as u64,
                    busy_cycles: (utilization * cycles as f64) as u64,
                })
                .collect(),
            routers: Vec::new(),
        }
    }

    #[test]
    fn leakage_is_similar_across_equal_router_topologies() {
        let layout = Layout::noi_4x5();
        let cfg = PowerConfig::default();
        let sim = SimConfig::default();
        let mesh_topo = expert::mesh(&layout);
        let kite_topo = expert::kite_large(&layout);
        let mesh =
            power_report_from_activity(&mesh_topo, &cfg, &sim, &uniform_activity(&mesh_topo, 0.2));
        let kite =
            power_report_from_activity(&kite_topo, &cfg, &sim, &uniform_activity(&kite_topo, 0.2));
        let ratio = kite.static_mw / mesh.static_mw;
        assert!(ratio > 0.9 && ratio < 1.4, "leakage ratio {ratio}");
    }

    #[test]
    fn dynamic_power_scales_with_utilization_and_clock() {
        let layout = Layout::noi_4x5();
        let cfg = PowerConfig::default();
        let topo = expert::folded_torus(&layout);
        let slow = SimConfig {
            clock_ghz: 2.7,
            ..SimConfig::default()
        };
        let fast = SimConfig {
            clock_ghz: 3.6,
            ..SimConfig::default()
        };
        let low = power_report_from_activity(&topo, &cfg, &slow, &uniform_activity(&topo, 0.1));
        let high = power_report_from_activity(&topo, &cfg, &slow, &uniform_activity(&topo, 0.3));
        assert!(high.dynamic_mw > low.dynamic_mw);
        let faster = power_report_from_activity(&topo, &cfg, &fast, &uniform_activity(&topo, 0.1));
        assert!(faster.dynamic_mw > low.dynamic_mw);
        // Static power does not depend on activity.
        assert!((high.static_mw - low.static_mw).abs() < 1e-9);
    }

    #[test]
    fn measured_report_matches_analytic_expectation_on_uniform_activity() {
        // When every link carries the same load, the per-link accounting
        // must agree with the closed-form expectation: flit rate per link
        // times (router energy + wire energy for that link's length),
        // summed over links.  On the mesh every link has the same length,
        // so the sum collapses to one product.
        let layout = Layout::noi_4x5();
        let cfg = PowerConfig::default();
        let sim = SimConfig::default();
        let mesh = expert::mesh(&layout);
        let utilization = 0.2;
        let activity = uniform_activity(&mesh, utilization);
        let measured = power_report_from_activity(&mesh, &cfg, &sim, &activity);
        let link_mm = mesh.total_wire_length_mm() / mesh.num_links() as f64;
        let flits_per_ns = mesh.num_directed_links() as f64 * utilization * sim.clock_ghz;
        let expected_dynamic = flits_per_ns
            * (cfg.router_energy_pj_per_flit + cfg.wire_energy_pj_per_flit_mm * link_mm);
        assert!((measured.static_mw - static_power_mw(&mesh, &cfg)).abs() < 1e-9);
        assert!(
            (measured.dynamic_mw - expected_dynamic).abs() < 1e-6 * expected_dynamic,
            "measured {} vs expected {}",
            measured.dynamic_mw,
            expected_dynamic
        );
    }

    #[test]
    fn measured_report_charges_the_link_actually_used() {
        // Concentrating all traffic on the longest links must cost more
        // dynamic power than the same flit count on the shortest links.
        let layout = Layout::noi_4x5();
        let cfg = PowerConfig::default();
        let sim = SimConfig::default();
        let torus = expert::folded_torus(&layout);
        let mut links: Vec<(usize, usize)> = torus.links().collect();
        links.sort_by(|a, b| {
            layout
                .distance_mm(a.0, a.1)
                .partial_cmp(&layout.distance_mm(b.0, b.1))
                .unwrap()
        });
        let activity_on = |subset: &[(usize, usize)]| ActivityProfile {
            measured_cycles: 1_000,
            links: subset
                .iter()
                .map(|&(from, to)| LinkActivity {
                    from,
                    to,
                    flits: 500,
                    busy_cycles: 500,
                })
                .collect(),
            routers: Vec::new(),
        };
        let short = power_report_from_activity(&torus, &cfg, &sim, &activity_on(&links[..4]));
        let long =
            power_report_from_activity(&torus, &cfg, &sim, &activity_on(&links[links.len() - 4..]));
        assert!(
            long.dynamic_mw > short.dynamic_mw,
            "long {} vs short {}",
            long.dynamic_mw,
            short.dynamic_mw
        );
        assert!((long.static_mw - short.static_mw).abs() < 1e-9);
    }

    #[test]
    fn empty_activity_has_zero_dynamic_power() {
        let layout = Layout::noi_4x5();
        let cfg = PowerConfig::default();
        let sim = SimConfig::default();
        let mesh = expert::mesh(&layout);
        let report = power_report_from_activity(&mesh, &cfg, &sim, &ActivityProfile::empty());
        assert_eq!(report.dynamic_mw, 0.0);
        assert!(report.static_mw > 0.0);
    }

    #[test]
    fn wire_area_dominates_router_area() {
        // The paper notes total wire area is the dominant fraction.
        let layout = Layout::noi_4x5();
        let cfg = PowerConfig::default();
        for topo in expert::all_baselines(&layout) {
            let area = area_report(&topo, &cfg);
            assert!(
                area.wire_mm2 > area.router_mm2,
                "{}: wire {} vs router {}",
                topo.name(),
                area.wire_mm2,
                area.router_mm2
            );
        }
    }

    #[test]
    fn longer_link_classes_use_more_wire_area() {
        let layout = Layout::noi_4x5();
        let cfg = PowerConfig::default();
        let mesh = area_report(&expert::mesh(&layout), &cfg);
        let torus = area_report(&expert::folded_torus(&layout), &cfg);
        assert!(torus.wire_mm2 > mesh.wire_mm2);
    }

    #[test]
    fn interposer_stays_minimally_active() {
        // Router area must stay a tiny fraction of a ~24x22mm interposer
        // (the paper reports under 3%).
        let layout = Layout::noi_4x5();
        let cfg = PowerConfig::default();
        let area = area_report(&expert::kite_large(&layout), &cfg);
        let interposer_mm2 = 24.0 * 22.0;
        assert!(area.router_mm2 / interposer_mm2 < 0.03);
    }

    #[test]
    fn relative_normalization() {
        assert_eq!(relative_to(4.0, 2.0), 2.0);
        assert_eq!(relative_to(1.0, 0.0), 0.0);
    }

    #[test]
    fn empty_topology_has_zero_dynamic_power() {
        let layout = Layout::noi_4x5();
        let cfg = PowerConfig::default();
        let sim = SimConfig::default();
        let t = netsmith_topo::Topology::empty("none", layout, LinkClass::Small);
        let p = power_report_from_activity(&t, &cfg, &sim, &uniform_activity(&t, 0.5));
        assert_eq!(p.dynamic_mw, 0.0);
        assert!(p.static_mw > 0.0);
    }
}
