//! Dense two-phase primal simplex for the LP relaxation.
//!
//! The implementation favours robustness and clarity over raw speed: a
//! dense tableau, Dantzig pricing with a Bland's-rule fallback to prevent
//! cycling, explicit artificial variables in phase 1, and bound handling by
//! shifting variables to zero lower bounds and materialising finite upper
//! bounds as rows.  This is more than adequate for the model sizes the
//! NetSmith formulations produce in tests and for providing LP relaxation
//! bounds inside branch-and-bound.

use crate::model::{Cmp, Model, Sense};
use crate::solution::{Solution, SolveStatus};

/// Numerical tolerance used throughout the solver.
pub const TOL: f64 = 1e-7;

/// Hard cap on simplex pivots per phase (guards against pathological
/// cycling that Bland's rule should already prevent).
const MAX_PIVOTS: usize = 50_000;

/// Pivot count after which pricing switches from Dantzig to Bland's rule.
const BLAND_THRESHOLD: usize = 2_000;

#[derive(Debug)]
struct Tableau {
    /// `rows x cols` constraint matrix, column-major-agnostic dense storage.
    a: Vec<Vec<f64>>,
    /// Right-hand sides (always kept non-negative for the initial basis).
    b: Vec<f64>,
    /// Basis: which column is basic in each row.
    basis: Vec<usize>,
    /// Total number of columns (structural + slack/surplus + artificial).
    cols: usize,
    /// Columns that are artificial variables (banned from re-entering in
    /// phase 2).
    artificial: Vec<bool>,
}

/// Outcome of a single simplex phase.
enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Solve the LP relaxation of `model` (integrality is ignored).
pub fn solve_lp(model: &Model) -> Result<Solution, String> {
    solve_lp_with_overrides(model, &[])
}

/// Solve the LP relaxation with per-variable bound overrides
/// `(var_index, lower, upper)`; used by branch-and-bound so that branching
/// does not need to clone the entire model at every node.
pub fn solve_lp_with_overrides(
    model: &Model,
    overrides: &[(usize, f64, f64)],
) -> Result<Solution, String> {
    let n = model.num_vars();
    // Effective bounds.
    let mut lower: Vec<f64> = model.variables().iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = model.variables().iter().map(|v| v.upper).collect();
    for &(idx, lo, up) in overrides {
        lower[idx] = lo;
        upper[idx] = up;
    }
    for j in 0..n {
        if lower[j] > upper[j] + TOL {
            return Ok(Solution::infeasible());
        }
        if !lower[j].is_finite() {
            return Err(format!("variable {j} has non-finite lower bound"));
        }
    }

    // Shifted problem: y_j = x_j - lower_j >= 0.
    // Row list: (coefficients over y, cmp, rhs).
    let mut rows: Vec<(Vec<f64>, Cmp, f64)> = Vec::new();
    for c in model.constraints() {
        let mut coeffs = vec![0.0; n];
        let mut shift = 0.0;
        for (idx, coef) in c.expr.terms() {
            coeffs[idx] += coef;
            shift += coef * lower[idx];
        }
        let rhs = c.rhs - c.expr.constant_part() - shift;
        rows.push((coeffs, c.cmp, rhs));
    }
    // Finite upper bounds become rows y_j <= upper_j - lower_j.
    for j in 0..n {
        if upper[j].is_finite() {
            let mut coeffs = vec![0.0; n];
            coeffs[j] = 1.0;
            rows.push((coeffs, Cmp::Le, upper[j] - lower[j]));
        }
    }

    // Canonicalise: non-negative rhs.
    for (coeffs, cmp, rhs) in &mut rows {
        if *rhs < 0.0 {
            for c in coeffs.iter_mut() {
                *c = -*c;
            }
            *rhs = -*rhs;
            *cmp = match *cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [structural (n)] [slack/surplus (one per row needing them)] [artificials].
    let mut num_slack = 0usize;
    for (_, cmp, _) in &rows {
        if matches!(cmp, Cmp::Le | Cmp::Ge) {
            num_slack += 1;
        }
    }
    let mut num_artificial = 0usize;
    for (_, cmp, _) in &rows {
        if matches!(cmp, Cmp::Ge | Cmp::Eq) {
            num_artificial += 1;
        }
    }
    let cols = n + num_slack + num_artificial;
    let mut a = vec![vec![0.0; cols]; m];
    let mut b = vec![0.0; m];
    let mut basis = vec![0usize; m];
    let mut artificial = vec![false; cols];

    let mut slack_cursor = n;
    let mut art_cursor = n + num_slack;
    for (i, (coeffs, cmp, rhs)) in rows.iter().enumerate() {
        a[i][..n].copy_from_slice(coeffs);
        b[i] = *rhs;
        match cmp {
            Cmp::Le => {
                a[i][slack_cursor] = 1.0;
                basis[i] = slack_cursor;
                slack_cursor += 1;
            }
            Cmp::Ge => {
                a[i][slack_cursor] = -1.0;
                slack_cursor += 1;
                a[i][art_cursor] = 1.0;
                artificial[art_cursor] = true;
                basis[i] = art_cursor;
                art_cursor += 1;
            }
            Cmp::Eq => {
                a[i][art_cursor] = 1.0;
                artificial[art_cursor] = true;
                basis[i] = art_cursor;
                art_cursor += 1;
            }
        }
    }

    let mut tab = Tableau {
        a,
        b,
        basis,
        cols,
        artificial,
    };
    let mut work = 0u64;

    // Phase 1: minimise the sum of artificial variables.
    if num_artificial > 0 {
        let mut phase1_cost = vec![0.0; cols];
        for (j, is_art) in tab.artificial.iter().enumerate() {
            if *is_art {
                phase1_cost[j] = 1.0;
            }
        }
        let (outcome, iterations) = run_phase(&mut tab, &phase1_cost, false);
        work += iterations;
        match outcome {
            PhaseOutcome::Unbounded => {
                return Err("phase 1 reported unbounded (internal error)".to_string())
            }
            PhaseOutcome::IterationLimit => {
                return Err("simplex iteration limit exceeded in phase 1".to_string())
            }
            PhaseOutcome::Optimal => {}
        }
        // Residual infeasibility = total value still carried by artificial
        // basic variables.
        let residual: f64 = tab
            .basis
            .iter()
            .enumerate()
            .filter(|(_, &j)| tab.artificial[j])
            .map(|(i, _)| tab.b[i])
            .sum();
        if residual > 1e-6 {
            return Ok(Solution {
                work,
                ..Solution::infeasible()
            });
        }
        drive_out_artificials(&mut tab);
    }

    // Phase 2: original objective.  Minimise; flip sign for maximisation.
    let sense_scale = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut phase2_cost = vec![0.0; cols];
    for (j, var) in model.variables().iter().enumerate() {
        phase2_cost[j] = sense_scale * var.objective;
    }
    let (outcome, iterations) = run_phase(&mut tab, &phase2_cost, true);
    work += iterations;
    match outcome {
        PhaseOutcome::Unbounded => {
            return Ok(Solution {
                work,
                ..Solution::unbounded()
            })
        }
        PhaseOutcome::IterationLimit => {
            return Err("simplex iteration limit exceeded in phase 2".to_string())
        }
        PhaseOutcome::Optimal => {}
    }

    // Extract the solution in original variable space.
    let mut y = vec![0.0; cols];
    for (i, &bi) in tab.basis.iter().enumerate() {
        y[bi] = tab.b[i];
    }
    let mut values = vec![0.0; n];
    for j in 0..n {
        values[j] = y[j] + lower[j];
        // Clean tiny numerical noise.
        if (values[j] - values[j].round()).abs() < 1e-9 {
            values[j] = values[j].round();
        }
    }
    let objective = model.objective_value(&values);
    Ok(Solution {
        status: SolveStatus::Optimal,
        values,
        objective,
        bound: objective,
        work,
    })
}

/// Run one simplex phase minimising `cost` over the current tableau.
/// Returns the outcome and the pivot count.  `ban_artificials` prevents
/// artificial columns from entering the basis.
fn run_phase(tab: &mut Tableau, cost: &[f64], ban_artificials: bool) -> (PhaseOutcome, u64) {
    let m = tab.b.len();
    let cols = tab.cols;
    // Reduced costs r_j = c_j - c_B^T * A_j  (A_j in the current tableau basis).
    let mut reduced = vec![0.0; cols];
    {
        let c_b: Vec<f64> = tab.basis.iter().map(|&j| cost[j]).collect();
        for (j, r) in reduced.iter_mut().enumerate() {
            let mut dot = 0.0;
            for (cb, row) in c_b.iter().zip(tab.a.iter()) {
                dot += cb * row[j];
            }
            *r = cost[j] - dot;
        }
    }

    let mut pivots = 0u64;
    loop {
        if pivots as usize >= MAX_PIVOTS {
            return (PhaseOutcome::IterationLimit, pivots);
        }
        let use_bland = pivots as usize >= BLAND_THRESHOLD;
        // Entering column.
        let mut entering: Option<usize> = None;
        if use_bland {
            for (j, &r) in reduced.iter().enumerate() {
                if ban_artificials && tab.artificial[j] {
                    continue;
                }
                if r < -TOL {
                    entering = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -TOL;
            for (j, &r) in reduced.iter().enumerate() {
                if ban_artificials && tab.artificial[j] {
                    continue;
                }
                if r < best {
                    best = r;
                    entering = Some(j);
                }
            }
        }
        let entering = match entering {
            Some(j) => j,
            None => return (PhaseOutcome::Optimal, pivots),
        };

        // Ratio test.
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let aij = tab.a[i][entering];
            if aij > TOL {
                let ratio = tab.b[i] / aij;
                if ratio < best_ratio - TOL
                    || (ratio < best_ratio + TOL
                        && leaving.is_none_or(|l| tab.basis[i] < tab.basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let leaving = match leaving {
            Some(i) => i,
            None => return (PhaseOutcome::Unbounded, pivots),
        };

        pivot(tab, leaving, entering, &mut reduced);
        pivots += 1;
    }
}

/// Pivot on `(row, col)`, updating the tableau and reduced costs in place.
fn pivot(tab: &mut Tableau, row: usize, col: usize, reduced: &mut [f64]) {
    let m = tab.b.len();
    let cols = tab.cols;
    let pivot_val = tab.a[row][col];
    debug_assert!(pivot_val.abs() > TOL);
    // Normalise pivot row.
    for j in 0..cols {
        tab.a[row][j] /= pivot_val;
    }
    tab.b[row] /= pivot_val;
    // Eliminate from other rows.
    for i in 0..m {
        if i == row {
            continue;
        }
        let factor = tab.a[i][col];
        if factor.abs() > 1e-12 {
            for j in 0..cols {
                tab.a[i][j] -= factor * tab.a[row][j];
            }
            tab.b[i] -= factor * tab.b[row];
            if tab.b[i].abs() < 1e-11 {
                tab.b[i] = 0.0;
            }
        }
    }
    // Update reduced costs: after the pivot the entering column's reduced
    // cost must become zero, which the row elimination below achieves.
    let factor = reduced[col];
    if factor.abs() > 1e-12 {
        for (r, &a) in reduced.iter_mut().zip(tab.a[row].iter()) {
            *r -= factor * a;
        }
    }
    tab.basis[row] = col;
}

/// After phase 1, pivot basic artificial variables out of the basis (they
/// are at value zero).  Rows whose non-artificial coefficients are all zero
/// are redundant; they are left in place with the artificial basic at zero,
/// which is harmless because artificial columns are banned from entering in
/// phase 2 and a zero-valued basic variable in a redundant row never
/// changes value.
fn drive_out_artificials(tab: &mut Tableau) {
    let m = tab.b.len();
    let cols = tab.cols;
    for i in 0..m {
        let basic = tab.basis[i];
        if !tab.artificial[basic] {
            continue;
        }
        debug_assert!(tab.b[i].abs() < 1e-6);
        // Find a non-artificial column with a usable pivot entry.
        let mut target: Option<usize> = None;
        for j in 0..cols {
            if !tab.artificial[j] && tab.a[i][j].abs() > TOL {
                target = Some(j);
                break;
            }
        }
        if let Some(col) = target {
            let mut dummy_reduced = vec![0.0; cols];
            pivot(tab, i, col, &mut dummy_reduced);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Cmp, Model, Sense, VarType};

    fn le(m: &mut Model, terms: &[(crate::model::VarId, f64)], rhs: f64) {
        m.add_constr(LinExpr::from_terms(terms.iter().copied()), Cmp::Le, rhs);
    }

    #[test]
    fn textbook_maximisation() {
        // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj=21
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous(5.0, "x");
        let y = m.add_continuous(4.0, "y");
        le(&mut m, &[(x, 6.0), (y, 4.0)], 24.0);
        le(&mut m, &[(x, 1.0), (y, 2.0)], 6.0);
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 21.0).abs() < 1e-6);
        assert!((s.values[0] - 3.0).abs() < 1e-6);
        assert!((s.values[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn minimisation_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x=7, y=3, obj=23
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(VarType::Continuous, 2.0, f64::INFINITY, 2.0, "x");
        let y = m.add_var(VarType::Continuous, 3.0, f64::INFINITY, 3.0, "y");
        m.add_constr(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 10.0);
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 23.0).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.values[0] - 7.0).abs() < 1e-6);
        assert!((s.values[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1  -> x=2, y=1
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous(1.0, "x");
        let y = m.add_continuous(1.0, "y");
        m.add_constr(LinExpr::new().term(x, 1.0).term(y, 2.0), Cmp::Eq, 4.0);
        m.add_constr(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Eq, 1.0);
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(VarType::Continuous, 0.0, 1.0, 1.0, "x");
        m.add_constr(LinExpr::var(x), Cmp::Ge, 5.0);
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_continuous(1.0, "x");
        let y = m.add_continuous(0.0, "y");
        // x unconstrained above.
        m.add_constr(LinExpr::new().term(y, 1.0), Cmp::Le, 4.0);
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_are_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(VarType::Continuous, 0.0, 2.5, 1.0, "x");
        let y = m.add_var(VarType::Continuous, 0.0, 4.0, 1.0, "y");
        m.add_constr(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 100.0);
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 6.5).abs() < 1e-6);
        assert!(s.values[0] <= 2.5 + 1e-9);
        assert!(s.values[1] <= 4.0 + 1e-9);
    }

    #[test]
    fn negative_lower_bounds_are_shifted_correctly() {
        // min x s.t. x >= -5 (bound), x + y >= -3, y in [0, 1]
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(VarType::Continuous, -5.0, f64::INFINITY, 1.0, "x");
        let y = m.add_var(VarType::Continuous, 0.0, 1.0, 0.0, "y");
        m.add_constr(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, -3.0);
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.values[0] - (-4.0)).abs() < 1e-6, "x = {}", s.values[0]);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints intersecting at the same vertex.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous(1.0, "x");
        let y = m.add_continuous(1.0, "y");
        le(&mut m, &[(x, 1.0), (y, 1.0)], 1.0);
        le(&mut m, &[(x, 2.0), (y, 2.0)], 2.0);
        le(&mut m, &[(x, 1.0), (y, 0.0)], 1.0);
        le(&mut m, &[(x, 0.0), (y, 1.0)], 1.0);
        le(&mut m, &[(x, 3.0), (y, 3.0)], 3.0);
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn solution_is_feasible_for_the_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(VarType::Continuous, 0.0, 10.0, 3.0, "x");
        let y = m.add_var(VarType::Continuous, 1.0, 10.0, 1.0, "y");
        m.add_constr(LinExpr::new().term(x, 2.0).term(y, 1.0), Cmp::Le, 14.0);
        m.add_constr(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Ge, -2.0);
        let s = solve_lp(&m).unwrap();
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn bound_overrides_tighten_the_relaxation() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(VarType::Continuous, 0.0, 10.0, 1.0, "x");
        m.add_constr(LinExpr::var(x), Cmp::Le, 8.0);
        let free = solve_lp(&m).unwrap();
        assert!((free.objective - 8.0).abs() < 1e-6);
        let pinned = solve_lp_with_overrides(&m, &[(x.index(), 0.0, 3.0)]).unwrap();
        assert!((pinned.objective - 3.0).abs() < 1e-6);
        let conflicting = solve_lp_with_overrides(&m, &[(x.index(), 5.0, 4.0)]).unwrap();
        assert_eq!(conflicting.status, SolveStatus::Infeasible);
    }
}
