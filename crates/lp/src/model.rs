//! Declarative MILP model builder.

use crate::expr::LinExpr;
use serde::{Deserialize, Serialize};

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(usize);

impl VarId {
    /// Index of the variable in the model's column order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Construct from a raw index (used by the expression tests and by
    /// solvers when reporting values).
    pub fn from_index(i: usize) -> Self {
        VarId(i)
    }
}

/// Variable domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarType {
    /// Continuous within its bounds.
    Continuous,
    /// Integer within its bounds.
    Integer,
    /// Binary {0, 1}; bounds are clamped to [0, 1].
    Binary,
}

/// Constraint comparison sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    Le,
    Ge,
    Eq,
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    Minimize,
    Maximize,
}

/// A single variable's metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    pub name: String,
    pub vtype: VarType,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
}

/// A linear constraint `expr cmp rhs` (the expression's constant is folded
/// into the right-hand side when the model is lowered).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    pub name: String,
    pub expr: LinExpr,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A mixed-integer linear program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    sense: Sense,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
}

impl Model {
    /// New empty model with the given objective sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            variables: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Objective sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a variable and return its handle.
    ///
    /// `objective` is the variable's coefficient in the objective function.
    pub fn add_var(
        &mut self,
        vtype: VarType,
        lower: f64,
        upper: f64,
        objective: f64,
        name: impl Into<String>,
    ) -> VarId {
        let (lower, upper) = match vtype {
            VarType::Binary => (lower.max(0.0), upper.min(1.0)),
            _ => (lower, upper),
        };
        assert!(
            lower <= upper,
            "variable lower bound {lower} exceeds upper bound {upper}"
        );
        assert!(
            lower.is_finite(),
            "variables require a finite lower bound (got {lower})"
        );
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            vtype,
            lower,
            upper,
            objective,
        });
        id
    }

    /// Convenience: add a binary decision variable.
    pub fn add_binary(&mut self, objective: f64, name: impl Into<String>) -> VarId {
        self.add_var(VarType::Binary, 0.0, 1.0, objective, name)
    }

    /// Convenience: add a non-negative continuous variable.
    pub fn add_continuous(&mut self, objective: f64, name: impl Into<String>) -> VarId {
        self.add_var(VarType::Continuous, 0.0, f64::INFINITY, objective, name)
    }

    /// Convenience: add a non-negative integer variable with an upper bound.
    pub fn add_integer(&mut self, upper: f64, objective: f64, name: impl Into<String>) -> VarId {
        self.add_var(VarType::Integer, 0.0, upper, objective, name)
    }

    /// Add a linear constraint.
    pub fn add_constr(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) -> usize {
        self.add_named_constr(expr, cmp, rhs, format!("c{}", self.constraints.len()))
    }

    /// Add a named linear constraint.
    pub fn add_named_constr(
        &mut self,
        expr: LinExpr,
        cmp: Cmp,
        rhs: f64,
        name: impl Into<String>,
    ) -> usize {
        let idx = self.constraints.len();
        self.constraints.push(Constraint {
            name: name.into(),
            expr,
            cmp,
            rhs,
        });
        idx
    }

    /// Big-M indicator constraint: when binary `flag == active_value`, then
    /// `expr cmp rhs` must hold.  This mirrors Gurobi's `addGenConstrIndicator`
    /// which the paper uses for the one-hop distance constraint C4.
    ///
    /// For `flag == 1` activation the lowered constraints are
    /// `expr <= rhs + M * (1 - flag)` (for `Le`), and symmetrically for `Ge`;
    /// equalities lower to the conjunction of both.
    pub fn add_indicator(
        &mut self,
        flag: VarId,
        active_value: bool,
        expr: LinExpr,
        cmp: Cmp,
        rhs: f64,
        big_m: f64,
    ) {
        assert!(
            matches!(self.variables[flag.index()].vtype, VarType::Binary),
            "indicator flag must be a binary variable"
        );
        assert!(big_m > 0.0 && big_m.is_finite());
        // slack term that relaxes the constraint when the flag is inactive.
        // active when flag==1: relax = M*(1-flag);  active when flag==0: relax = M*flag.
        let relax_expr = |scale: f64, m: &mut Model| -> LinExpr {
            let mut e = LinExpr::new();
            if active_value {
                // M * (1 - flag)
                e.add_term(flag, -scale * big_m);
                e = e.offset(scale * big_m);
            } else {
                // M * flag
                e.add_term(flag, scale * big_m);
            }
            let _ = m;
            e
        };
        match cmp {
            Cmp::Le => {
                // expr - relax <= rhs
                let mut lowered = expr;
                lowered.add_scaled(&relax_expr(1.0, self), -1.0);
                self.add_constr(lowered, Cmp::Le, rhs);
            }
            Cmp::Ge => {
                let mut lowered = expr;
                lowered.add_scaled(&relax_expr(1.0, self), 1.0);
                self.add_constr(lowered, Cmp::Ge, rhs);
            }
            Cmp::Eq => {
                let mut le = expr.clone();
                le.add_scaled(&relax_expr(1.0, self), -1.0);
                self.add_constr(le, Cmp::Le, rhs);
                let mut ge = expr;
                ge.add_scaled(&relax_expr(1.0, self), 1.0);
                self.add_constr(ge, Cmp::Ge, rhs);
            }
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constrs(&self) -> usize {
        self.constraints.len()
    }

    /// Variable metadata.
    pub fn variable(&self, v: VarId) -> &Variable {
        &self.variables[v.index()]
    }

    /// All variables in column order.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// All constraints in row order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Indices of integer/binary variables.
    pub fn integer_vars(&self) -> Vec<usize> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.vtype, VarType::Integer | VarType::Binary))
            .map(|(i, _)| i)
            .collect()
    }

    /// Objective value of an assignment (ignoring feasibility).
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.variables
            .iter()
            .zip(values)
            .map(|(v, x)| v.objective * x)
            .sum()
    }

    /// Check whether an assignment satisfies all constraints and bounds to
    /// within `tol`.  Used by tests and by the combinatorial engines to
    /// validate candidate solutions against the formulation.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.variables.len() {
            return false;
        }
        for (var, &x) in self.variables.iter().zip(values) {
            if x < var.lower - tol || x > var.upper + tol {
                return false;
            }
            if matches!(var.vtype, VarType::Integer | VarType::Binary)
                && (x - x.round()).abs() > tol
            {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs = c.expr.eval(values);
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Override a variable's bounds (used by branch-and-bound when
    /// branching on fractional variables).
    pub fn set_bounds(&mut self, v: VarId, lower: f64, upper: f64) {
        let var = &mut self.variables[v.index()];
        var.lower = lower;
        var.upper = upper;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_bookkeeping() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0, "x");
        let y = m.add_continuous(2.0, "y");
        let z = m.add_integer(10.0, 0.0, "z");
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.variable(x).vtype, VarType::Binary);
        assert_eq!(m.variable(y).lower, 0.0);
        assert_eq!(m.variable(z).upper, 10.0);
        assert_eq!(m.integer_vars(), vec![0, 2]);
    }

    #[test]
    fn binary_bounds_are_clamped() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(VarType::Binary, -5.0, 7.0, 0.0, "x");
        assert_eq!(m.variable(x).lower, 0.0);
        assert_eq!(m.variable(x).upper, 1.0);
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var(VarType::Continuous, 2.0, 1.0, 0.0, "bad");
    }

    #[test]
    fn feasibility_checks_bounds_constraints_and_integrality() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer(5.0, 1.0, "x");
        let y = m.add_continuous(1.0, "y");
        m.add_constr(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 4.0);
        assert!(m.is_feasible(&[2.0, 1.5], 1e-9));
        assert!(!m.is_feasible(&[2.5, 1.0], 1e-9)); // fractional integer
        assert!(!m.is_feasible(&[6.0, 0.0], 1e-9)); // bound violation
        assert!(!m.is_feasible(&[3.0, 2.0], 1e-9)); // constraint violation
        assert!(!m.is_feasible(&[3.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value_is_linear() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous(3.0, "x");
        let y = m.add_continuous(-1.0, "y");
        let _ = (x, y);
        assert_eq!(m.objective_value(&[2.0, 4.0]), 2.0);
    }

    #[test]
    fn indicator_le_is_relaxed_when_flag_inactive() {
        // flag == 1  =>  x <= 2
        let mut m = Model::new(Sense::Minimize);
        let flag = m.add_binary(0.0, "flag");
        let x = m.add_continuous(0.0, "x");
        m.add_indicator(flag, true, LinExpr::var(x), Cmp::Le, 2.0, 100.0);
        // With the flag off, x = 50 must be feasible.
        assert!(m.is_feasible(&[0.0, 50.0], 1e-9));
        // With the flag on, x = 50 must be infeasible and x = 1 feasible.
        assert!(!m.is_feasible(&[1.0, 50.0], 1e-9));
        assert!(m.is_feasible(&[1.0, 1.0], 1e-9));
    }

    #[test]
    fn indicator_eq_forces_equality_only_when_active() {
        // flag == 0  =>  x == 3
        let mut m = Model::new(Sense::Minimize);
        let flag = m.add_binary(0.0, "flag");
        let x = m.add_var(VarType::Continuous, 0.0, 10.0, 0.0, "x");
        m.add_indicator(flag, false, LinExpr::var(x), Cmp::Eq, 3.0, 50.0);
        assert!(m.is_feasible(&[0.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[0.0, 4.0], 1e-9));
        assert!(m.is_feasible(&[1.0, 9.0], 1e-9));
    }

    #[test]
    fn constraint_naming_and_counts() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous(1.0, "x");
        m.add_named_constr(LinExpr::var(x), Cmp::Ge, 1.0, "lb");
        assert_eq!(m.num_constrs(), 1);
        assert_eq!(m.constraints()[0].name, "lb");
    }
}
