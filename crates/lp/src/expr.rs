//! Linear expressions over model variables.

use crate::model::VarId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A linear expression `sum_i coeff_i * x_i + constant`.
///
/// Coefficients for the same variable accumulate, so expressions can be
/// built incrementally while lowering a formulation (e.g. summing a row of
/// the connectivity matrix for the radix constraint C2).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinExpr {
    terms: BTreeMap<usize, f64>,
    constant: f64,
}

impl LinExpr {
    /// Empty expression (== 0).
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// Expression consisting of a single variable with coefficient 1.
    pub fn var(v: VarId) -> Self {
        LinExpr::new().term(v, 1.0)
    }

    /// Constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// Add `coeff * v` (builder style).
    pub fn term(mut self, v: VarId, coeff: f64) -> Self {
        self.add_term(v, coeff);
        self
    }

    /// Add `coeff * v` in place.
    pub fn add_term(&mut self, v: VarId, coeff: f64) {
        if coeff == 0.0 {
            return;
        }
        let entry = self.terms.entry(v.index()).or_insert(0.0);
        *entry += coeff;
        if entry.abs() < 1e-15 {
            self.terms.remove(&v.index());
        }
    }

    /// Add a constant offset (builder style).
    pub fn offset(mut self, c: f64) -> Self {
        self.constant += c;
        self
    }

    /// Add another expression scaled by `scale`.
    pub fn add_scaled(&mut self, other: &LinExpr, scale: f64) {
        for (&idx, &coeff) in &other.terms {
            let entry = self.terms.entry(idx).or_insert(0.0);
            *entry += coeff * scale;
            if entry.abs() < 1e-15 {
                self.terms.remove(&idx);
            }
        }
        self.constant += other.constant * scale;
    }

    /// Constant part of the expression.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Iterate over `(variable index, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.terms.iter().map(|(&i, &c)| (i, c))
    }

    /// Number of variables with non-zero coefficients.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Coefficient of a variable (0 when absent).
    pub fn coeff(&self, v: VarId) -> f64 {
        self.terms.get(&v.index()).copied().unwrap_or(0.0)
    }

    /// Evaluate the expression for a full assignment of variable values.
    pub fn eval(&self, values: &[f64]) -> f64 {
        let mut total = self.constant;
        for (&idx, &coeff) in &self.terms {
            total += coeff * values[idx];
        }
        total
    }

    /// Build an expression from `(variable, coefficient)` pairs.
    pub fn from_terms(pairs: impl IntoIterator<Item = (VarId, f64)>) -> Self {
        let mut e = LinExpr::new();
        for (v, c) in pairs {
            e.add_term(v, c);
        }
        e
    }

    /// Sum of a set of variables with unit coefficients.
    pub fn sum(vars: impl IntoIterator<Item = VarId>) -> Self {
        Self::from_terms(vars.into_iter().map(|v| (v, 1.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarId;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn terms_accumulate_and_cancel() {
        let mut e = LinExpr::new();
        e.add_term(v(0), 2.0);
        e.add_term(v(0), 3.0);
        assert_eq!(e.coeff(v(0)), 5.0);
        e.add_term(v(0), -5.0);
        assert_eq!(e.coeff(v(0)), 0.0);
        assert_eq!(e.num_terms(), 0);
    }

    #[test]
    fn eval_includes_constant() {
        let e = LinExpr::new().term(v(0), 2.0).term(v(2), -1.0).offset(4.0);
        let values = [1.0, 99.0, 3.0];
        assert_eq!(e.eval(&values), 2.0 - 3.0 + 4.0);
    }

    #[test]
    fn add_scaled_merges_expressions() {
        let a = LinExpr::new().term(v(0), 1.0).offset(1.0);
        let mut b = LinExpr::new().term(v(0), 1.0).term(v(1), 2.0);
        b.add_scaled(&a, -1.0);
        assert_eq!(b.coeff(v(0)), 0.0);
        assert_eq!(b.coeff(v(1)), 2.0);
        assert_eq!(b.constant_part(), -1.0);
    }

    #[test]
    fn sum_builds_unit_coefficients() {
        let e = LinExpr::sum([v(1), v(3), v(5)]);
        assert_eq!(e.num_terms(), 3);
        assert_eq!(e.coeff(v(3)), 1.0);
        assert_eq!(e.coeff(v(0)), 0.0);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let e = LinExpr::new().term(v(0), 0.0);
        assert_eq!(e.num_terms(), 0);
    }
}
