//! Branch-and-bound MILP solver over the simplex LP relaxation.
//!
//! The solver mirrors the behaviour the paper relies on from Gurobi:
//!
//! * it maintains an *incumbent* (best feasible integer solution found so
//!   far) and a *bound* (the best LP relaxation value over all open nodes),
//! * it reports the relative **objective bounds gap** between the two —
//!   the quantity plotted against solver time in the paper's Figure 5 —
//!   through a [`ProgressEvent`] callback, and
//! * it supports node- and time-limits so callers can harvest the best
//!   known topology/routing even when optimality has not been proven,
//!   exactly as the paper does for the "large" configurations.
//!
//! Node selection is best-first (most promising LP bound), branching picks
//! the most fractional integer variable.

use crate::model::{Model, Sense};
use crate::simplex::{solve_lp_with_overrides, TOL};
use crate::solution::{Solution, SolveStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Configuration for the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct BranchBoundConfig {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: u64,
    /// Wall-clock limit for the search.
    pub time_limit: Duration,
    /// Relative optimality gap at which the search stops early.
    pub gap_tolerance: f64,
    /// Integrality tolerance.
    pub int_tolerance: f64,
}

impl Default for BranchBoundConfig {
    fn default() -> Self {
        BranchBoundConfig {
            max_nodes: 200_000,
            time_limit: Duration::from_secs(60),
            gap_tolerance: 1e-6,
            int_tolerance: 1e-6,
        }
    }
}

/// A progress sample emitted whenever the incumbent or bound improves.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressEvent {
    /// Time since the solve started.
    pub elapsed: Duration,
    /// Nodes explored so far.
    pub nodes: u64,
    /// Best feasible (incumbent) objective, if any.
    pub incumbent: Option<f64>,
    /// Best proven bound on the optimum.
    pub bound: f64,
    /// Relative objective bounds gap (infinite while no incumbent exists).
    pub gap: f64,
}

/// Open node in the best-first queue.
struct Node {
    /// LP relaxation objective of the parent (used as the node's priority).
    priority: f64,
    /// Bound overrides accumulated along the branching path.
    overrides: Vec<(usize, f64, f64)>,
    depth: u32,
}

/// Wrapper implementing the ordering for the best-first heap: for
/// minimisation the node with the smallest bound is explored first, for
/// maximisation the largest.
struct HeapEntry {
    node: Node,
    better_is_smaller: bool,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.node.priority == other.node.priority
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for minimisation.
        let ord = self
            .node
            .priority
            .partial_cmp(&other.node.priority)
            .unwrap_or(Ordering::Equal);
        if self.better_is_smaller {
            ord.reverse()
        } else {
            ord
        }
        .then_with(|| other.node.depth.cmp(&self.node.depth))
    }
}

/// MILP solver facade.
#[derive(Debug, Clone, Default)]
pub struct MilpSolver {
    config: BranchBoundConfig,
}

impl MilpSolver {
    /// Create a solver with the given configuration.
    pub fn new(config: BranchBoundConfig) -> Self {
        MilpSolver { config }
    }

    /// Solve the MILP, discarding progress events.
    pub fn solve(&self, model: &Model) -> Result<Solution, String> {
        self.solve_with_progress(model, |_| {})
    }

    /// Solve the MILP, invoking `on_progress` whenever the incumbent or the
    /// proven bound improves.
    pub fn solve_with_progress(
        &self,
        model: &Model,
        mut on_progress: impl FnMut(&ProgressEvent),
    ) -> Result<Solution, String> {
        let start = Instant::now();
        let minimize = matches!(model.sense(), Sense::Minimize);
        let int_vars = model.integer_vars();

        // Root relaxation.
        let root = solve_lp_with_overrides(model, &[])?;
        match root.status {
            SolveStatus::Infeasible => return Ok(Solution::infeasible()),
            SolveStatus::Unbounded => return Ok(Solution::unbounded()),
            _ => {}
        }

        let mut nodes_explored: u64 = 0;
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        let better = |a: f64, b: f64| {
            if minimize {
                a < b - 1e-12
            } else {
                a > b + 1e-12
            }
        };

        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        heap.push(HeapEntry {
            node: Node {
                priority: root.objective,
                overrides: Vec::new(),
                depth: 0,
            },
            better_is_smaller: minimize,
        });

        let mut best_bound = root.objective;
        let emit = |nodes: u64,
                    incumbent: &Option<(f64, Vec<f64>)>,
                    bound: f64,
                    on_progress: &mut dyn FnMut(&ProgressEvent)| {
            let inc = incumbent.as_ref().map(|(obj, _)| *obj);
            let gap = match inc {
                Some(obj) => ((obj - bound).abs() / obj.abs().max(1e-9)).max(0.0),
                None => f64::INFINITY,
            };
            on_progress(&ProgressEvent {
                elapsed: start.elapsed(),
                nodes,
                incumbent: inc,
                bound,
                gap,
            });
        };
        emit(0, &incumbent, best_bound, &mut on_progress);

        while let Some(entry) = heap.pop() {
            let node = entry.node;
            if nodes_explored >= self.config.max_nodes || start.elapsed() >= self.config.time_limit
            {
                // Put the node's bound back into consideration for the final
                // reported bound before stopping.
                best_bound = node.priority;
                break;
            }
            nodes_explored += 1;

            // Prune against the incumbent using the node's inherited bound.
            if let Some((inc_obj, _)) = &incumbent {
                if !better(node.priority, *inc_obj)
                    && (node.priority - inc_obj).abs() > self.config.gap_tolerance
                {
                    continue;
                }
            }

            let relax = solve_lp_with_overrides(model, &node.overrides)?;
            match relax.status {
                SolveStatus::Infeasible => continue,
                SolveStatus::Unbounded => return Ok(Solution::unbounded()),
                _ => {}
            }
            // Prune by bound.
            if let Some((inc_obj, _)) = &incumbent {
                if !better(relax.objective, *inc_obj) {
                    continue;
                }
            }

            // Find the most fractional integer variable.
            let mut branch_var: Option<(usize, f64)> = None;
            let mut best_frac = self.config.int_tolerance;
            for &iv in &int_vars {
                let v = relax.values[iv];
                let frac = (v - v.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch_var = Some((iv, v));
                }
            }

            match branch_var {
                None => {
                    // Integer feasible: candidate incumbent.
                    let obj = relax.objective;
                    let accept = match &incumbent {
                        None => true,
                        Some((inc_obj, _)) => better(obj, *inc_obj),
                    };
                    if accept {
                        incumbent = Some((obj, relax.values.clone()));
                        best_bound = current_bound(&heap, obj, minimize);
                        emit(nodes_explored, &incumbent, best_bound, &mut on_progress);
                        // Optimality check.
                        let gap = (obj - best_bound).abs() / obj.abs().max(1e-9);
                        if gap <= self.config.gap_tolerance {
                            // Everything remaining is no better than the incumbent.
                            if heap.peek().is_none_or(|e| !better(e.node.priority, obj)) {
                                break;
                            }
                        }
                    }
                }
                Some((var_idx, value)) => {
                    let floor = value.floor();
                    let ceil = value.ceil();
                    let var = &model.variables()[var_idx];
                    // Existing override for this variable, if any.
                    let (cur_lo, cur_hi) = node
                        .overrides
                        .iter()
                        .rev()
                        .find(|(i, _, _)| *i == var_idx)
                        .map(|&(_, lo, hi)| (lo, hi))
                        .unwrap_or((var.lower, var.upper));
                    // Down branch: x <= floor.
                    if floor >= cur_lo - TOL {
                        let mut o = node.overrides.clone();
                        o.push((var_idx, cur_lo, floor));
                        heap.push(HeapEntry {
                            node: Node {
                                priority: relax.objective,
                                overrides: o,
                                depth: node.depth + 1,
                            },
                            better_is_smaller: minimize,
                        });
                    }
                    // Up branch: x >= ceil.
                    if ceil <= cur_hi + TOL {
                        let mut o = node.overrides.clone();
                        o.push((var_idx, ceil, cur_hi));
                        heap.push(HeapEntry {
                            node: Node {
                                priority: relax.objective,
                                overrides: o,
                                depth: node.depth + 1,
                            },
                            better_is_smaller: minimize,
                        });
                    }
                }
            }

            // Refresh the global bound from the open nodes + incumbent.
            let inc_obj = incumbent.as_ref().map(|(o, _)| *o);
            let new_bound = current_bound(&heap, inc_obj.unwrap_or(relax.objective), minimize);
            if (new_bound - best_bound).abs() > 1e-12 {
                best_bound = new_bound;
                emit(nodes_explored, &incumbent, best_bound, &mut on_progress);
            }
        }

        let elapsed_exceeded =
            nodes_explored >= self.config.max_nodes || start.elapsed() >= self.config.time_limit;
        match incumbent {
            Some((obj, values)) => {
                let exhausted =
                    heap.is_empty() || heap.peek().is_none_or(|e| !better(e.node.priority, obj));
                let status = if exhausted && !elapsed_exceeded {
                    SolveStatus::Optimal
                } else {
                    let gap = (obj - best_bound).abs() / obj.abs().max(1e-9);
                    if gap <= self.config.gap_tolerance {
                        SolveStatus::Optimal
                    } else {
                        SolveStatus::Feasible
                    }
                };
                let bound = if status == SolveStatus::Optimal {
                    obj
                } else {
                    best_bound
                };
                Ok(Solution {
                    status,
                    values,
                    objective: obj,
                    bound,
                    work: nodes_explored,
                })
            }
            None => {
                if elapsed_exceeded {
                    Ok(Solution {
                        status: SolveStatus::LimitReached,
                        values: Vec::new(),
                        objective: f64::NAN,
                        bound: best_bound,
                        work: nodes_explored,
                    })
                } else {
                    Ok(Solution {
                        work: nodes_explored,
                        ..Solution::infeasible()
                    })
                }
            }
        }
    }
}

/// Best bound over the open nodes, folded with the incumbent objective.
fn current_bound(heap: &BinaryHeap<HeapEntry>, incumbent_obj: f64, minimize: bool) -> f64 {
    let open = heap.iter().map(|e| e.node.priority);
    if minimize {
        open.fold(incumbent_obj, f64::min)
    } else {
        open.fold(incumbent_obj, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Cmp, Model, Sense, VarType};

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> a=0? best: b+c = 20 (w=6)
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(10.0, "a");
        let b = m.add_binary(13.0, "b");
        let c = m.add_binary(7.0, "c");
        m.add_constr(
            LinExpr::new().term(a, 3.0).term(b, 4.0).term(c, 2.0),
            Cmp::Le,
            6.0,
        );
        let sol = MilpSolver::default().solve(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 20.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn knapsack_matches_exhaustive_enumeration() {
        // 6-item knapsack cross-checked against brute force.
        let values = [4.0, 2.0, 10.0, 2.0, 1.0, 7.0];
        let weights = [12.0, 1.0, 4.0, 1.0, 2.0, 3.0];
        let capacity = 15.0;
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| m.add_binary(v, format!("x{i}")))
            .collect();
        let weight_expr =
            LinExpr::from_terms(vars.iter().zip(weights.iter()).map(|(&v, &w)| (v, w)));
        m.add_constr(weight_expr, Cmp::Le, capacity);
        let sol = MilpSolver::default().solve(&m).unwrap();

        let mut best = 0.0f64;
        for mask in 0..(1u32 << 6) {
            let mut val = 0.0;
            let mut weight = 0.0;
            for i in 0..6 {
                if (mask >> i) & 1 == 1 {
                    val += values[i];
                    weight += weights[i];
                }
            }
            if weight <= capacity {
                best = best.max(val);
            }
        }
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - best).abs() < 1e-6);
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // max x + y, 2x + 2y <= 3, integers -> optimum 1 (LP gives 1.5)
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer(10.0, 1.0, "x");
        let y = m.add_integer(10.0, 1.0, "y");
        m.add_constr(LinExpr::new().term(x, 2.0).term(y, 2.0), Cmp::Le, 3.0);
        let sol = MilpSolver::default().solve(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0, "x");
        m.add_constr(LinExpr::var(x), Cmp::Ge, 2.0);
        let sol = MilpSolver::default().solve(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn assignment_problem_is_solved_exactly() {
        // 3x3 assignment, cost matrix with known optimum 5 (1 + 1 + 3).
        let cost = [[1.0, 4.0, 5.0], [3.0, 1.0, 9.0], [6.0, 7.0, 3.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut vars = [[None; 3]; 3];
        for (i, row) in vars.iter_mut().enumerate() {
            for (j, var) in row.iter_mut().enumerate() {
                *var = Some(m.add_binary(cost[i][j], format!("x{i}{j}")));
            }
        }
        for (i, var_row) in vars.iter().enumerate() {
            let row = LinExpr::sum(var_row.iter().map(|v| v.unwrap()));
            m.add_constr(row, Cmp::Eq, 1.0);
            let col = LinExpr::sum((0..3).map(|j| vars[j][i].unwrap()));
            m.add_constr(col, Cmp::Eq, 1.0);
        }
        let sol = MilpSolver::default().solve(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-6, "obj {}", sol.objective);
    }

    #[test]
    fn progress_events_are_monotonic_in_time_and_report_gap() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(1.0 + i as f64, format!("x{i}")))
            .collect();
        let expr = LinExpr::from_terms(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64)),
        );
        m.add_constr(expr, Cmp::Le, 7.0);
        let mut events = Vec::new();
        let sol = MilpSolver::default()
            .solve_with_progress(&m, |e| events.push(e.clone()))
            .unwrap();
        assert!(sol.status.has_solution());
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[1].elapsed >= w[0].elapsed);
            assert!(w[1].nodes >= w[0].nodes);
        }
        // Final event gap should be finite once an incumbent exists.
        assert!(events.iter().any(|e| e.incumbent.is_some()));
    }

    #[test]
    fn node_limit_returns_feasible_or_limit() {
        let mut m = Model::new(Sense::Maximize);
        // A larger knapsack to keep the tree busy.
        let vars: Vec<_> = (0..14)
            .map(|i| m.add_binary((i % 5 + 1) as f64, format!("x{i}")))
            .collect();
        let expr = LinExpr::from_terms(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i * 7) % 11 + 1) as f64)),
        );
        m.add_constr(expr, Cmp::Le, 20.0);
        let solver = MilpSolver::new(BranchBoundConfig {
            max_nodes: 3,
            ..Default::default()
        });
        let sol = solver.solve(&m).unwrap();
        assert!(matches!(
            sol.status,
            SolveStatus::Feasible | SolveStatus::Optimal | SolveStatus::LimitReached
        ));
    }

    #[test]
    fn mixed_integer_continuous_model() {
        // min 3x + 2y  s.t. x + y >= 3.5, x integer, y continuous in [0,1]
        // -> x = 3, y = 0.5, obj = 10
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer(100.0, 3.0, "x");
        let y = m.add_var(VarType::Continuous, 0.0, 1.0, 2.0, "y");
        m.add_constr(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 3.5);
        let sol = MilpSolver::default().solve(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 10.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!((sol.values[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn binary_indicator_interacts_with_branching() {
        // Choose exactly 2 of 4 facilities; an indicator forces capacity when chosen.
        let mut m = Model::new(Sense::Minimize);
        let open: Vec<_> = (0..4)
            .map(|i| m.add_binary([3.0, 2.0, 5.0, 4.0][i], format!("open{i}")))
            .collect();
        let cap: Vec<_> = (0..4)
            .map(|i| m.add_var(VarType::Continuous, 0.0, 10.0, 0.1, format!("cap{i}")))
            .collect();
        m.add_constr(LinExpr::sum(open.iter().copied()), Cmp::Eq, 2.0);
        for i in 0..4 {
            // open_i == 1  =>  cap_i >= 5
            m.add_indicator(open[i], true, LinExpr::var(cap[i]), Cmp::Ge, 5.0, 100.0);
        }
        m.add_constr(LinExpr::sum(cap.iter().copied()), Cmp::Ge, 10.0);
        let sol = MilpSolver::default().solve(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        // Cheapest two facilities are 1 and 0 (2 + 3), with 5 capacity each.
        assert!(
            (sol.objective - (5.0 + 1.0)).abs() < 1e-6,
            "obj {}",
            sol.objective
        );
    }
}
