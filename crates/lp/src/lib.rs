//! # netsmith-lp
//!
//! A self-contained linear-programming and mixed-integer-programming solver.
//!
//! The NetSmith paper formulates topology generation (Table I) and routing
//! (Table III) as MILPs and solves them with Gurobi.  Gurobi is proprietary
//! and unavailable here, so this crate provides the optimization substrate
//! from scratch:
//!
//! * [`Model`] — a declarative model builder with continuous, integer and
//!   binary variables, linear constraints, big-M indicator constraints and
//!   a linear objective.
//! * [`simplex`] — a dense two-phase primal simplex for the LP relaxation.
//! * [`branch`] — a best-first branch-and-bound MILP solver on top of the
//!   simplex, with incumbent tracking, node/time limits and an "objective
//!   bounds gap" progress log matching the metric Gurobi reports (and the
//!   paper plots in Figure 5).
//!
//! The solver is exact but deliberately simple (dense tableaus, no cutting
//! planes or presolve), so it is intended for the small-to-moderate model
//! sizes exercised in unit/integration tests and for validating the
//! NetSmith formulations; the production topology-search path in
//! `netsmith-gen` uses specialised combinatorial engines for the larger
//! instances, exactly as documented in `DESIGN.md`.

pub mod branch;
pub mod expr;
pub mod model;
pub mod simplex;
pub mod solution;

pub use branch::{BranchBoundConfig, MilpSolver, ProgressEvent};
pub use expr::LinExpr;
pub use model::{Cmp, Model, Sense, VarId, VarType};
pub use solution::{Solution, SolveStatus};

#[cfg(test)]
mod integration_tests {
    use super::*;

    #[test]
    fn end_to_end_lp_then_milp() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  (LP optimum at x=4,y=0)
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(VarType::Continuous, 0.0, f64::INFINITY, 3.0, "x");
        let y = m.add_var(VarType::Continuous, 0.0, f64::INFINITY, 2.0, "y");
        m.add_constr(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 4.0);
        m.add_constr(LinExpr::new().term(x, 1.0).term(y, 3.0), Cmp::Le, 6.0);
        let sol = simplex::solve_lp(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 12.0).abs() < 1e-6);

        // Same model with x integer-restricted to <= 3.5 becomes x=3, y=1.
        let mut m2 = Model::new(Sense::Maximize);
        let x = m2.add_var(VarType::Integer, 0.0, 3.5, 3.0, "x");
        let y = m2.add_var(VarType::Continuous, 0.0, f64::INFINITY, 2.0, "y");
        m2.add_constr(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 4.0);
        m2.add_constr(LinExpr::new().term(x, 1.0).term(y, 3.0), Cmp::Le, 6.0);
        let solver = MilpSolver::new(BranchBoundConfig::default());
        let sol = solver.solve(&m2).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.values[x.index()] - 3.0).abs() < 1e-6);
        assert!((sol.objective - 11.0).abs() < 1e-6);
    }
}
