//! Solver results.

use serde::{Deserialize, Serialize};

/// Final status of an LP or MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// Proven optimal (within tolerances).
    Optimal,
    /// No feasible assignment exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A feasible incumbent was found, but the node/time budget expired
    /// before optimality was proven.  `Solution::bound` carries the best
    /// proven bound.
    Feasible,
    /// The budget expired before any feasible solution was found.
    LimitReached,
}

impl SolveStatus {
    /// True when the solution carries a usable assignment.
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// Result of a solve: variable assignment, objective, and (for MILP) the
/// best proven bound and the relative "objective bounds gap" that Gurobi
/// reports and the paper plots in Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    pub status: SolveStatus,
    /// One value per model variable (column order).  Empty when no
    /// incumbent exists.
    pub values: Vec<f64>,
    /// Objective value of `values` (meaningful only when
    /// `status.has_solution()`).
    pub objective: f64,
    /// Best proven bound on the optimal objective (lower bound for
    /// minimization, upper bound for maximization).
    pub bound: f64,
    /// Simplex iterations or branch-and-bound nodes expended.
    pub work: u64,
}

impl Solution {
    /// Relative objective-bounds gap `|objective - bound| / max(|objective|, eps)`,
    /// or 0 when optimal, or infinity when no incumbent exists.
    pub fn gap(&self) -> f64 {
        match self.status {
            SolveStatus::Optimal => 0.0,
            SolveStatus::Feasible => {
                (self.objective - self.bound).abs() / self.objective.abs().max(1e-9)
            }
            _ => f64::INFINITY,
        }
    }

    /// Construct an infeasible result.
    pub fn infeasible() -> Self {
        Solution {
            status: SolveStatus::Infeasible,
            values: Vec::new(),
            objective: f64::NAN,
            bound: f64::NAN,
            work: 0,
        }
    }

    /// Construct an unbounded result.
    pub fn unbounded() -> Self {
        Solution {
            status: SolveStatus::Unbounded,
            values: Vec::new(),
            objective: f64::NAN,
            bound: f64::NAN,
            work: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_zero_when_optimal() {
        let s = Solution {
            status: SolveStatus::Optimal,
            values: vec![1.0],
            objective: 10.0,
            bound: 10.0,
            work: 5,
        };
        assert_eq!(s.gap(), 0.0);
    }

    #[test]
    fn gap_reflects_bound_distance() {
        let s = Solution {
            status: SolveStatus::Feasible,
            values: vec![1.0],
            objective: 100.0,
            bound: 90.0,
            work: 5,
        };
        assert!((s.gap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn infeasible_has_no_solution() {
        assert!(!Solution::infeasible().status.has_solution());
        assert!(Solution::infeasible().gap().is_infinite());
    }
}
