//! Property-based tests for the LP/MILP solver.
//!
//! The simplex result is validated structurally (feasibility of the
//! returned point, optimality relative to sampled feasible points) and the
//! MILP solver is cross-checked against exhaustive enumeration on random
//! binary programs small enough to brute-force.

use netsmith_lp::{BranchBoundConfig, Cmp, LinExpr, MilpSolver, Model, Sense, SolveStatus};
use proptest::prelude::*;

/// A random bounded LP: maximize a random objective over box-bounded
/// variables with random `<=` constraints that always keep the origin
/// feasible (non-negative coefficients, positive rhs), so the instance is
/// never infeasible or unbounded.
fn random_bounded_lp() -> impl Strategy<Value = (Model, usize)> {
    let nvars = 2usize..5;
    let ncons = 1usize..5;
    (nvars, ncons).prop_flat_map(|(nv, nc)| {
        let objs = proptest::collection::vec(0.1f64..5.0, nv);
        let coeffs = proptest::collection::vec(proptest::collection::vec(0.0f64..4.0, nv), nc);
        let rhs = proptest::collection::vec(1.0f64..20.0, nc);
        (objs, coeffs, rhs).prop_map(move |(objs, coeffs, rhs)| {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = objs
                .iter()
                .enumerate()
                .map(|(i, &o)| {
                    m.add_var(
                        netsmith_lp::VarType::Continuous,
                        0.0,
                        10.0,
                        o,
                        format!("x{i}"),
                    )
                })
                .collect();
            for (row, &b) in coeffs.iter().zip(rhs.iter()) {
                let expr = LinExpr::from_terms(vars.iter().zip(row.iter()).map(|(&v, &c)| (v, c)));
                m.add_constr(expr, Cmp::Le, b);
            }
            (m, nv)
        })
    })
}

/// Random binary program with <= constraints, small enough to brute force.
fn random_binary_program() -> impl Strategy<Value = Model> {
    let nvars = 2usize..7;
    let ncons = 1usize..4;
    (nvars, ncons).prop_flat_map(|(nv, nc)| {
        let objs = proptest::collection::vec(-5.0f64..5.0, nv);
        let coeffs = proptest::collection::vec(proptest::collection::vec(-3.0f64..3.0, nv), nc);
        let rhs = proptest::collection::vec(0.0f64..6.0, nc);
        (objs, coeffs, rhs).prop_map(move |(objs, coeffs, rhs)| {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = objs
                .iter()
                .enumerate()
                .map(|(i, &o)| m.add_binary(o, format!("b{i}")))
                .collect();
            for (row, &b) in coeffs.iter().zip(rhs.iter()) {
                let expr = LinExpr::from_terms(vars.iter().zip(row.iter()).map(|(&v, &c)| (v, c)));
                m.add_constr(expr, Cmp::Le, b);
            }
            m
        })
    })
}

fn brute_force_binary_max(m: &Model) -> Option<f64> {
    let n = m.num_vars();
    let mut best: Option<f64> = None;
    for mask in 0u64..(1 << n) {
        let values: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
        if m.is_feasible(&values, 1e-9) {
            let obj = m.objective_value(&values);
            best = Some(best.map_or(obj, |b: f64| b.max(obj)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn lp_solution_is_feasible_and_dominates_random_points((model, nv) in random_bounded_lp(), samples in proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 4), 16)) {
        let sol = netsmith_lp::simplex::solve_lp(&model).unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!(model.is_feasible(&sol.values, 1e-5));
        // No sampled feasible point may beat the reported optimum.
        for point in samples {
            let candidate: Vec<f64> = point.iter().take(nv).copied().collect();
            if candidate.len() == nv && model.is_feasible(&candidate, 1e-9) {
                prop_assert!(model.objective_value(&candidate) <= sol.objective + 1e-5);
            }
        }
    }

    #[test]
    fn milp_matches_brute_force(model in random_binary_program()) {
        let sol = MilpSolver::new(BranchBoundConfig::default()).solve(&model).unwrap();
        let brute = brute_force_binary_max(&model);
        match brute {
            None => prop_assert_eq!(sol.status, SolveStatus::Infeasible),
            Some(best) => {
                prop_assert!(sol.status.has_solution());
                prop_assert!((sol.objective - best).abs() < 1e-5,
                    "solver {} vs brute force {}", sol.objective, best);
                prop_assert!(model.is_feasible(&sol.values, 1e-5));
            }
        }
    }

    #[test]
    fn milp_bound_is_valid(model in random_binary_program()) {
        let sol = MilpSolver::new(BranchBoundConfig::default()).solve(&model).unwrap();
        if sol.status == SolveStatus::Optimal {
            // For maximisation the proven bound can never be below the objective.
            prop_assert!(sol.bound >= sol.objective - 1e-6);
        }
    }
}
