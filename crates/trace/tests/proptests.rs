//! Property tests: codec round-trips over random traces, streaming/whole-
//! trace codec agreement, and generator determinism.

use netsmith_trace::{Trace, TraceCursor, TraceMessage, TraceModel, TraceReader, TraceWriter};
use proptest::prelude::*;

/// A random valid trace: in-range distinct endpoints, flits >= 1,
/// non-decreasing issue cycles inside the horizon.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (2u32..24, 1u64..512, 0usize..64).prop_flat_map(|(routers, horizon, count)| {
        proptest::collection::vec(
            (0u32..routers, 1u32..routers, 1u32..10, 0u64..horizon),
            count,
        )
        .prop_map(move |raw| {
            let mut messages: Vec<TraceMessage> = raw
                .into_iter()
                .map(|(src, dst_off, flits, issue)| TraceMessage {
                    src,
                    dst: (src + dst_off) % routers,
                    flits,
                    issue,
                })
                .collect();
            messages.sort_by_key(|m| m.issue);
            Trace::new(routers, horizon, messages)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary and JSON codecs both reproduce the trace bit-for-bit, and
    /// the streaming reader agrees with the whole-trace decoder.
    #[test]
    fn codecs_round_trip(trace in arb_trace()) {
        trace.validate().unwrap();

        let mut bytes = Vec::new();
        trace.write_binary(&mut bytes).unwrap();
        let back = Trace::read_binary(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(&back, &trace);

        let json_back = Trace::from_json_str(&trace.to_json_string()).unwrap();
        prop_assert_eq!(&json_back, &trace);

        let mut cursor = bytes.as_slice();
        let mut reader = TraceReader::new(&mut cursor).unwrap();
        prop_assert_eq!(reader.header(), trace.header);
        let mut streamed = Vec::new();
        while let Some(m) = reader.next_message().unwrap() {
            streamed.push(m);
        }
        prop_assert_eq!(streamed, trace.messages);
    }

    /// The streaming writer produces the same bytes as the whole-trace
    /// encoder.
    #[test]
    fn streaming_writer_matches_whole_trace_encoder(trace in arb_trace()) {
        let mut whole = Vec::new();
        trace.write_binary(&mut whole).unwrap();

        let mut streamed = Vec::new();
        let mut writer = TraceWriter::new(&mut streamed, trace.header).unwrap();
        for m in &trace.messages {
            writer.write_message(m).unwrap();
        }
        writer.finish().unwrap();
        prop_assert_eq!(streamed, whole);
    }

    /// Replay schedules are deterministic and respect the load-zero edge.
    #[test]
    fn replay_schedule_is_deterministic(trace in arb_trace(), load in 0.01f64..1.5) {
        let drain = |cursor: &mut TraceCursor<'_>| {
            let mut out = Vec::new();
            for cycle in 0..2048u64 {
                while let Some(m) = cursor.pop_due(cycle) {
                    out.push((cycle, *m));
                }
            }
            out
        };
        let a = drain(&mut TraceCursor::new(&trace, load));
        let b = drain(&mut TraceCursor::new(&trace, load));
        prop_assert_eq!(&a, &b);
        // Due cycles are non-decreasing and messages come in trace order
        // within a wave.
        for pair in a.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
        }
    }

    /// Generators are pure in (model, routers, horizon, seed).
    #[test]
    fn generators_are_seed_deterministic(
        seed in any::<u64>(),
        routers in 2u32..24,
        horizon in 64u64..512,
        which in 0usize..2,
    ) {
        let name = TraceModel::names()[which];
        let model = TraceModel::by_name(name).unwrap();
        let a = model.generate(routers, horizon, seed);
        let b = model.generate(routers, horizon, seed);
        prop_assert_eq!(&a, &b);
        a.validate().unwrap();
    }
}
