//! # netsmith-trace
//!
//! Message traces for the NetSmith simulator: a compact on-disk format,
//! deterministic replay scheduling, and seeded application-model
//! generators.
//!
//! Bernoulli injection — the simulator's default — offers every source the
//! same memoryless coin, which is exactly the traffic real applications do
//! *not* produce: GC phases chase pointers into a small heap working set,
//! coherence storms arrive in ON/OFF bursts, and memory traffic piles onto
//! a handful of controllers.  This crate closes that gap in three layers:
//!
//! * [`mod@format`] — [`Trace`] / [`TraceMessage`] with a versioned binary
//!   codec (magic `NSTR`), a JSON codec over the shared
//!   [`netsmith_topo::json::Json`] tree, streaming [`TraceWriter`] /
//!   [`TraceReader`], and [`Trace::validate`] (in-range endpoints,
//!   non-decreasing issue cycles).
//! * [`replay`] — [`TraceCursor`], the sorted pending-arrival schedule
//!   both simulation engines drain.  Load scaling works by *cycle
//!   stretch*: replaying at half the native load doubles every gap,
//!   preserving burst structure.  The cursor consumes no RNG, so the
//!   reference and compiled engines stay bit-identical under replay.
//! * [`generators`] + [`stats`] — [`TraceModel::PointerChase`] and
//!   [`TraceModel::OnOffHotspot`] produce seeded reproducible traces, and
//!   [`TraceStats`] summarises any trace (flit-weighted [`DemandMatrix`],
//!   burstiness, destination skew) so the synthesis objectives can target
//!   a trace the same way they target a synthetic pattern.
//!
//! ```
//! use netsmith_trace::{generate_named, TraceCursor, TraceStats};
//!
//! let trace = generate_named("onoff-hotspot", 20, 2048, 7).unwrap();
//! trace.validate().unwrap();
//!
//! // Summarise: the hotspot model concentrates demand on few sinks.
//! let stats = TraceStats::of(&trace);
//! assert!(stats.top_decile_destination_share > 0.3);
//!
//! // Replay at a quarter of the native offered load: same messages,
//! // stretched 4x in time.
//! let load = stats.offered_flits_per_node_cycle / 4.0;
//! let mut cursor = TraceCursor::new(&trace, load);
//! let first = cursor.pop_due(u64::MAX).unwrap();
//! assert_eq!(first.src, trace.messages[0].src);
//! ```
//!
//! [`DemandMatrix`]: netsmith_topo::DemandMatrix

pub mod format;
pub mod generators;
pub mod replay;
pub mod stats;

pub use format::{
    Trace, TraceError, TraceHeader, TraceMessage, TraceReader, TraceWriter, TRACE_VERSION,
};
pub use generators::{
    generate_named, OnOffHotspotParams, PointerChaseParams, TraceModel, DATA_FLITS, REQUEST_FLITS,
};
pub use replay::TraceCursor;
pub use stats::TraceStats;
