//! Application-model trace generators.
//!
//! Two seeded, reproducible models stand in for the application classes the
//! paper's workload discussion highlights as poorly served by Bernoulli
//! injection:
//!
//! * [`TraceModel::PointerChase`] — a garbage-collector / pointer-chasing
//!   phase pattern: each core alternates between *chase* phases (bursts of
//!   short request flits to a small working set of "heap-home" routers,
//!   answered with long data replies) and quiescent *scan* phases with only
//!   background traffic.  Spatially skewed and temporally phased.
//! * [`TraceModel::OnOffHotspot`] — Markov-modulated ON/OFF sources with a
//!   shared hotspot destination set: bursty at every timescale the ON/OFF
//!   durations span, with most demand concentrated on a few sinks.
//!
//! Generation is a pure function of `(model, routers, horizon, seed)`; the
//! same arguments always produce the identical trace, so experiment specs
//! can reference a generator by name + seed instead of shipping trace
//! files.

use crate::format::{Trace, TraceMessage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the pointer-chasing / GC model.
#[derive(Debug, Clone, PartialEq)]
pub struct PointerChaseParams {
    /// Mean length of a chase or scan phase, in cycles.
    pub phase_cycles: u64,
    /// Per-cycle injection probability while chasing.
    pub chase_inject_prob: f64,
    /// Per-cycle injection probability while scanning (background load).
    pub scan_inject_prob: f64,
    /// Number of heap-home routers each source chases into.
    pub heap_targets: usize,
    /// Fraction of chase messages that go to the source's heap homes (the
    /// rest are uniform pointer spillover).
    pub hot_fraction: f64,
    /// Fraction of messages that are long data replies instead of short
    /// requests.
    pub data_fraction: f64,
}

impl Default for PointerChaseParams {
    fn default() -> Self {
        PointerChaseParams {
            phase_cycles: 192,
            chase_inject_prob: 0.35,
            scan_inject_prob: 0.03,
            heap_targets: 2,
            hot_fraction: 0.7,
            data_fraction: 0.35,
        }
    }
}

/// Parameters of the ON/OFF bursty hotspot model.
#[derive(Debug, Clone, PartialEq)]
pub struct OnOffHotspotParams {
    /// Mean ON-burst duration in cycles.
    pub mean_on: u64,
    /// Mean OFF-gap duration in cycles.
    pub mean_off: u64,
    /// Per-cycle injection probability while ON.
    pub inject_prob: f64,
    /// Fraction of messages aimed at the hotspot set (the rest uniform).
    pub hotspot_fraction: f64,
    /// Number of hotspot destinations, drawn from the seed when `targets`
    /// is empty.
    pub hotspots: usize,
    /// Explicit hotspot router ids; leave empty to derive from the seed.
    pub targets: Vec<usize>,
}

impl Default for OnOffHotspotParams {
    fn default() -> Self {
        OnOffHotspotParams {
            mean_on: 48,
            mean_off: 160,
            inject_prob: 0.5,
            hotspot_fraction: 0.6,
            hotspots: 2,
            targets: Vec::new(),
        }
    }
}

/// Flit size of a short request / control message.
pub const REQUEST_FLITS: u32 = 1;
/// Flit size of a long data message (cache-line sized, matching the
/// simulator's large packet class).
pub const DATA_FLITS: u32 = 9;

/// A named, parameterised trace model.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceModel {
    /// GC / pointer-chasing phases (see module docs).
    PointerChase(PointerChaseParams),
    /// Markov-modulated ON/OFF sources over a hotspot sink set.
    OnOffHotspot(OnOffHotspotParams),
}

impl TraceModel {
    /// The model's wire name, accepted by [`TraceModel::by_name`].
    pub fn name(&self) -> &'static str {
        match self {
            TraceModel::PointerChase(_) => "pointer-chase",
            TraceModel::OnOffHotspot(_) => "onoff-hotspot",
        }
    }

    /// Look up a model by wire name with default parameters.
    pub fn by_name(name: &str) -> Option<TraceModel> {
        match name {
            "pointer-chase" => Some(TraceModel::PointerChase(PointerChaseParams::default())),
            "onoff-hotspot" => Some(TraceModel::OnOffHotspot(OnOffHotspotParams::default())),
            _ => None,
        }
    }

    /// Names accepted by [`TraceModel::by_name`].
    pub fn names() -> &'static [&'static str] {
        &["pointer-chase", "onoff-hotspot"]
    }

    /// Generate a trace over `routers` routers and `horizon` cycles.  Pure
    /// in `(self, routers, horizon, seed)`.
    pub fn generate(&self, routers: u32, horizon: u64, seed: u64) -> Trace {
        assert!(routers >= 2, "trace generation needs at least two routers");
        let mut messages = match self {
            TraceModel::PointerChase(p) => pointer_chase(p, routers, horizon, seed),
            TraceModel::OnOffHotspot(p) => on_off_hotspot(p, routers, horizon, seed),
        };
        messages.sort_by_key(|m| m.issue);
        Trace::new(routers, horizon, messages)
    }
}

/// Generate a trace from a model's wire name with default parameters.
pub fn generate_named(name: &str, routers: u32, horizon: u64, seed: u64) -> Option<Trace> {
    TraceModel::by_name(name).map(|m| m.generate(routers, horizon, seed))
}

/// A geometric duration with the given mean, at least 1 cycle.
fn geometric(rng: &mut SmallRng, mean: u64) -> u64 {
    let p = 1.0 / mean.max(1) as f64;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    ((u.ln() / (1.0 - p).ln()).ceil() as u64).max(1)
}

fn uniform_other(rng: &mut SmallRng, n: u32, src: u32) -> u32 {
    let d = rng.gen_range(0..n - 1);
    if d >= src {
        d + 1
    } else {
        d
    }
}

fn pointer_chase(
    p: &PointerChaseParams,
    routers: u32,
    horizon: u64,
    seed: u64,
) -> Vec<TraceMessage> {
    let mut messages = Vec::new();
    for src in 0..routers {
        // One RNG per source so each source's stream is self-contained.
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(src) + 1)),
        );
        // This source's heap homes: a small fixed working set.
        let homes: Vec<u32> = (0..p.heap_targets)
            .map(|_| uniform_other(&mut rng, routers, src))
            .collect();
        let mut chasing = rng.gen_bool(0.5);
        let mut phase_end = geometric(&mut rng, p.phase_cycles);
        for cycle in 0..horizon {
            if cycle >= phase_end {
                chasing = !chasing;
                phase_end = cycle + geometric(&mut rng, p.phase_cycles);
            }
            let inject_prob = if chasing {
                p.chase_inject_prob
            } else {
                p.scan_inject_prob
            };
            if !rng.gen_bool(inject_prob) {
                continue;
            }
            let dst = if chasing && rng.gen_bool(p.hot_fraction) {
                homes[rng.gen_range(0..homes.len())]
            } else {
                uniform_other(&mut rng, routers, src)
            };
            let flits = if rng.gen_bool(p.data_fraction) {
                DATA_FLITS
            } else {
                REQUEST_FLITS
            };
            messages.push(TraceMessage {
                src,
                dst,
                flits,
                issue: cycle,
            });
        }
    }
    messages
}

fn on_off_hotspot(
    p: &OnOffHotspotParams,
    routers: u32,
    horizon: u64,
    seed: u64,
) -> Vec<TraceMessage> {
    // The hotspot set is shared by all sources: explicit targets, or a
    // seed-derived sample.
    let targets: Vec<u32> = if p.targets.is_empty() {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);
        let want = p.hotspots.clamp(1, routers as usize);
        let mut picked = Vec::with_capacity(want);
        while picked.len() < want {
            let t = rng.gen_range(0..routers);
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        picked
    } else {
        p.targets.iter().map(|&t| t as u32).collect()
    };
    assert!(
        targets.iter().all(|&t| t < routers),
        "hotspot targets must be in range"
    );
    let mut messages = Vec::new();
    for src in 0..routers {
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (0xBF58_476D_1CE4_E5B9u64.wrapping_mul(u64::from(src) + 1)),
        );
        let mut on = rng.gen_bool(p.mean_on as f64 / (p.mean_on + p.mean_off) as f64);
        let mut phase_end = geometric(&mut rng, if on { p.mean_on } else { p.mean_off });
        for cycle in 0..horizon {
            if cycle >= phase_end {
                on = !on;
                phase_end = cycle + geometric(&mut rng, if on { p.mean_on } else { p.mean_off });
            }
            if !on || !rng.gen_bool(p.inject_prob) {
                continue;
            }
            let dst = if rng.gen_bool(p.hotspot_fraction) {
                let pick: Vec<u32> = targets.iter().copied().filter(|&t| t != src).collect();
                if pick.is_empty() {
                    uniform_other(&mut rng, routers, src)
                } else {
                    pick[rng.gen_range(0..pick.len())]
                }
            } else {
                uniform_other(&mut rng, routers, src)
            };
            let flits = if rng.gen_bool(0.5) {
                DATA_FLITS
            } else {
                REQUEST_FLITS
            };
            messages.push(TraceMessage {
                src,
                dst,
                flits,
                issue: cycle,
            });
        }
    }
    messages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn generated_traces_validate() {
        for name in TraceModel::names() {
            let t = generate_named(name, 20, 2048, 7).unwrap();
            t.validate().unwrap();
            assert!(!t.messages.is_empty(), "{name} generated nothing");
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for name in TraceModel::names() {
            let a = generate_named(name, 20, 1024, 42).unwrap();
            let b = generate_named(name, 20, 1024, 42).unwrap();
            assert_eq!(a, b, "{name} is not reproducible");
            let c = generate_named(name, 20, 1024, 43).unwrap();
            assert_ne!(a, c, "{name} ignores its seed");
        }
    }

    #[test]
    fn onoff_hotspot_is_bursty_and_skewed() {
        let t = generate_named("onoff-hotspot", 20, 4096, 11).unwrap();
        let stats = TraceStats::of(&t);
        // Burstiness is measured on the aggregate of 20 independent ON/OFF
        // sources, which partially smooths the per-source bursts; a
        // Bernoulli trace of the same volume sits below 0.05.
        assert!(stats.burstiness > 0.2, "burstiness {}", stats.burstiness);
        assert!(
            stats.top_decile_destination_share > 0.3,
            "share {}",
            stats.top_decile_destination_share
        );
    }

    #[test]
    fn pointer_chase_is_spatially_skewed() {
        let t = generate_named("pointer-chase", 20, 4096, 11).unwrap();
        let stats = TraceStats::of(&t);
        // Each source chases into 2 heap homes; aggregate destination
        // demand is far from uniform.
        assert!(
            stats.top_decile_destination_share > 0.15,
            "share {}",
            stats.top_decile_destination_share
        );
    }

    #[test]
    fn explicit_hotspot_targets_are_honoured() {
        let params = OnOffHotspotParams {
            targets: vec![3, 4],
            hotspot_fraction: 1.0,
            ..OnOffHotspotParams::default()
        };
        let t = TraceModel::OnOffHotspot(params).generate(20, 1024, 5);
        for m in &t.messages {
            assert!(m.dst == 3 || m.dst == 4);
        }
    }

    #[test]
    fn unknown_model_names_are_rejected() {
        assert!(generate_named("zipf", 20, 128, 1).is_none());
        assert!(TraceModel::by_name("pointer-chase").is_some());
    }
}
