//! Summary statistics over a trace: the per-pair demand matrix and the
//! temporal / spatial shape measures figures assert on.
//!
//! The demand matrix is the bridge from a trace back into the synthesis
//! flow — `ObjectiveSpec::TraceLatOp` resolves a trace to
//! [`TraceStats::demand_matrix`] and optimizes the same traffic-weighted
//! hop objective the synthetic patterns use, so a topology can be
//! *synthesized for* a recorded workload, not just evaluated under it.

use crate::format::Trace;
use netsmith_topo::DemandMatrix;

/// Number of equal time bins used for the burstiness measure.
const BURSTINESS_BINS: usize = 64;

/// Aggregate shape of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Normalized per-pair flit demand (sums to 1 for a non-empty trace).
    pub demand: DemandMatrix,
    /// Total payload flits across all messages.
    pub total_flits: u64,
    /// Average offered load: `total_flits / (routers * horizon)`.
    pub offered_flits_per_node_cycle: f64,
    /// Coefficient of variation of per-bin flit counts over 64 equal time
    /// bins.  A Bernoulli-like smooth trace sits near 0; ON/OFF traffic is
    /// well above 1.
    pub burstiness: f64,
    /// Fraction of all flits absorbed by the most-loaded 10% of
    /// destinations (at least one).  Uniform traffic sits near 0.1; a
    /// hotspot trace approaches 1.
    pub top_decile_destination_share: f64,
}

impl TraceStats {
    /// Compute the statistics of `trace`.
    pub fn of(trace: &Trace) -> Self {
        let n = trace.header.routers as usize;
        let horizon = trace.header.horizon.max(1);
        let mut demand = DemandMatrix::zeros(n);
        let mut per_dst = vec![0u64; n];
        let mut bins = vec![0u64; BURSTINESS_BINS];
        let mut total_flits = 0u64;
        for m in &trace.messages {
            let flits = m.flits as u64;
            total_flits += flits;
            demand.add(m.src as usize, m.dst as usize, m.flits as f64);
            per_dst[m.dst as usize] += flits;
            let bin = (m.issue * BURSTINESS_BINS as u64 / horizon) as usize;
            bins[bin.min(BURSTINESS_BINS - 1)] += flits;
        }
        demand.normalize();
        TraceStats {
            demand,
            total_flits,
            offered_flits_per_node_cycle: trace.offered_flits_per_node_cycle(),
            burstiness: coefficient_of_variation(&bins),
            top_decile_destination_share: top_decile_share(&mut per_dst, total_flits),
        }
    }

    /// The normalized demand matrix (alias for the `demand` field, matching
    /// the `TrafficPattern::demand_matrix` call shape).
    pub fn demand_matrix(&self) -> &DemandMatrix {
        &self.demand
    }
}

fn coefficient_of_variation(bins: &[u64]) -> f64 {
    let n = bins.len() as f64;
    let mean = bins.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = bins
        .iter()
        .map(|&b| {
            let d = b as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

fn top_decile_share(per_dst: &mut [u64], total_flits: u64) -> f64 {
    if total_flits == 0 || per_dst.is_empty() {
        return 0.0;
    }
    per_dst.sort_unstable_by(|a, b| b.cmp(a));
    let k = (per_dst.len() / 10).max(1);
    per_dst[..k].iter().sum::<u64>() as f64 / total_flits as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceMessage;

    fn msg(src: u32, dst: u32, flits: u32, issue: u64) -> TraceMessage {
        TraceMessage {
            src,
            dst,
            flits,
            issue,
        }
    }

    #[test]
    fn demand_matrix_is_flit_weighted_and_normalized() {
        let t = Trace::new(
            4,
            100,
            vec![msg(0, 1, 3, 0), msg(0, 1, 1, 10), msg(2, 3, 4, 20)],
        );
        let stats = TraceStats::of(&t);
        assert_eq!(stats.total_flits, 8);
        assert!((stats.demand.demand(0, 1) - 0.5).abs() < 1e-12);
        assert!((stats.demand.demand(2, 3) - 0.5).abs() < 1e-12);
        assert!((stats.demand.total() - 1.0).abs() < 1e-12);
        assert!((stats.offered_flits_per_node_cycle - 8.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn smooth_traffic_has_low_burstiness_bursty_traffic_high() {
        // One flit every cycle from router 0: perfectly smooth.
        let smooth_msgs = (0..6400).map(|c| msg(0, 1, 1, c)).collect();
        let smooth = TraceStats::of(&Trace::new(2, 6400, smooth_msgs));
        assert!(smooth.burstiness < 0.05, "got {}", smooth.burstiness);

        // The same flit count crammed into the first 1/64th of the horizon.
        let bursty_msgs = (0..6400).map(|_| msg(0, 1, 1, 0)).collect();
        let bursty = TraceStats::of(&Trace::new(2, 6400, bursty_msgs));
        assert!(bursty.burstiness > 4.0, "got {}", bursty.burstiness);
    }

    #[test]
    fn hotspot_traffic_concentrates_the_top_decile() {
        // 20 routers: everyone hammers router 5.
        let msgs = (0..20)
            .filter(|&s| s != 5)
            .map(|s| msg(s, 5, 2, s as u64))
            .collect();
        let hot = TraceStats::of(&Trace::new(20, 32, msgs));
        assert!((hot.top_decile_destination_share - 1.0).abs() < 1e-12);

        // Uniform ring: every destination gets the same share, so the top
        // 10% (2 of 20) holds exactly 0.1.
        let msgs = (0..20u32)
            .map(|s| msg(s, (s + 1) % 20, 2, s as u64))
            .collect();
        let uni = TraceStats::of(&Trace::new(20, 32, msgs));
        assert!((uni.top_decile_destination_share - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_yields_zeroed_stats() {
        let stats = TraceStats::of(&Trace::new(4, 10, vec![]));
        assert_eq!(stats.total_flits, 0);
        assert_eq!(stats.burstiness, 0.0);
        assert_eq!(stats.top_decile_destination_share, 0.0);
        assert_eq!(stats.demand.total(), 0.0);
    }
}
