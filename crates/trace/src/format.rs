//! The on-disk trace format: a versioned header plus a flat list of
//! messages, with hand-written binary and JSON codecs (the workspace's
//! serde is an offline no-op shim).
//!
//! ## Binary layout (version 1, little-endian)
//!
//! ```text
//! magic    4 bytes   b"NSTR"
//! version  u16       1
//! reserved u16       0
//! routers  u32       router count the endpoints are defined over
//! horizon  u64       cycle horizon; every issue cycle is < horizon
//! messages u64       message record count
//! ---- then `messages` records of 20 bytes each ----
//! src      u32
//! dst      u32
//! flits    u32       packet size in flits (>= 1)
//! issue    u64       issue cycle (non-decreasing across records)
//! ```
//!
//! The JSON codec carries the same fields
//! (`{"version", "routers", "horizon", "messages": [[src, dst, flits,
//! issue], ...]}`) through the shared [`Json`] tree; `u64` values round-trip
//! exactly up to 2^53, far beyond any cycle horizon a trace stores.

use netsmith_topo::json::Json;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

/// Format version written by this crate.
pub const TRACE_VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"NSTR";
const HEADER_BYTES: usize = 4 + 2 + 2 + 4 + 8 + 8;
const RECORD_BYTES: usize = 4 + 4 + 4 + 8;

/// Why a trace could not be decoded or fails validation.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A malformed or inconsistent trace (bad magic, out-of-range
    /// endpoint, non-monotone issue cycles, ...).
    Format(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Format(msg) => write!(f, "trace format error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> TraceError {
    TraceError::Format(msg.into())
}

/// The versioned trace header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Format version ([`TRACE_VERSION`]).
    pub version: u16,
    /// Router count the message endpoints are defined over.
    pub routers: u32,
    /// Cycle horizon: every message issues strictly before this cycle, and
    /// replay wraps around at it.
    pub horizon: u64,
    /// Number of message records.
    pub messages: u64,
}

/// One injected message: source and destination router, packet size in
/// flits, and the cycle it enters its source queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMessage {
    pub src: u32,
    pub dst: u32,
    pub flits: u32,
    pub issue: u64,
}

/// A complete in-memory trace: header plus messages in issue order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub header: TraceHeader,
    pub messages: Vec<TraceMessage>,
}

impl Trace {
    /// Assemble a trace from its parts, deriving the header counts.
    pub fn new(routers: u32, horizon: u64, messages: Vec<TraceMessage>) -> Self {
        Trace {
            header: TraceHeader {
                version: TRACE_VERSION,
                routers,
                horizon,
                messages: messages.len() as u64,
            },
            messages,
        }
    }

    /// Total payload across all messages, in flits.
    pub fn total_flits(&self) -> u64 {
        self.messages.iter().map(|m| m.flits as u64).sum()
    }

    /// The load the trace natively offers, in flits per node per cycle
    /// (what replay at this rate reproduces with a cycle-stretch of 1).
    pub fn offered_flits_per_node_cycle(&self) -> f64 {
        if self.header.routers == 0 || self.header.horizon == 0 {
            return 0.0;
        }
        self.total_flits() as f64 / (self.header.routers as f64 * self.header.horizon as f64)
    }

    /// Check the structural invariants replay relies on: the header counts
    /// match, every endpoint is in range and distinct, every packet has at
    /// least one flit, every issue cycle is inside the horizon, and issue
    /// cycles are non-decreasing (replay uses a single forward cursor).
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.header.version != TRACE_VERSION {
            return Err(format_err(format!(
                "unsupported version {} (expected {TRACE_VERSION})",
                self.header.version
            )));
        }
        if self.header.messages != self.messages.len() as u64 {
            return Err(format_err(format!(
                "header says {} messages, found {}",
                self.header.messages,
                self.messages.len()
            )));
        }
        let mut last_issue = 0u64;
        for (i, m) in self.messages.iter().enumerate() {
            if m.src >= self.header.routers || m.dst >= self.header.routers {
                return Err(format_err(format!(
                    "message {i}: endpoint {} -> {} out of range (routers = {})",
                    m.src, m.dst, self.header.routers
                )));
            }
            if m.src == m.dst {
                return Err(format_err(format!("message {i}: self-send at {}", m.src)));
            }
            if m.flits == 0 {
                return Err(format_err(format!("message {i}: zero flits")));
            }
            if m.issue >= self.header.horizon {
                return Err(format_err(format!(
                    "message {i}: issue cycle {} outside horizon {}",
                    m.issue, self.header.horizon
                )));
            }
            if m.issue < last_issue {
                return Err(format_err(format!(
                    "message {i}: issue cycle {} before predecessor's {last_issue}",
                    m.issue
                )));
            }
            last_issue = m.issue;
        }
        Ok(())
    }

    /// Encode to the version-1 binary layout.
    pub fn write_binary<W: Write>(&self, w: &mut W) -> Result<(), TraceError> {
        let mut writer = TraceWriter::new(w, self.header)?;
        for m in &self.messages {
            writer.write_message(m)?;
        }
        writer.finish()
    }

    /// Decode from the version-1 binary layout (streaming under the hood;
    /// the whole message list is collected).
    pub fn read_binary<R: Read>(r: &mut R) -> Result<Self, TraceError> {
        let mut reader = TraceReader::new(r)?;
        let header = reader.header();
        let mut messages = Vec::with_capacity(header.messages.min(1 << 20) as usize);
        while let Some(m) = reader.next_message()? {
            messages.push(m);
        }
        Ok(Trace { header, messages })
    }

    /// Encode as a JSON tree.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::Num(self.header.version as f64)),
            ("routers".into(), Json::Num(self.header.routers as f64)),
            ("horizon".into(), Json::Num(self.header.horizon as f64)),
            (
                "messages".into(),
                Json::Arr(
                    self.messages
                        .iter()
                        .map(|m| {
                            Json::Arr(vec![
                                Json::Num(m.src as f64),
                                Json::Num(m.dst as f64),
                                Json::Num(m.flits as f64),
                                Json::Num(m.issue as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode from a JSON tree.
    pub fn from_json(json: &Json) -> Result<Self, TraceError> {
        let field = |key: &str| json.require(key).map_err(format_err);
        let version = field("version")?.as_u64().map_err(format_err)? as u16;
        let routers = field("routers")?.as_u64().map_err(format_err)? as u32;
        let horizon = field("horizon")?.as_u64().map_err(format_err)?;
        let mut messages = Vec::new();
        for (i, item) in field("messages")?
            .as_arr()
            .map_err(format_err)?
            .iter()
            .enumerate()
        {
            let quad = item.as_arr().map_err(format_err)?;
            if quad.len() != 4 {
                return Err(format_err(format!(
                    "message {i}: expected [src, dst, flits, issue]"
                )));
            }
            let num = |j: usize| quad[j].as_u64().map_err(format_err);
            messages.push(TraceMessage {
                src: num(0)? as u32,
                dst: num(1)? as u32,
                flits: num(2)? as u32,
                issue: num(3)?,
            });
        }
        Ok(Trace {
            header: TraceHeader {
                version,
                routers,
                horizon,
                messages: messages.len() as u64,
            },
            messages,
        })
    }

    /// Render as a JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parse from a JSON string.
    pub fn from_json_str(text: &str) -> Result<Self, TraceError> {
        Trace::from_json(&Json::parse(text).map_err(format_err)?)
    }
}

/// Streaming binary encoder: the header (with its message count) goes out
/// first, then one record per [`TraceWriter::write_message`] call;
/// [`TraceWriter::finish`] fails if the declared count was not met, so a
/// truncated stream can never silently pass for a complete one.
pub struct TraceWriter<'w, W: Write> {
    out: &'w mut W,
    declared: u64,
    written: u64,
}

impl<'w, W: Write> TraceWriter<'w, W> {
    /// Write the header and start the record stream.
    pub fn new(out: &'w mut W, header: TraceHeader) -> Result<Self, TraceError> {
        let mut buf = [0u8; HEADER_BYTES];
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..6].copy_from_slice(&header.version.to_le_bytes());
        // bytes 6..8 reserved, zero
        buf[8..12].copy_from_slice(&header.routers.to_le_bytes());
        buf[12..20].copy_from_slice(&header.horizon.to_le_bytes());
        buf[20..28].copy_from_slice(&header.messages.to_le_bytes());
        out.write_all(&buf)?;
        Ok(TraceWriter {
            out,
            declared: header.messages,
            written: 0,
        })
    }

    /// Append one record.
    pub fn write_message(&mut self, m: &TraceMessage) -> Result<(), TraceError> {
        if self.written == self.declared {
            return Err(format_err(format!(
                "more messages than the declared {}",
                self.declared
            )));
        }
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..4].copy_from_slice(&m.src.to_le_bytes());
        buf[4..8].copy_from_slice(&m.dst.to_le_bytes());
        buf[8..12].copy_from_slice(&m.flits.to_le_bytes());
        buf[12..20].copy_from_slice(&m.issue.to_le_bytes());
        self.out.write_all(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Close the stream, checking the declared record count was written.
    pub fn finish(self) -> Result<(), TraceError> {
        if self.written != self.declared {
            return Err(format_err(format!(
                "wrote {} of {} declared messages",
                self.written, self.declared
            )));
        }
        Ok(())
    }
}

/// Streaming binary decoder: the header is read eagerly, records on
/// demand, so a long trace never needs to fit in memory twice.
pub struct TraceReader<'r, R: Read> {
    input: &'r mut R,
    header: TraceHeader,
    read: u64,
}

impl<'r, R: Read> TraceReader<'r, R> {
    /// Read and check the header.
    pub fn new(input: &'r mut R) -> Result<Self, TraceError> {
        let mut buf = [0u8; HEADER_BYTES];
        input.read_exact(&mut buf)?;
        if buf[0..4] != MAGIC {
            return Err(format_err("bad magic (not an NSTR trace)"));
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != TRACE_VERSION {
            return Err(format_err(format!(
                "unsupported version {version} (expected {TRACE_VERSION})"
            )));
        }
        let header = TraceHeader {
            version,
            routers: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            horizon: u64::from_le_bytes(buf[12..20].try_into().unwrap()),
            messages: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
        };
        Ok(TraceReader {
            input,
            header,
            read: 0,
        })
    }

    /// The decoded header.
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    /// The next record, or `None` after the declared count.
    pub fn next_message(&mut self) -> Result<Option<TraceMessage>, TraceError> {
        if self.read == self.header.messages {
            return Ok(None);
        }
        let mut buf = [0u8; RECORD_BYTES];
        self.input.read_exact(&mut buf).map_err(|e| {
            format_err(format!(
                "truncated record {} of {}: {e}",
                self.read, self.header.messages
            ))
        })?;
        self.read += 1;
        Ok(Some(TraceMessage {
            src: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            dst: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            flits: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            issue: u64::from_le_bytes(buf[12..20].try_into().unwrap()),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            4,
            100,
            vec![
                TraceMessage {
                    src: 0,
                    dst: 1,
                    flits: 9,
                    issue: 0,
                },
                TraceMessage {
                    src: 2,
                    dst: 3,
                    flits: 1,
                    issue: 5,
                },
                TraceMessage {
                    src: 1,
                    dst: 0,
                    flits: 9,
                    issue: 5,
                },
                TraceMessage {
                    src: 3,
                    dst: 0,
                    flits: 1,
                    issue: 99,
                },
            ],
        )
    }

    #[test]
    fn binary_round_trips() {
        let trace = sample();
        let mut buf = Vec::new();
        trace.write_binary(&mut buf).unwrap();
        assert_eq!(buf.len(), HEADER_BYTES + 4 * RECORD_BYTES);
        let back = Trace::read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn json_round_trips() {
        let trace = sample();
        let text = trace.to_json_string();
        let back = Trace::from_json_str(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn validate_accepts_the_sample_and_names_each_violation() {
        sample().validate().unwrap();
        let mut bad = sample();
        bad.messages[0].issue = 7; // later than its successor's issue cycle 5
        assert!(matches!(bad.validate(), Err(TraceError::Format(_))));

        let mut bad = sample();
        bad.messages[2].dst = 9;
        assert!(bad.validate().unwrap_err().to_string().contains("range"));

        let mut bad = sample();
        bad.messages[3].issue = 100;
        assert!(bad.validate().unwrap_err().to_string().contains("horizon"));

        let mut bad = sample();
        bad.messages[0].flits = 0;
        assert!(bad.validate().unwrap_err().to_string().contains("flits"));

        let mut bad = sample();
        bad.header.messages = 7;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn corrupt_magic_and_truncation_are_rejected() {
        let trace = sample();
        let mut buf = Vec::new();
        trace.write_binary(&mut buf).unwrap();
        let mut corrupted = buf.clone();
        corrupted[0] = b'X';
        assert!(Trace::read_binary(&mut corrupted.as_slice()).is_err());
        let truncated = &buf[..buf.len() - 3];
        let mut r = truncated;
        assert!(Trace::read_binary(&mut r).is_err());
    }

    #[test]
    fn writer_enforces_the_declared_count() {
        let trace = sample();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, trace.header).unwrap();
        w.write_message(&trace.messages[0]).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn offered_load_is_total_flits_over_node_cycles() {
        let trace = sample();
        // 20 flits over 4 routers x 100 cycles.
        assert!((trace.offered_flits_per_node_cycle() - 0.05).abs() < 1e-12);
    }
}
