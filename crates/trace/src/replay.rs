//! The replay schedule: a sorted pending-arrival cursor over a trace.
//!
//! [`TraceCursor`] turns a validated trace into the injection sequence a
//! simulator consumes: per simulated cycle, [`TraceCursor::pop_due`] yields
//! every message whose (scaled) issue cycle has arrived, in trace order.
//! Two deliberately boring properties make it the shared foundation of the
//! reference and compiled simulation loops:
//!
//! * **Determinism** — the schedule is a pure function of
//!   `(trace, offered load)`; no RNG is consumed, so two engines that
//!   construct the cursor with the same arguments and poll it at the same
//!   cycles inject bit-identical traffic.
//! * **Load scaling by cycle-stretch** — a trace natively offers
//!   `total_flits / (routers * horizon)` flits per node per cycle; to
//!   replay at a different offered load every issue cycle is multiplied by
//!   `native / offered` (stretched when quieter, compressed when hotter),
//!   preserving the trace's burst structure instead of resampling it.
//! * **Wrap-around** — when the cursor exhausts the (stretched) horizon it
//!   restarts at the next wave, so measurement windows longer than the
//!   trace keep seeing traffic.

use crate::format::{Trace, TraceMessage};

/// A forward-only cursor yielding trace messages at their scaled issue
/// cycles, wave after wave.
#[derive(Debug, Clone)]
pub struct TraceCursor<'t> {
    messages: &'t [TraceMessage],
    /// Scale factor applied to issue cycles (`native / offered`).
    stretch: f64,
    /// Horizon after scaling; each wave `w` replays the trace with its
    /// issue cycles offset by `w * scaled_horizon`.
    scaled_horizon: u64,
    /// Cycle offset of the current wave.
    base: u64,
    /// Next message index within the current wave.
    idx: usize,
}

impl<'t> TraceCursor<'t> {
    /// Build the schedule for replaying `trace` at `offered` flits per
    /// node per cycle.  An offered load of zero (or an empty trace) yields
    /// an empty schedule.
    pub fn new(trace: &'t Trace, offered_flits_per_node_cycle: f64) -> Self {
        let native = trace.offered_flits_per_node_cycle();
        let (messages, stretch) = if offered_flits_per_node_cycle > 0.0 && native > 0.0 {
            (
                trace.messages.as_slice(),
                native / offered_flits_per_node_cycle,
            )
        } else {
            (&trace.messages[..0], 1.0)
        };
        let scaled_horizon = ((trace.header.horizon as f64 * stretch).ceil() as u64).max(1);
        TraceCursor {
            messages,
            stretch,
            scaled_horizon,
            base: 0,
            idx: 0,
        }
    }

    /// The stretch factor applied to issue cycles.
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// The scaled wrap-around period.
    pub fn scaled_horizon(&self) -> u64 {
        self.scaled_horizon
    }

    #[inline]
    fn scaled_issue(&self, issue: u64) -> u64 {
        // Same float expression on every engine; `as u64` saturates, so an
        // extreme stretch parks the message past any finite run.
        self.base + (issue as f64 * self.stretch).floor() as u64
    }

    /// The next scheduled issue cycle, without advancing the cursor
    /// (`None` for an empty schedule).  After a cycle has been fully
    /// drained with [`TraceCursor::pop_due`], this is strictly in the
    /// future — which is what lets the compiled engine jump over the idle
    /// stretch between trace bursts instead of polling every cycle.
    #[inline]
    pub fn next_due(&self) -> Option<u64> {
        if self.messages.is_empty() {
            return None;
        }
        if self.idx == self.messages.len() {
            // The next message is the first of the following wave; mirror
            // `pop_due`'s wrap arithmetic without committing it.
            let base = self.base.saturating_add(self.scaled_horizon);
            Some(base.saturating_add((self.messages[0].issue as f64 * self.stretch).floor() as u64))
        } else {
            Some(self.scaled_issue(self.messages[self.idx].issue))
        }
    }

    /// The next message due at or before `cycle`, advancing the cursor
    /// (and the wave, at wrap-around).  Call in a loop to drain a cycle.
    #[inline]
    pub fn pop_due(&mut self, cycle: u64) -> Option<&'t TraceMessage> {
        if self.messages.is_empty() {
            return None;
        }
        if self.idx == self.messages.len() {
            // Wave exhausted: wrap.  Scaled issues stay strictly inside
            // the wave (`scaled_horizon >= 1`), so the next wave's cycles
            // never precede this one's.
            self.base = self.base.saturating_add(self.scaled_horizon);
            self.idx = 0;
        }
        let due = self.scaled_issue(self.messages[self.idx].issue);
        if due > cycle {
            return None;
        }
        let m = &self.messages[self.idx];
        self.idx += 1;
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::new(
            4,
            10,
            vec![
                TraceMessage {
                    src: 0,
                    dst: 1,
                    flits: 2,
                    issue: 0,
                },
                TraceMessage {
                    src: 1,
                    dst: 2,
                    flits: 2,
                    issue: 4,
                },
                TraceMessage {
                    src: 2,
                    dst: 3,
                    flits: 4,
                    issue: 9,
                },
            ],
        )
    }

    fn schedule(cursor: &mut TraceCursor<'_>, cycles: u64) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        for cycle in 0..cycles {
            while let Some(m) = cursor.pop_due(cycle) {
                out.push((cycle, m.src));
            }
        }
        out
    }

    #[test]
    fn native_rate_replays_issue_cycles_verbatim() {
        let t = trace();
        let native = t.offered_flits_per_node_cycle();
        let mut cursor = TraceCursor::new(&t, native);
        assert!((cursor.stretch() - 1.0).abs() < 1e-12);
        assert_eq!(
            schedule(&mut cursor, 10),
            vec![(0, 0), (4, 1), (9, 2)],
            "one wave at the native rate is the trace itself"
        );
    }

    #[test]
    fn wrap_around_replays_waves_past_the_horizon() {
        let t = trace();
        let native = t.offered_flits_per_node_cycle();
        let mut cursor = TraceCursor::new(&t, native);
        // Three full waves in 30 cycles, offset by the 10-cycle horizon.
        assert_eq!(
            schedule(&mut cursor, 30),
            vec![
                (0, 0),
                (4, 1),
                (9, 2),
                (10, 0),
                (14, 1),
                (19, 2),
                (20, 0),
                (24, 1),
                (29, 2)
            ]
        );
    }

    #[test]
    fn half_load_stretches_cycles_twofold() {
        let t = trace();
        let native = t.offered_flits_per_node_cycle();
        let mut cursor = TraceCursor::new(&t, native / 2.0);
        assert_eq!(cursor.scaled_horizon(), 20);
        assert_eq!(
            schedule(&mut cursor, 40),
            vec![(0, 0), (8, 1), (18, 2), (20, 0), (28, 1), (38, 2)]
        );
    }

    #[test]
    fn double_load_compresses_cycles() {
        let t = trace();
        let native = t.offered_flits_per_node_cycle();
        let mut cursor = TraceCursor::new(&t, native * 2.0);
        assert_eq!(cursor.scaled_horizon(), 5);
        assert_eq!(
            schedule(&mut cursor, 10),
            vec![(0, 0), (2, 1), (4, 2), (5, 0), (7, 1), (9, 2)]
        );
    }

    #[test]
    fn zero_load_and_empty_traces_yield_nothing() {
        let t = trace();
        let mut cursor = TraceCursor::new(&t, 0.0);
        assert_eq!(schedule(&mut cursor, 100), vec![]);
        let empty = Trace::new(4, 10, vec![]);
        let mut cursor = TraceCursor::new(&empty, 0.3);
        assert_eq!(schedule(&mut cursor, 100), vec![]);
    }

    #[test]
    fn next_due_peeks_without_advancing_and_wraps() {
        let t = trace();
        let native = t.offered_flits_per_node_cycle();
        let mut cursor = TraceCursor::new(&t, native);
        assert_eq!(cursor.next_due(), Some(0));
        assert_eq!(cursor.next_due(), Some(0), "peeking must not advance");
        // Drain cycle 0; the next burst is at cycle 4.
        while cursor.pop_due(0).is_some() {}
        assert_eq!(cursor.next_due(), Some(4));
        // Drain the whole wave: the peek wraps to the next wave's first
        // message (issue 0 offset by the 10-cycle horizon).
        for cycle in 1..10 {
            while cursor.pop_due(cycle).is_some() {}
        }
        assert_eq!(cursor.next_due(), Some(10));
        // An empty schedule has no next due cycle.
        let empty = Trace::new(4, 10, vec![]);
        assert_eq!(TraceCursor::new(&empty, 0.3).next_due(), None);
    }

    #[test]
    fn same_arguments_give_identical_schedules() {
        let t = trace();
        let a = schedule(&mut TraceCursor::new(&t, 0.17), 500);
        let b = schedule(&mut TraceCursor::new(&t, 0.17), 500);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
