//! Property-based tests for routing, channel-dependency analysis and VC
//! allocation.

use netsmith_route::cdg::ChannelDependencyGraph;
use netsmith_route::paths::{all_shortest_paths, path_length};
use netsmith_route::vc::verify_deadlock_free;
use netsmith_route::{allocate_vcs, mclb_route, ndbt_route, MclbConfig};
use netsmith_topo::expert;
use netsmith_topo::{Layout, LinkClass, LinkSpan, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random connected topology on a 3x4 layout with generous radix.
fn random_topology(seed: u64, extra_links: usize) -> Topology {
    let layout = Layout::interposer_grid(3, 4, 6);
    let mut topo = Topology::empty(
        format!("rand{seed}"),
        layout.clone(),
        LinkClass::Custom(LinkSpan::new(3, 3)),
    );
    for (a, b) in expert::hamiltonian_ring(&layout) {
        topo.add_bidirectional(a, b);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = layout.num_routers();
    for _ in 0..extra_links {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !topo.has_link(a, b) && topo.free_out_ports(a) > 0 && topo.free_in_ports(b) > 0
        {
            topo.add_link(a, b);
        }
    }
    topo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mclb_paths_are_always_shortest_and_real(seed in 0u64..10_000, extra in 0usize..24) {
        let topo = random_topology(seed, extra);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig { seed, restarts: 1, ..Default::default() });
        prop_assert!(table.is_complete());
        prop_assert!(table.validate(&topo).is_ok());
        for (flow, p) in table.flows() {
            prop_assert_eq!(path_length(p) as u32, paths.distance(flow.src, flow.dst).unwrap());
        }
    }

    #[test]
    fn mclb_max_load_never_exceeds_worst_single_path_choice(seed in 0u64..10_000) {
        let topo = random_topology(seed, 12);
        let paths = all_shortest_paths(&topo);
        let mclb = mclb_route(&paths, &MclbConfig { seed, ..Default::default() });
        // Worst case: every flow picks its first enumerated path.
        let mut naive = netsmith_route::RoutingTable::new(topo.num_routers(), "naive");
        for (s, d) in paths.flows() {
            naive.set_path(netsmith_route::Flow::new(s, d), paths.paths(s, d)[0].clone());
        }
        prop_assert!(
            mclb.uniform_channel_loads().max_load <= naive.uniform_channel_loads().max_load + 1e-9
        );
    }

    #[test]
    fn vc_allocation_is_always_deadlock_free_when_it_fits(seed in 0u64..10_000) {
        let topo = random_topology(seed, 16);
        let paths = all_shortest_paths(&topo);
        let table = mclb_route(&paths, &MclbConfig { seed, restarts: 1, ..Default::default() });
        if let Ok(alloc) = allocate_vcs(&table, 8, seed) {
            prop_assert!(verify_deadlock_free(&table, &alloc));
            prop_assert_eq!(alloc.assignment.len(), table.num_routed_flows());
            prop_assert!(alloc.escape_layers <= alloc.num_vcs.max(8));
            // Every per-VC CDG is acyclic by construction; the union need not be.
            for vc in 0..alloc.num_vcs {
                let members: Vec<&[usize]> = table
                    .flows()
                    .filter(|(f, _)| alloc.assignment[f] == vc)
                    .map(|(_, p)| p)
                    .collect();
                prop_assert!(ChannelDependencyGraph::from_paths(members).is_acyclic());
            }
        }
    }

    #[test]
    fn ndbt_tables_stay_on_shortest_paths(seed in 0u64..10_000) {
        let layout = Layout::noi_4x5();
        let topo = expert::folded_torus(&layout);
        let paths = all_shortest_paths(&topo);
        let (table, _) = ndbt_route(&layout, &paths, seed);
        prop_assert!(table.is_complete());
        for (flow, p) in table.flows() {
            prop_assert_eq!(path_length(p) as u32, paths.distance(flow.src, flow.dst).unwrap());
        }
    }

    #[test]
    fn cdg_of_any_single_path_is_acyclic(path_len in 2usize..10) {
        let path: Vec<usize> = (0..path_len).collect();
        let cdg = ChannelDependencyGraph::from_paths([path.as_slice()]);
        prop_assert!(cdg.is_acyclic());
        prop_assert_eq!(cdg.num_channels(), path_len - 1);
    }
}
