//! Per-flow routing tables and channel-load analysis.
//!
//! NetSmith uses table-based routing: every flow (source/destination pair)
//! is assigned exactly one of its shortest paths, and each router forwards
//! a packet by looking up the flow in its table.  The channel-load report
//! computes, for a demand matrix, the load each directed link carries under
//! the selected paths — the quantity MCLB minimizes the maximum of — and
//! the corresponding expected saturation throughput.

use crate::paths::{path_length, path_links};
use netsmith_topo::traffic::DemandMatrix;
use netsmith_topo::{PipelineError, RouterId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A flow is an ordered source/destination pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Flow {
    pub src: RouterId,
    pub dst: RouterId,
}

impl Flow {
    pub fn new(src: RouterId, dst: RouterId) -> Self {
        Flow { src, dst }
    }
}

/// Single-path routing table: one chosen path per flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingTable {
    n: usize,
    /// `routes[s * n + d]` — the chosen router sequence for the flow, or
    /// `None` when the pair is unroutable / identical.
    routes: Vec<Option<Vec<RouterId>>>,
    /// Name of the routing scheme that produced the table ("MCLB", "NDBT", …).
    scheme: String,
}

impl RoutingTable {
    /// Create an empty table for `n` routers.
    pub fn new(n: usize, scheme: impl Into<String>) -> Self {
        RoutingTable {
            n,
            routes: vec![None; n * n],
            scheme: scheme.into(),
        }
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.n
    }

    /// Routing scheme label.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Set the path for a flow.  The path must start at the flow's source
    /// and end at its destination.
    pub fn set_path(&mut self, flow: Flow, path: Vec<RouterId>) {
        assert!(path.len() >= 2, "path must contain at least two routers");
        assert_eq!(path[0], flow.src, "path must start at the flow source");
        assert_eq!(
            *path.last().unwrap(),
            flow.dst,
            "path must end at the flow destination"
        );
        self.routes[flow.src * self.n + flow.dst] = Some(path);
    }

    /// The chosen path for a flow.
    pub fn path(&self, src: RouterId, dst: RouterId) -> Option<&[RouterId]> {
        self.routes[src * self.n + dst].as_deref()
    }

    /// Next hop for a packet of flow `(src, dst)` currently at `here`.
    pub fn next_hop(&self, src: RouterId, dst: RouterId, here: RouterId) -> Option<RouterId> {
        let path = self.path(src, dst)?;
        let pos = path.iter().position(|&r| r == here)?;
        path.get(pos + 1).copied()
    }

    /// Number of routed flows.
    pub fn num_routed_flows(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }

    /// Iterate over `(Flow, path)` pairs.
    pub fn flows(&self) -> impl Iterator<Item = (Flow, &[RouterId])> + '_ {
        let n = self.n;
        self.routes
            .iter()
            .enumerate()
            .filter_map(move |(idx, route)| {
                route.as_ref().map(|p| {
                    (
                        Flow {
                            src: idx / n,
                            dst: idx % n,
                        },
                        p.as_slice(),
                    )
                })
            })
    }

    /// True when every ordered pair of distinct routers has a route.
    pub fn is_complete(&self) -> bool {
        self.num_routed_flows() == self.n * (self.n - 1)
    }

    /// Typed completeness check: fails with
    /// [`PipelineError::IncompleteRouting`] carrying the number of ordered
    /// pairs left without a route.
    pub fn require_complete(&self) -> Result<(), PipelineError> {
        let missing = self.n * (self.n - 1) - self.num_routed_flows();
        if missing == 0 {
            Ok(())
        } else {
            Err(PipelineError::IncompleteRouting {
                missing_pairs: missing,
            })
        }
    }

    /// Completeness check over a surviving subset of routers (the degraded
    /// analogue of [`RoutingTable::require_complete`]): `alive_routers`
    /// routers must be fully connected pairwise.
    pub fn require_complete_among(&self, alive_routers: usize) -> Result<(), PipelineError> {
        let expected = alive_routers * alive_routers.saturating_sub(1);
        let missing = expected.saturating_sub(self.num_routed_flows());
        if missing == 0 {
            Ok(())
        } else {
            Err(PipelineError::IncompleteRouting {
                missing_pairs: missing,
            })
        }
    }

    /// Average routed hop count over all flows.
    pub fn average_hops(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for (_, p) in self.flows() {
            total += path_length(p);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Channel-load report under a demand matrix.
    pub fn channel_loads(&self, demand: &DemandMatrix) -> ChannelLoadReport {
        assert_eq!(demand.num_nodes(), self.n);
        let mut loads: HashMap<(RouterId, RouterId), f64> = HashMap::new();
        for (flow, path) in self.flows() {
            let w = demand.demand(flow.src, flow.dst);
            if w <= 0.0 {
                continue;
            }
            for (a, b) in path_links(path) {
                *loads.entry((a, b)).or_insert(0.0) += w;
            }
        }
        ChannelLoadReport::from_loads(self.n, loads)
    }

    /// Channel-load report under uniform all-to-all demand.
    pub fn uniform_channel_loads(&self) -> ChannelLoadReport {
        self.channel_loads(&DemandMatrix::uniform(self.n))
    }

    /// Validate the table against a topology: every hop must be a real
    /// link, and paths must be loop free.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        for (flow, path) in self.flows() {
            for (a, b) in path_links(path) {
                if !topo.has_link(a, b) {
                    return Err(format!(
                        "flow {}->{} uses non-existent link {a}->{b}",
                        flow.src, flow.dst
                    ));
                }
            }
            let mut seen = path.to_vec();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != path.len() {
                return Err(format!(
                    "flow {}->{} path revisits a router",
                    flow.src, flow.dst
                ));
            }
        }
        Ok(())
    }
}

/// Per-link load summary for a routing table under a demand matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelLoadReport {
    n: usize,
    /// Load per directed link, keyed by `(from, to)`.
    pub loads: Vec<((RouterId, RouterId), f64)>,
    /// Maximum channel load (the MCLB objective, normalized demand units).
    pub max_load: f64,
    /// Mean load over links that carry any traffic.
    pub mean_load: f64,
}

impl ChannelLoadReport {
    fn from_loads(n: usize, map: HashMap<(RouterId, RouterId), f64>) -> Self {
        let mut loads: Vec<_> = map.into_iter().collect();
        loads.sort_by_key(|a| a.0);
        let max_load = loads.iter().map(|(_, l)| *l).fold(0.0, f64::max);
        let mean_load = if loads.is_empty() {
            0.0
        } else {
            loads.iter().map(|(_, l)| *l).sum::<f64>() / loads.len() as f64
        };
        ChannelLoadReport {
            n,
            loads,
            max_load,
            mean_load,
        }
    }

    /// Load on a specific directed link.
    pub fn load(&self, from: RouterId, to: RouterId) -> f64 {
        self.loads
            .iter()
            .find(|((a, b), _)| *a == from && *b == to)
            .map(|(_, l)| *l)
            .unwrap_or(0.0)
    }

    /// Expected saturation injection rate (flits/node/cycle) implied by the
    /// maximum channel load, assuming each router injects at the same rate
    /// and unit link capacity: saturation occurs when the hottest channel
    /// reaches one flit per cycle.
    ///
    /// With a normalized demand matrix (total = 1), a per-node injection
    /// rate `lambda` puts `lambda * n * load` flits/cycle on a channel with
    /// normalized load `load`, so `lambda_sat = 1 / (n * max_load)`.
    pub fn saturation_injection_rate(&self) -> f64 {
        if self.max_load <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / (self.n as f64 * self.max_load)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::all_shortest_paths;
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    fn simple_table() -> (netsmith_topo::Topology, RoutingTable) {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let mut table = RoutingTable::new(20, "first-path");
        for (s, d) in ps.flows() {
            table.set_path(Flow::new(s, d), ps.paths(s, d)[0].clone());
        }
        (mesh, table)
    }

    #[test]
    fn table_is_complete_and_valid() {
        let (mesh, table) = simple_table();
        assert!(table.is_complete());
        table.require_complete().unwrap();
        assert_eq!(table.num_routed_flows(), 380);
        table.validate(&mesh).unwrap();
    }

    #[test]
    fn require_complete_counts_missing_pairs() {
        let table = RoutingTable::new(4, "empty");
        assert_eq!(
            table.require_complete(),
            Err(PipelineError::IncompleteRouting { missing_pairs: 12 })
        );
        assert_eq!(
            table.require_complete_among(3),
            Err(PipelineError::IncompleteRouting { missing_pairs: 6 })
        );
        assert_eq!(table.require_complete_among(0), Ok(()));
    }

    #[test]
    fn next_hop_walks_the_path() {
        let (_, table) = simple_table();
        let path = table.path(0, 19).unwrap().to_vec();
        let mut here = 0;
        let mut hops = 0;
        while here != 19 {
            here = table.next_hop(0, 19, here).unwrap();
            hops += 1;
            assert!(hops <= path.len());
        }
        assert_eq!(hops, path.len() - 1);
    }

    #[test]
    fn average_hops_matches_topology_metric_for_single_path_tables() {
        let (mesh, table) = simple_table();
        let avg_topo = netsmith_topo::metrics::average_hops(&mesh);
        assert!((table.average_hops() - avg_topo).abs() < 1e-9);
    }

    #[test]
    fn channel_loads_sum_to_weighted_hops() {
        let (_, table) = simple_table();
        let demand = DemandMatrix::uniform(20);
        let report = table.channel_loads(&demand);
        let total_load: f64 = report.loads.iter().map(|(_, l)| *l).sum();
        // Sum of channel loads == sum over flows of weight * hops == weighted
        // average hops (because the demand matrix is normalized).
        let expected: f64 = table
            .flows()
            .map(|(f, p)| demand.demand(f.src, f.dst) * path_length(p) as f64)
            .sum();
        assert!((total_load - expected).abs() < 1e-9);
        assert!(report.max_load >= report.mean_load);
    }

    #[test]
    fn saturation_rate_decreases_with_hotter_channels() {
        let (_, table) = simple_table();
        let report = table.uniform_channel_loads();
        let sat = report.saturation_injection_rate();
        assert!(sat > 0.0 && sat < 1.5);
    }

    #[test]
    #[should_panic]
    fn set_path_rejects_wrong_endpoints() {
        let mut table = RoutingTable::new(4, "bad");
        table.set_path(Flow::new(0, 3), vec![0, 1, 2]);
    }

    #[test]
    fn validate_rejects_fake_links() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let mut table = RoutingTable::new(20, "fake");
        // 0 -> 19 directly is not a mesh link.
        table.set_path(Flow::new(0, 19), vec![0, 19]);
        assert!(table.validate(&mesh).is_err());
    }
}
