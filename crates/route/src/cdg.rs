//! Channel dependency graph (CDG) construction and cycle detection.
//!
//! Dally & Seitz: wormhole routing is deadlock-free if the channel
//! dependency graph of the routing function is acyclic.  The CDG has one
//! node per directed channel (link); a routing function that can hold
//! channel `(a, b)` while requesting channel `(b, c)` induces the
//! dependency `(a, b) -> (b, c)`.  For table-based single-path routing the
//! dependencies are exactly the consecutive link pairs of the selected
//! paths.

use crate::paths::path_links;
use crate::table::RoutingTable;
use netsmith_topo::RouterId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A directed channel (link) of the topology.
pub type Channel = (RouterId, RouterId);

/// Channel dependency graph for a set of routed paths.
///
/// Ordered containers are used deliberately so that cycle detection (and
/// therefore VC allocation, which breaks cycles it finds) is deterministic
/// for a given seed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelDependencyGraph {
    /// Adjacency: dependency edges between channels.
    edges: BTreeMap<Channel, BTreeSet<Channel>>,
    /// All channels that appear in any path.
    channels: BTreeSet<Channel>,
}

impl ChannelDependencyGraph {
    /// Empty CDG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the CDG induced by a set of paths.
    pub fn from_paths<'a>(paths: impl IntoIterator<Item = &'a [RouterId]>) -> Self {
        let mut cdg = Self::new();
        for p in paths {
            cdg.add_path(p);
        }
        cdg
    }

    /// Build the CDG of a complete routing table.
    pub fn from_table(table: &RoutingTable) -> Self {
        Self::from_paths(table.flows().map(|(_, p)| p))
    }

    /// Add the dependencies induced by one path.
    pub fn add_path(&mut self, path: &[RouterId]) {
        let links: Vec<Channel> = path_links(path).collect();
        for l in &links {
            self.channels.insert(*l);
        }
        for w in links.windows(2) {
            self.edges.entry(w[0]).or_default().insert(w[1]);
        }
    }

    /// Number of channels present.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of dependency edges.
    pub fn num_dependencies(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    /// Does the dependency `from -> to` exist?
    pub fn has_dependency(&self, from: Channel, to: Channel) -> bool {
        self.edges.get(&from).is_some_and(|s| s.contains(&to))
    }

    /// Is the CDG acyclic (the Dally & Seitz sufficient condition)?
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Find one cycle, returned as a sequence of channels where each
    /// consecutive pair (and the last-to-first pair) is a dependency edge.
    /// Returns `None` when the CDG is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<Channel>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: BTreeMap<Channel, Mark> =
            self.channels.iter().map(|&c| (c, Mark::White)).collect();

        // Iterative DFS with an explicit stack that tracks the path.
        for &start in &self.channels {
            if marks[&start] != Mark::White {
                continue;
            }
            let mut stack: Vec<(Channel, Vec<Channel>)> = vec![(start, Vec::new())];
            let mut path: Vec<Channel> = Vec::new();
            while let Some((node, _)) = stack.last().cloned() {
                if marks[&node] == Mark::White {
                    marks.insert(node, Mark::Grey);
                    path.push(node);
                    let succs: Vec<Channel> = self
                        .edges
                        .get(&node)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    stack.last_mut().unwrap().1 = succs;
                }
                // Expand next unvisited successor.
                let next = {
                    let (_, succs) = stack.last_mut().unwrap();
                    succs.pop()
                };
                match next {
                    Some(succ) => match marks[&succ] {
                        Mark::Grey => {
                            // Found a cycle: slice the path from succ onwards.
                            let pos = path.iter().position(|&c| c == succ).unwrap();
                            return Some(path[pos..].to_vec());
                        }
                        Mark::White => stack.push((succ, Vec::new())),
                        Mark::Black => {}
                    },
                    None => {
                        // Finished this node.
                        marks.insert(node, Mark::Black);
                        path.pop();
                        stack.pop();
                    }
                }
            }
        }
        None
    }

    /// The dependency edges along a cycle as `(from, to)` channel pairs,
    /// including the closing edge.
    pub fn cycle_edges(cycle: &[Channel]) -> Vec<(Channel, Channel)> {
        let mut edges = Vec::with_capacity(cycle.len());
        for i in 0..cycle.len() {
            edges.push((cycle[i], cycle[(i + 1) % cycle.len()]));
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_is_acyclic() {
        let cdg = ChannelDependencyGraph::from_paths([vec![0usize, 1, 2, 3].as_slice()]);
        assert_eq!(cdg.num_channels(), 3);
        assert_eq!(cdg.num_dependencies(), 2);
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn ring_routes_create_a_cycle() {
        // Three paths that each wrap part of a 3-node ring create the cyclic
        // dependency (0,1)->(1,2)->(2,0)->(0,1).
        let paths = [vec![0usize, 1, 2], vec![1usize, 2, 0], vec![2usize, 0, 1]];
        let cdg = ChannelDependencyGraph::from_paths(paths.iter().map(|p| p.as_slice()));
        assert!(!cdg.is_acyclic());
        let cycle = cdg.find_cycle().unwrap();
        assert!(cycle.len() >= 2);
        // Every consecutive pair in the reported cycle is a real dependency.
        for (from, to) in ChannelDependencyGraph::cycle_edges(&cycle) {
            assert!(cdg.has_dependency(from, to), "{from:?} -> {to:?}");
        }
    }

    #[test]
    fn dependencies_require_consecutive_links() {
        let cdg = ChannelDependencyGraph::from_paths([
            vec![0usize, 1, 2].as_slice(),
            vec![3usize, 4].as_slice(),
        ]);
        assert!(cdg.has_dependency((0, 1), (1, 2)));
        assert!(!cdg.has_dependency((0, 1), (3, 4)));
    }

    #[test]
    fn xy_routing_on_a_ring_is_acyclic_when_no_wraparound() {
        // Paths that always travel "clockwise but never complete the loop".
        let paths = [vec![0usize, 1, 2], vec![1usize, 2, 3], vec![2usize, 3]];
        let cdg = ChannelDependencyGraph::from_paths(paths.iter().map(|p| p.as_slice()));
        assert!(cdg.is_acyclic());
    }

    #[test]
    fn empty_cdg_is_acyclic() {
        let cdg = ChannelDependencyGraph::new();
        assert!(cdg.is_acyclic());
        assert_eq!(cdg.num_channels(), 0);
    }
}
