//! # netsmith-route
//!
//! Routing for machine-discovered (irregular) NoI topologies:
//!
//! * [`paths`] — Floyd–Warshall/BFS shortest distances and exhaustive
//!   enumeration of all shortest paths per flow (the path set `P[s][d]`
//!   that the MCLB formulation of the paper's Table III takes as input).
//! * [`ndbt`] — the "no double-back turns" heuristic routing used by the
//!   expert-designed topologies (Kite, Butter Donut, Double Butterfly,
//!   Folded Torus).
//! * [`mclb`] — NetSmith's Maximum Channel Load Bottleneck routing: select
//!   one shortest path per flow such that the maximum channel load is
//!   minimized.  An exact MILP lowering onto `netsmith-lp` is provided for
//!   small instances and validation; the production engine is an
//!   equivalent greedy + local-search optimizer.
//! * [`cdg`] — channel dependency graph construction and cycle detection
//!   (Dally & Seitz acyclicity criterion).
//! * [`vc`] — DFSSSP-style partitioning of the selected paths into acyclic
//!   routing subfunctions mapped onto escape virtual channels, plus
//!   path-length-weighted VC load balancing.
//! * [`table`] — the per-flow routing tables consumed by the simulator.

pub mod cdg;
pub mod mclb;
pub mod ndbt;
pub mod paths;
pub mod table;
pub mod vc;

pub use cdg::ChannelDependencyGraph;
pub use mclb::{mclb_route, mclb_route_milp, MclbConfig};
pub use ndbt::ndbt_route;
pub use netsmith_topo::PipelineError;
pub use paths::{all_shortest_paths, PathSet};
pub use table::{ChannelLoadReport, Flow, RoutingTable};
pub use vc::{allocate_vcs, VcAllocation};
