//! MCLB — Maximum Channel Load Bottleneck routing.
//!
//! NetSmith's routing contribution (Table III of the paper): given the set
//! of all shortest paths per flow, choose exactly one path per flow such
//! that the maximum channel load is minimized.  Two engines are provided:
//!
//! * [`mclb_route_milp`] — the exact MILP from Table III lowered onto
//!   `netsmith-lp`.  Because the path set is enumerated up front (the key
//!   simplification the paper highlights versus earlier formulations), the
//!   model only needs one binary per candidate path, a load expression per
//!   channel, and a min-max objective.  Intended for small instances and
//!   for validating the heuristic engine.
//! * [`mclb_route`] — the production engine: greedy construction (flows
//!   with the fewest alternatives are committed first) followed by
//!   iterative re-routing of flows that cross the hottest channels.  On the
//!   paper's 20-router topologies this converges in milliseconds and, on
//!   instances small enough to verify, matches the MILP optimum.

use crate::paths::{path_links, PathSet};
use crate::table::{Flow, RoutingTable};
use netsmith_lp::{BranchBoundConfig, Cmp, LinExpr, MilpSolver, Model, Sense, VarType};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Configuration for the heuristic MCLB engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MclbConfig {
    /// RNG seed for tie-breaking and flow ordering.
    pub seed: u64,
    /// Maximum number of improvement sweeps.
    pub max_sweeps: usize,
    /// Number of independent restarts; the best result is kept.
    pub restarts: usize,
}

impl Default for MclbConfig {
    fn default() -> Self {
        MclbConfig {
            seed: 0xC1A551C,
            max_sweeps: 64,
            restarts: 4,
        }
    }
}

/// Objective tuple compared lexicographically: (max load, number of
/// channels at max load, sum of squared loads).
fn objective(loads: &HashMap<(usize, usize), f64>) -> (f64, usize, f64) {
    let mut max = 0.0f64;
    for &l in loads.values() {
        if l > max {
            max = l;
        }
    }
    let at_max = loads.values().filter(|&&l| (l - max).abs() < 1e-9).count();
    let sumsq = loads.values().map(|&l| l * l).sum();
    (max, at_max, sumsq)
}

fn better(a: (f64, usize, f64), b: (f64, usize, f64)) -> bool {
    if a.0 < b.0 - 1e-12 {
        return true;
    }
    if a.0 > b.0 + 1e-12 {
        return false;
    }
    if a.1 < b.1 {
        return true;
    }
    if a.1 > b.1 {
        return false;
    }
    a.2 < b.2 - 1e-12
}

/// Heuristic MCLB routing over all flows with unit demand.
pub fn mclb_route(paths: &PathSet, config: &MclbConfig) -> RoutingTable {
    let flows: Vec<(usize, usize)> = paths.flows().collect();
    let mut best: Option<(RoutingTable, (f64, usize, f64))> = None;
    for restart in 0..config.restarts.max(1) {
        let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(restart as u64));
        let table = single_run(paths, &flows, &mut rng, config.max_sweeps);
        let loads = link_loads(&table);
        let obj = objective(&loads);
        if best.as_ref().is_none_or(|(_, cur)| better(obj, *cur)) {
            best = Some((table, obj));
        }
    }
    best.expect("at least one restart").0
}

fn link_loads(table: &RoutingTable) -> HashMap<(usize, usize), f64> {
    let mut loads = HashMap::new();
    for (_, path) in table.flows() {
        for (a, b) in path_links(path) {
            *loads.entry((a, b)).or_insert(0.0) += 1.0;
        }
    }
    loads
}

fn single_run(
    paths: &PathSet,
    flows: &[(usize, usize)],
    rng: &mut SmallRng,
    max_sweeps: usize,
) -> RoutingTable {
    let n = paths.num_routers();
    let mut table = RoutingTable::new(n, "MCLB");
    // Selected path index per flow.
    let mut selected: HashMap<(usize, usize), usize> = HashMap::new();
    let mut loads: HashMap<(usize, usize), f64> = HashMap::new();

    // Greedy construction: commit constrained flows (fewest alternatives)
    // first; break ties randomly.
    let mut order: Vec<(usize, usize)> = flows.to_vec();
    order.shuffle(rng);
    order.sort_by_key(|&(s, d)| paths.paths(s, d).len());
    for &(s, d) in &order {
        let candidates = paths.paths(s, d);
        let mut best_idx = 0usize;
        let mut best_obj = (f64::INFINITY, usize::MAX, f64::INFINITY);
        for (idx, p) in candidates.iter().enumerate() {
            // Apply tentatively.
            for (a, b) in path_links(p) {
                *loads.entry((a, b)).or_insert(0.0) += 1.0;
            }
            let obj = objective(&loads);
            for (a, b) in path_links(p) {
                *loads.get_mut(&(a, b)).unwrap() -= 1.0;
            }
            if better(obj, best_obj) {
                best_obj = obj;
                best_idx = idx;
            }
        }
        selected.insert((s, d), best_idx);
        for (a, b) in path_links(&candidates[best_idx]) {
            *loads.entry((a, b)).or_insert(0.0) += 1.0;
        }
    }

    // Local improvement: re-route flows that cross the hottest channels.
    for _ in 0..max_sweeps {
        let current_obj = objective(&loads);
        let max_load = current_obj.0;
        // Flows crossing any channel at max load.
        let hot_flows: Vec<(usize, usize)> = order
            .iter()
            .copied()
            .filter(|&(s, d)| {
                let idx = selected[&(s, d)];
                path_links(&paths.paths(s, d)[idx])
                    .any(|link| loads.get(&link).copied().unwrap_or(0.0) >= max_load - 1e-9)
            })
            .collect();
        let mut improved = false;
        for (s, d) in hot_flows {
            let candidates = paths.paths(s, d);
            if candidates.len() < 2 {
                continue;
            }
            let cur_idx = selected[&(s, d)];
            // Remove current contribution.
            for (a, b) in path_links(&candidates[cur_idx]) {
                *loads.get_mut(&(a, b)).unwrap() -= 1.0;
            }
            let mut best_idx = cur_idx;
            let mut best_obj = {
                for (a, b) in path_links(&candidates[cur_idx]) {
                    *loads.entry((a, b)).or_insert(0.0) += 1.0;
                }
                let o = objective(&loads);
                for (a, b) in path_links(&candidates[cur_idx]) {
                    *loads.get_mut(&(a, b)).unwrap() -= 1.0;
                }
                o
            };
            for (idx, p) in candidates.iter().enumerate() {
                if idx == cur_idx {
                    continue;
                }
                for (a, b) in path_links(p) {
                    *loads.entry((a, b)).or_insert(0.0) += 1.0;
                }
                let obj = objective(&loads);
                for (a, b) in path_links(p) {
                    *loads.get_mut(&(a, b)).unwrap() -= 1.0;
                }
                if better(obj, best_obj) {
                    best_obj = obj;
                    best_idx = idx;
                }
            }
            // Commit the best path back.
            for (a, b) in path_links(&candidates[best_idx]) {
                *loads.entry((a, b)).or_insert(0.0) += 1.0;
            }
            if best_idx != cur_idx {
                selected.insert((s, d), best_idx);
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    for (&(s, d), &idx) in &selected {
        table.set_path(Flow::new(s, d), paths.paths(s, d)[idx].clone());
    }
    table
}

/// Exact MCLB via the MILP of Table III.  Only practical for small
/// networks; returns `None` when the solver hits its budget without an
/// incumbent.
pub fn mclb_route_milp(paths: &PathSet, time_limit: Duration) -> Option<RoutingTable> {
    let n = paths.num_routers();
    let mut model = Model::new(Sense::Minimize);
    // The min-max objective variable C_total (O1).
    let cmax = model.add_var(VarType::Continuous, 0.0, f64::INFINITY, 1.0, "cmax");

    // One binary per candidate path (path_used, C3/C4 of Table III).
    let mut path_vars: HashMap<(usize, usize), Vec<netsmith_lp::VarId>> = HashMap::new();
    // Channel load expressions (C1).
    let mut channel_exprs: HashMap<(usize, usize), LinExpr> = HashMap::new();
    for (s, d) in paths.flows() {
        let mut vars = Vec::new();
        for (idx, p) in paths.paths(s, d).iter().enumerate() {
            let v = model.add_binary(0.0, format!("p_{s}_{d}_{idx}"));
            vars.push(v);
            for (a, b) in path_links(p) {
                channel_exprs.entry((a, b)).or_default().add_term(v, 1.0);
            }
        }
        // Exactly one path per flow (C4).
        model.add_constr(LinExpr::sum(vars.iter().copied()), Cmp::Eq, 1.0);
        path_vars.insert((s, d), vars);
    }
    // cmax >= channel load for every channel (O1 lowering).
    for (_, expr) in channel_exprs.iter() {
        let mut e = expr.clone();
        e.add_term(cmax, -1.0);
        model.add_constr(e, Cmp::Le, 0.0);
    }

    let solver = MilpSolver::new(BranchBoundConfig {
        time_limit,
        ..Default::default()
    });
    let sol = solver.solve(&model).ok()?;
    if !sol.status.has_solution() {
        return None;
    }
    let mut table = RoutingTable::new(n, "MCLB-MILP");
    for ((s, d), vars) in &path_vars {
        let chosen = vars
            .iter()
            .position(|v| sol.values[v.index()] > 0.5)
            .unwrap_or(0);
        table.set_path(Flow::new(*s, *d), paths.paths(*s, *d)[chosen].clone());
    }
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::all_shortest_paths;
    use netsmith_topo::expert;
    use netsmith_topo::{Layout, LinkClass, Topology};

    #[test]
    fn mclb_routes_every_flow_on_mesh() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        let table = mclb_route(&ps, &MclbConfig::default());
        assert!(table.is_complete());
        table.validate(&mesh).unwrap();
        // Paths remain shortest.
        for (f, p) in table.flows() {
            assert_eq!(
                (p.len() - 1) as u32,
                ps.distance(f.src, f.dst).unwrap(),
                "flow {:?} not shortest",
                f
            );
        }
    }

    #[test]
    fn mclb_beats_or_matches_arbitrary_first_path_selection() {
        let torus = expert::folded_torus(&Layout::noi_4x5());
        let ps = all_shortest_paths(&torus);
        // Naive: always the first enumerated path.
        let mut naive = RoutingTable::new(20, "first");
        for (s, d) in ps.flows() {
            naive.set_path(Flow::new(s, d), ps.paths(s, d)[0].clone());
        }
        let mclb = mclb_route(&ps, &MclbConfig::default());
        let naive_max = naive.uniform_channel_loads().max_load;
        let mclb_max = mclb.uniform_channel_loads().max_load;
        assert!(
            mclb_max <= naive_max + 1e-12,
            "mclb {mclb_max} vs naive {naive_max}"
        );
    }

    #[test]
    fn milp_and_heuristic_agree_on_a_small_instance() {
        // 2x3 ring-ish topology small enough for the exact MILP.
        let layout = Layout::interposer_grid(2, 3, 4);
        let mut t = Topology::empty("small", layout, LinkClass::Large);
        for (a, b) in [(0, 1), (1, 2), (2, 5), (5, 4), (4, 3), (3, 0), (1, 4)] {
            t.add_bidirectional(a, b);
        }
        let ps = all_shortest_paths(&t);
        let heuristic = mclb_route(&ps, &MclbConfig::default());
        let exact = mclb_route_milp(&ps, Duration::from_secs(30)).expect("milp solved");
        let h = heuristic.uniform_channel_loads().max_load;
        let e = exact.uniform_channel_loads().max_load;
        assert!((h - e).abs() < 1e-9, "heuristic {h} differs from exact {e}");
        exact.validate(&t).unwrap();
    }

    #[test]
    fn mclb_is_deterministic_for_a_seed() {
        let kite = expert::kite_medium(&Layout::noi_4x5());
        let ps = all_shortest_paths(&kite);
        let cfg = MclbConfig {
            seed: 9,
            ..Default::default()
        };
        let a = mclb_route(&ps, &cfg);
        let b = mclb_route(&ps, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn saturation_estimate_improves_with_mclb_on_irregular_topologies() {
        // Build an asymmetric-ish topology by removing a couple of reverse
        // links from a kite; MCLB must still route and spread load.
        let layout = Layout::noi_4x5();
        let mut t = expert::kite_large(&layout);
        let links: Vec<(usize, usize)> = t.links().collect();
        t.remove_link(links[0].0, links[0].1);
        if !netsmith_topo::metrics::is_strongly_connected(&t) {
            t.add_link(links[0].0, links[0].1);
        }
        let ps = all_shortest_paths(&t);
        let table = mclb_route(&ps, &MclbConfig::default());
        assert!(table.is_complete());
        assert!(table.uniform_channel_loads().saturation_injection_rate() > 0.0);
    }
}
