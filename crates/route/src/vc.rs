//! Deadlock-free virtual-channel allocation for irregular topologies.
//!
//! Machine-generated topologies cannot rely on simple turn rules, so the
//! paper applies the DFSSSP approach (Domke et al.): partition the set of
//! selected shortest paths into subsets whose channel dependency graphs are
//! each acyclic, and map every subset onto its own (escape) virtual
//! channel.  A packet uses the VC its flow was assigned to for its entire
//! journey, so each VC's routing subfunction is acyclic and the network is
//! deadlock-free by the Dally & Seitz condition.
//!
//! The partitioning is iterative: all flows start in layer 0; while the
//! layer's CDG contains a cycle, one dependency edge of the cycle is chosen
//! (randomly, as the paper found sufficient) and every flow inducing that
//! dependency is pushed to the next layer.  A final balancing pass spreads
//! flows across the available VCs — keeping each VC acyclic — using
//! path-length-weighted occupancy as the balance metric, mirroring the
//! paper's Section IV-A.

use crate::cdg::ChannelDependencyGraph;
use crate::table::{Flow, RoutingTable};
use netsmith_topo::PipelineError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Result of VC allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcAllocation {
    /// Virtual channel assigned to each flow.
    pub assignment: HashMap<Flow, usize>,
    /// Number of virtual channels actually used after load balancing
    /// (max index + 1).
    pub num_vcs: usize,
    /// Number of escape layers the DFSSSP-style partition required for
    /// deadlock freedom *before* load balancing — the "VCs required" figure
    /// the paper reports (4 for all its 20-router configurations).
    pub escape_layers: usize,
    /// Path-length-weighted occupancy per VC.
    pub occupancy: Vec<f64>,
}

impl VcAllocation {
    /// The VC assigned to a flow (panics when the flow was not routed).
    pub fn vc(&self, flow: Flow) -> usize {
        self.assignment[&flow]
    }

    /// Largest/smallest weighted occupancy ratio — 1.0 means perfectly
    /// balanced.
    pub fn imbalance(&self) -> f64 {
        let max = self.occupancy.iter().copied().fold(0.0f64, f64::max);
        let min = self.occupancy.iter().copied().fold(f64::INFINITY, f64::min);
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

/// Partition the flows of a routing table into acyclic layers and balance
/// them over `total_vcs` virtual channels.  Fails with
/// [`PipelineError::VcBudgetExceeded`] — carrying the exact number of escape
/// layers the partition required — when they exceed `total_vcs`.
pub fn allocate_vcs(
    table: &RoutingTable,
    total_vcs: usize,
    seed: u64,
) -> Result<VcAllocation, PipelineError> {
    assert!(total_vcs >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Layered escape partition (DFSSSP/LASH style), built greedily: flows
    // are considered one at a time (longest paths first — they constrain
    // the CDG the most — with seeded random tie-breaking) and each flow is
    // placed in the lowest layer whose channel dependency graph stays
    // acyclic after adding the flow's path.  Ordered maps keep the
    // procedure deterministic for a given seed.
    let paths: BTreeMap<Flow, Vec<usize>> = table.flows().map(|(f, p)| (f, p.to_vec())).collect();
    let mut order: Vec<Flow> = paths.keys().copied().collect();
    {
        // Seeded shuffle, then stable sort by descending path length.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        order.sort_by_key(|f| std::cmp::Reverse(paths[f].len()));
    }
    let mut layer_of: BTreeMap<Flow, usize> = BTreeMap::new();
    let mut layer_cdgs: Vec<ChannelDependencyGraph> = vec![ChannelDependencyGraph::new()];
    for flow in &order {
        let path = paths[flow].as_slice();
        let mut placed = false;
        for (layer, cdg) in layer_cdgs.iter_mut().enumerate() {
            let mut tentative = cdg.clone();
            tentative.add_path(path);
            if tentative.is_acyclic() {
                *cdg = tentative;
                layer_of.insert(*flow, layer);
                placed = true;
                break;
            }
        }
        if !placed {
            let mut cdg = ChannelDependencyGraph::new();
            cdg.add_path(path);
            layer_cdgs.push(cdg);
            layer_of.insert(*flow, layer_cdgs.len() - 1);
        }
    }
    let num_layers = layer_cdgs.len();

    if num_layers > total_vcs {
        return Err(PipelineError::VcBudgetExceeded {
            needed: num_layers,
            budget: total_vcs,
        });
    }

    // Balance: flows may move from their escape layer to any *higher* VC
    // index as long as that VC's CDG stays acyclic.  Greedily move flows
    // from the most occupied VC to the least occupied higher-indexed VC.
    let mut assignment: BTreeMap<Flow, usize> = layer_of.clone();
    let weight = |f: &Flow| (paths[f].len() - 1) as f64;
    let mut occupancy = vec![0.0f64; total_vcs];
    for (f, &vc) in &assignment {
        occupancy[vc] += weight(f);
    }
    // Spread into unused upper VCs.
    let mut improved = true;
    let mut guard = 0usize;
    while improved && guard < 10_000 {
        improved = false;
        guard += 1;
        // Most loaded VC and its flows.
        let (hot_vc, _) = occupancy
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let (cold_vc, _) = occupancy
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        if occupancy[hot_vc] - occupancy[cold_vc] < 1e-9 {
            break;
        }
        // Try to move one flow from hot to cold, keeping the cold VC acyclic
        // and never moving a flow below its escape layer.
        let mut candidates: Vec<Flow> = assignment
            .iter()
            .filter(|(f, &vc)| vc == hot_vc && layer_of[f] <= cold_vc)
            .map(|(f, _)| *f)
            .collect();
        candidates.sort();
        for f in candidates {
            let w = weight(&f);
            // Moving must actually reduce the imbalance.
            if occupancy[hot_vc] - w < occupancy[cold_vc] + w - 1e-9 {
                continue;
            }
            // Check acyclicity of the destination VC with the flow added.
            let members: Vec<Flow> = assignment
                .iter()
                .filter(|(_, &vc)| vc == cold_vc)
                .map(|(f2, _)| *f2)
                .chain(std::iter::once(f))
                .collect();
            let cdg =
                ChannelDependencyGraph::from_paths(members.iter().map(|m| paths[m].as_slice()));
            if cdg.is_acyclic() {
                assignment.insert(f, cold_vc);
                occupancy[hot_vc] -= w;
                occupancy[cold_vc] += w;
                improved = true;
                break;
            }
        }
    }

    let num_vcs = assignment.values().copied().max().unwrap_or(0) + 1;
    Ok(VcAllocation {
        assignment: assignment.into_iter().collect::<HashMap<_, _>>(),
        num_vcs,
        escape_layers: num_layers,
        occupancy,
    })
}

/// Verify that an allocation is deadlock-free: for every VC, the CDG of the
/// flows assigned to it must be acyclic.
pub fn verify_deadlock_free(table: &RoutingTable, alloc: &VcAllocation) -> bool {
    for vc in 0..alloc.num_vcs {
        let members: Vec<&[usize]> = table
            .flows()
            .filter(|(f, _)| alloc.assignment.get(f) == Some(&vc))
            .map(|(_, p)| p)
            .collect();
        let cdg = ChannelDependencyGraph::from_paths(members);
        if !cdg.is_acyclic() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mclb::{mclb_route, MclbConfig};
    use crate::ndbt::ndbt_route;
    use crate::paths::all_shortest_paths;
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    #[test]
    fn xy_routing_on_a_mesh_needs_exactly_one_vc() {
        // Dimension-ordered (XY) routing on a mesh famously has an acyclic
        // CDG, so the allocator must report a single escape VC.
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let ps = all_shortest_paths(&mesh);
        let mut table = crate::table::RoutingTable::new(20, "XY");
        for (s, d) in ps.flows() {
            // The XY path is the shortest path whose column moves all happen
            // before its row moves.
            let xy = ps
                .paths(s, d)
                .iter()
                .find(|p| {
                    let mut seen_row_move = false;
                    for w in p.windows(2) {
                        let (r0, c0) = layout.position(w[0]);
                        let (r1, c1) = layout.position(w[1]);
                        if r0 != r1 {
                            seen_row_move = true;
                        } else if c0 != c1 && seen_row_move {
                            return false;
                        }
                    }
                    true
                })
                .expect("mesh always has an XY shortest path")
                .clone();
            table.set_path(crate::table::Flow::new(s, d), xy);
        }
        let alloc = allocate_vcs(&table, 6, 11).expect("fits trivially");
        assert!(verify_deadlock_free(&table, &alloc));
        assert_eq!(alloc.escape_layers, 1, "XY routing must be acyclic");
    }

    #[test]
    fn ndbt_routed_mesh_fits_in_six_vcs() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let ps = all_shortest_paths(&mesh);
        let (table, _) = ndbt_route(&layout, &ps, 3);
        let alloc = allocate_vcs(&table, 6, 11).expect("allocation fits in 6 VCs");
        assert!(verify_deadlock_free(&table, &alloc));
        assert!(alloc.num_vcs <= 6);
        assert_eq!(alloc.assignment.len(), 380);
    }

    #[test]
    fn expert_topologies_fit_in_six_vcs_with_mclb() {
        let layout = Layout::noi_4x5();
        for topo in [
            expert::folded_torus(&layout),
            expert::kite_large(&layout),
            expert::butter_donut(&layout),
        ] {
            let ps = all_shortest_paths(&topo);
            let table = mclb_route(&ps, &MclbConfig::default());
            let alloc =
                allocate_vcs(&table, 6, 5).unwrap_or_else(|e| panic!("{}: {e}", topo.name()));
            assert!(
                verify_deadlock_free(&table, &alloc),
                "{} allocation has a cyclic VC",
                topo.name()
            );
            assert!(alloc.num_vcs <= 6);
        }
    }

    #[test]
    fn single_vc_budget_reports_the_exact_escape_layer_need() {
        // The folded torus's shortest-path CDG is cyclic, so one VC cannot
        // be made deadlock free; the error must carry the exact number of
        // escape layers the partition required (which a roomy allocation of
        // the same seed reports as `escape_layers`).
        let layout = Layout::noi_4x5();
        let torus = expert::folded_torus(&layout);
        let ps = all_shortest_paths(&torus);
        let table = mclb_route(&ps, &MclbConfig::default());
        let roomy = allocate_vcs(&table, 6, 5).expect("fits in 6 VCs");
        assert!(roomy.escape_layers > 1, "torus CDG must be cyclic");
        match allocate_vcs(&table, 1, 5) {
            Err(PipelineError::VcBudgetExceeded { needed, budget }) => {
                assert_eq!(needed, roomy.escape_layers);
                assert_eq!(budget, 1);
            }
            other => panic!("expected VcBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn occupancy_accounts_every_flow_weight() {
        let layout = Layout::noi_4x5();
        let kite = expert::kite_medium(&layout);
        let ps = all_shortest_paths(&kite);
        let table = mclb_route(&ps, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 1).unwrap();
        let total_weight: f64 = table.flows().map(|(_, p)| (p.len() - 1) as f64).sum();
        let occ_sum: f64 = alloc.occupancy.iter().sum();
        assert!((total_weight - occ_sum).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let layout = Layout::noi_4x5();
        let bd = expert::butter_donut(&layout);
        let ps = all_shortest_paths(&bd);
        let table = mclb_route(&ps, &MclbConfig::default());
        let a = allocate_vcs(&table, 6, 77).unwrap();
        let b = allocate_vcs(&table, 6, 77).unwrap();
        assert_eq!(a, b);
    }
}
