//! "No double-back turns" (NDBT) heuristic routing.
//!
//! The expert-designed interposer topologies (Kite, Butter Donut, Double
//! Butterfly, Folded Torus) all use shortest-path routing constrained by a
//! turn rule: a route may never *double back* along the horizontal axis,
//! i.e. once a packet has moved towards larger column indices it may not
//! later move towards smaller ones (and vice versa).  Among the remaining
//! valid shortest paths, one is selected uniformly at random (the paper
//! assumes random selection).  The rule restricts the channel dependency
//! graph enough that a small number of escape VCs suffices for deadlock
//! freedom on those semi-regular networks.

use crate::paths::PathSet;
use crate::table::{Flow, RoutingTable};
use netsmith_topo::{Layout, RouterId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Does a path double back along the horizontal (column) axis?
pub fn doubles_back_horizontally(layout: &Layout, path: &[RouterId]) -> bool {
    let mut direction: i32 = 0; // -1 = moving left, +1 = moving right
    for w in path.windows(2) {
        let (_, c0) = layout.position(w[0]);
        let (_, c1) = layout.position(w[1]);
        let step = (c1 as i64 - c0 as i64).signum() as i32;
        if step == 0 {
            continue;
        }
        if direction == 0 {
            direction = step;
        } else if step != direction {
            return true;
        }
    }
    false
}

/// Build an NDBT routing table: for every flow, pick a random shortest path
/// that respects the no-double-back rule.  When no shortest path satisfies
/// the rule (possible on very irregular machine-generated topologies), the
/// flow falls back to an unconstrained shortest path; the number of such
/// fallbacks is returned alongside the table.
pub fn ndbt_route(layout: &Layout, paths: &PathSet, seed: u64) -> (RoutingTable, usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut table = RoutingTable::new(paths.num_routers(), "NDBT");
    let mut fallbacks = 0usize;
    for (s, d) in paths.flows() {
        let candidates = paths.paths(s, d);
        let valid: Vec<&Vec<RouterId>> = candidates
            .iter()
            .filter(|p| !doubles_back_horizontally(layout, p))
            .collect();
        let chosen = if valid.is_empty() {
            fallbacks += 1;
            &candidates[rng.gen_range(0..candidates.len())]
        } else {
            valid[rng.gen_range(0..valid.len())]
        };
        table.set_path(Flow::new(s, d), chosen.clone());
    }
    (table, fallbacks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::all_shortest_paths;
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    #[test]
    fn straight_paths_never_double_back() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let ps = all_shortest_paths(&mesh);
        for p in ps.paths(layout.router_at(0, 0), layout.router_at(0, 4)) {
            assert!(!doubles_back_horizontally(&layout, p));
        }
    }

    #[test]
    fn explicit_double_back_is_detected() {
        let layout = Layout::noi_4x5();
        // right, right, left  (columns 0 -> 1 -> 2 -> 1)
        let path = vec![
            layout.router_at(0, 0),
            layout.router_at(0, 1),
            layout.router_at(0, 2),
            layout.router_at(0, 1),
        ];
        assert!(doubles_back_horizontally(&layout, &path));
        // purely vertical moves never double back horizontally
        let vertical = vec![
            layout.router_at(0, 0),
            layout.router_at(1, 0),
            layout.router_at(2, 0),
        ];
        assert!(!doubles_back_horizontally(&layout, &vertical));
    }

    #[test]
    fn mesh_ndbt_requires_no_fallbacks_and_is_complete() {
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let ps = all_shortest_paths(&mesh);
        let (table, fallbacks) = ndbt_route(&layout, &ps, 1);
        assert_eq!(fallbacks, 0, "mesh shortest paths are monotone in x");
        assert!(table.is_complete());
        table.validate(&mesh).unwrap();
    }

    #[test]
    fn expert_topologies_route_with_few_fallbacks() {
        let layout = Layout::noi_4x5();
        for topo in [
            expert::folded_torus(&layout),
            expert::butter_donut(&layout),
            expert::double_butterfly(&layout),
            expert::kite_large(&layout),
        ] {
            let ps = all_shortest_paths(&topo);
            let (table, fallbacks) = ndbt_route(&layout, &ps, 7);
            assert!(table.is_complete(), "{} incomplete", topo.name());
            table.validate(&topo).unwrap();
            // The rule must not force fallbacks for the vast majority of
            // flows.  (Our Double Butterfly reconstruction relies on long
            // links whose shortest paths occasionally must double back,
            // hence the generous bound.)
            assert!(
                (fallbacks as f64) < 0.35 * 380.0,
                "{}: {} fallbacks",
                topo.name(),
                fallbacks
            );
        }
    }

    #[test]
    fn ndbt_is_deterministic_per_seed() {
        let layout = Layout::noi_4x5();
        let torus = expert::folded_torus(&layout);
        let ps = all_shortest_paths(&torus);
        let (a, _) = ndbt_route(&layout, &ps, 42);
        let (b, _) = ndbt_route(&layout, &ps, 42);
        let (c, _) = ndbt_route(&layout, &ps, 43);
        assert_eq!(a, b);
        // Different seeds usually pick at least one different path.
        let differs = a.flows().zip(c.flows()).any(|((_, pa), (_, pc))| pa != pc);
        assert!(differs);
    }
}
