//! Shortest-path enumeration.
//!
//! MCLB routing selects among *all* shortest paths of each flow, so the
//! path set must be enumerated explicitly.  The paper computes it with
//! Floyd–Warshall; here the distances come from per-source BFS (equivalent
//! for unweighted graphs) and the paths are enumerated by walking the
//! shortest-path DAG.  A per-flow cap guards against combinatorial blow-up
//! on dense topologies; the cap is far above what 20–48 router NoIs
//! produce.

use netsmith_topo::metrics::{all_pairs_hops, UNREACHABLE};
use netsmith_topo::{RouterId, Topology};
use serde::{Deserialize, Serialize};

/// Default cap on the number of shortest paths enumerated per flow.
pub const DEFAULT_MAX_PATHS_PER_FLOW: usize = 64;

/// The set of shortest paths for every ordered `(src, dst)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSet {
    n: usize,
    /// `paths[s * n + d]` = list of shortest paths, each a router sequence
    /// starting at `s` and ending at `d`.
    paths: Vec<Vec<Vec<RouterId>>>,
    /// Hop distance matrix used to build the set.
    dist: Vec<u32>,
}

impl PathSet {
    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.n
    }

    /// All shortest paths from `s` to `d` (empty for unreachable pairs or
    /// when `s == d`).
    pub fn paths(&self, s: RouterId, d: RouterId) -> &[Vec<RouterId>] {
        &self.paths[s * self.n + d]
    }

    /// Shortest hop distance from `s` to `d`.
    pub fn distance(&self, s: RouterId, d: RouterId) -> Option<u32> {
        let v = self.dist[s * self.n + d];
        if v == UNREACHABLE {
            None
        } else {
            Some(v)
        }
    }

    /// Total number of enumerated paths across all flows.
    pub fn total_paths(&self) -> usize {
        self.paths.iter().map(|p| p.len()).sum()
    }

    /// Iterate over all flows `(s, d)` with `s != d` that have at least one
    /// path.
    pub fn flows(&self) -> impl Iterator<Item = (RouterId, RouterId)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |s| {
            (0..n)
                .filter(move |&d| d != s && !self.paths[s * n + d].is_empty())
                .map(move |d| (s, d))
        })
    }
}

/// Enumerate all shortest paths of every flow with the default per-flow cap.
pub fn all_shortest_paths(topo: &Topology) -> PathSet {
    all_shortest_paths_capped(topo, DEFAULT_MAX_PATHS_PER_FLOW)
}

/// Enumerate all shortest paths with an explicit per-flow cap.
pub fn all_shortest_paths_capped(topo: &Topology, max_per_flow: usize) -> PathSet {
    let n = topo.num_routers();
    let dist = all_pairs_hops(topo);
    let mut paths = vec![Vec::new(); n * n];
    // Outgoing adjacency once.
    let adj: Vec<Vec<RouterId>> = (0..n).map(|i| topo.neighbours_out(i)).collect();
    for s in 0..n {
        for d in 0..n {
            if s == d || dist[s * n + d] == UNREACHABLE {
                continue;
            }
            let mut found = Vec::new();
            let mut current = vec![s];
            enumerate_dag_paths(s, d, n, &dist, &adj, &mut current, &mut found, max_per_flow);
            paths[s * n + d] = found;
        }
    }
    PathSet { n, paths, dist }
}

/// DFS over the shortest-path DAG: from `u`, a neighbour `v` is on a
/// shortest path to `d` iff `dist(v, d) == dist(u, d) - 1`.
#[allow(clippy::too_many_arguments)]
fn enumerate_dag_paths(
    u: RouterId,
    d: RouterId,
    n: usize,
    dist: &[u32],
    adj: &[Vec<RouterId>],
    current: &mut Vec<RouterId>,
    found: &mut Vec<Vec<RouterId>>,
    cap: usize,
) {
    if found.len() >= cap {
        return;
    }
    if u == d {
        found.push(current.clone());
        return;
    }
    let remaining = dist[u * n + d];
    for &v in &adj[u] {
        if dist[v * n + d] != UNREACHABLE && dist[v * n + d] + 1 == remaining {
            current.push(v);
            enumerate_dag_paths(v, d, n, dist, adj, current, found, cap);
            current.pop();
            if found.len() >= cap {
                return;
            }
        }
    }
}

/// Number of links (channels) traversed by a path.
pub fn path_length(path: &[RouterId]) -> usize {
    path.len().saturating_sub(1)
}

/// The directed links traversed by a path, in order.
pub fn path_links(path: &[RouterId]) -> impl Iterator<Item = (RouterId, RouterId)> + '_ {
    path.windows(2).map(|w| (w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    #[test]
    fn mesh_paths_have_shortest_length_and_correct_endpoints() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let ps = all_shortest_paths(&mesh);
        for (s, d) in ps.flows() {
            let expected = ps.distance(s, d).unwrap() as usize;
            for p in ps.paths(s, d) {
                assert_eq!(p.first(), Some(&s));
                assert_eq!(p.last(), Some(&d));
                assert_eq!(path_length(p), expected);
                // Every consecutive pair must be a real link.
                for (a, b) in path_links(p) {
                    assert!(mesh.has_link(a, b), "missing link {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn mesh_path_counts_follow_lattice_combinatorics() {
        // In a mesh the number of shortest paths between (0,0) and (1,2) is
        // C(3,1) = 3.
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let ps = all_shortest_paths(&mesh);
        let s = layout.router_at(0, 0);
        let d = layout.router_at(1, 2);
        assert_eq!(ps.paths(s, d).len(), 3);
        // Straight-line flows have exactly one shortest path.
        let d2 = layout.router_at(0, 3);
        assert_eq!(ps.paths(s, d2).len(), 1);
    }

    #[test]
    fn every_connected_flow_has_at_least_one_path() {
        let torus = expert::folded_torus(&Layout::noi_4x5());
        let ps = all_shortest_paths(&torus);
        let mut flows = 0;
        for s in 0..20 {
            for d in 0..20 {
                if s != d {
                    assert!(!ps.paths(s, d).is_empty(), "no path {s}->{d}");
                    flows += 1;
                }
            }
        }
        assert_eq!(flows, 380);
        assert_eq!(ps.flows().count(), 380);
    }

    #[test]
    fn cap_limits_enumeration() {
        let mesh = expert::mesh(&Layout::noi_4x5());
        let capped = all_shortest_paths_capped(&mesh, 2);
        for (s, d) in capped.flows() {
            assert!(capped.paths(s, d).len() <= 2);
        }
        let full = all_shortest_paths(&mesh);
        assert!(full.total_paths() >= capped.total_paths());
    }

    #[test]
    fn unreachable_pairs_have_no_paths() {
        use netsmith_topo::{LinkClass, Topology};
        let layout = Layout::noi_4x5();
        let mut t = Topology::empty("sparse", layout, LinkClass::Small);
        t.add_bidirectional(0, 1);
        let ps = all_shortest_paths(&t);
        assert!(ps.paths(0, 5).is_empty());
        assert_eq!(ps.distance(0, 5), None);
        assert_eq!(ps.paths(0, 1).len(), 1);
    }

    #[test]
    fn paths_are_simple() {
        let bd = expert::butter_donut(&Layout::noi_4x5());
        let ps = all_shortest_paths(&bd);
        for (s, d) in ps.flows() {
            for p in ps.paths(s, d) {
                let mut sorted = p.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), p.len(), "path revisits a router: {p:?}");
            }
        }
    }
}
