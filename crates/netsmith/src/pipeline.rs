//! The discover → route → allocate → evaluate pipeline.

use netsmith_energy::{EnergyConfig, EnergyContext, EnergyPolicy, EnergyReport};
use netsmith_fault::{
    assess_resilience, DegradedTopology, FaultScenario, RepairPolicy, RepairedNetwork,
    ResilienceConfig, ResilienceReport,
};
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::{
    allocate_vcs, mclb_route, ndbt_route, MclbConfig, RoutingTable, VcAllocation,
};
use netsmith_sim::{LatencyCurve, NetworkSim, SimConfig, SimReport, Sweep};
use netsmith_topo::metrics::{unreachable_pairs, TopologyMetrics};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::{PipelineError, Topology};
use serde::{Deserialize, Serialize};

/// Which routing scheme to apply to a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingScheme {
    /// NetSmith's maximum-channel-load-bottleneck routing (Table III).
    Mclb,
    /// The expert-topology heuristic: shortest paths with no double-back
    /// turns along the horizontal axis.
    Ndbt,
}

impl RoutingScheme {
    /// Label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingScheme::Mclb => "MCLB",
            RoutingScheme::Ndbt => "NDBT",
        }
    }
}

/// A topology that has been routed, VC-allocated and measured analytically;
/// ready to be simulated.
#[derive(Debug, Clone)]
pub struct EvaluatedNetwork {
    pub topology: Topology,
    pub routing: RoutingTable,
    pub vcs: VcAllocation,
    pub metrics: TopologyMetrics,
    pub scheme: RoutingScheme,
}

impl EvaluatedNetwork {
    /// Route `topology` with the requested scheme, allocate deadlock-free
    /// escape VCs within `total_vcs`, and compute the analytical metrics.
    /// The error names exactly why the topology cannot be served:
    /// [`PipelineError::Disconnected`] for an unreachable pair,
    /// [`PipelineError::IncompleteRouting`] when the scheme left pairs
    /// unrouted, [`PipelineError::VcBudgetExceeded`] when deadlock freedom
    /// needs more VCs than `total_vcs`.
    pub fn prepare(
        topology: &Topology,
        scheme: RoutingScheme,
        total_vcs: usize,
        seed: u64,
    ) -> Result<Self, PipelineError> {
        let pairs = unreachable_pairs(topology);
        if pairs > 0 {
            return Err(PipelineError::Disconnected { pairs });
        }
        let paths = all_shortest_paths(topology);
        let routing = match scheme {
            RoutingScheme::Mclb => mclb_route(
                &paths,
                &MclbConfig {
                    seed,
                    ..Default::default()
                },
            ),
            RoutingScheme::Ndbt => ndbt_route(topology.layout(), &paths, seed).0,
        };
        routing.require_complete()?;
        let vcs = allocate_vcs(&routing, total_vcs, seed)?;
        let metrics = TopologyMetrics::compute(topology);
        Ok(EvaluatedNetwork {
            topology: topology.clone(),
            routing,
            vcs,
            metrics,
            scheme,
        })
    }

    /// Label combining topology and routing scheme ("Kite-Large / NDBT").
    pub fn label(&self) -> String {
        format!("{} / {}", self.topology.name(), self.scheme.label())
    }

    /// Run an injection-rate sweep under a traffic pattern.
    pub fn sweep(
        &self,
        pattern: TrafficPattern,
        config: &SimConfig,
        loads: &[f64],
    ) -> LatencyCurve {
        Sweep::new(self.label()).run_network(
            &self.topology,
            &self.routing,
            Some(&self.vcs),
            pattern,
            config,
            loads,
        )
    }

    /// Simulator configuration matching this topology's link-length class
    /// (clock of 3.6/3.0/2.7 GHz for small/medium/large).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::for_class(self.topology.class())
    }

    /// Run one simulation at an offered load and return the full report,
    /// including the per-link/per-router [`ActivityProfile`] that energy
    /// policies and the measured power model consume.
    ///
    /// [`ActivityProfile`]: netsmith_sim::ActivityProfile
    pub fn measure(&self, pattern: TrafficPattern, config: &SimConfig, load: f64) -> SimReport {
        self.sim_builder()
            .pattern(pattern)
            .config(config.clone())
            .build()
            .run(load)
    }

    /// A simulator builder pre-wired with this network's topology, routing
    /// table and VC allocation — the escape hatch for measurements the
    /// pattern-driven helpers above don't cover, such as deterministic
    /// trace replay (`.trace(...)`) or degraded sources
    /// (`.failed_routers(...)`).
    pub fn sim_builder(&self) -> netsmith_sim::NetworkSimBuilder<'_> {
        NetworkSim::builder(&self.topology, &self.routing).vcs(&self.vcs)
    }

    /// Evaluate an energy-management policy against a measured operating
    /// point (a report previously produced by [`EvaluatedNetwork::measure`]
    /// under `config`).
    pub fn energy_report(
        &self,
        policy: &dyn EnergyPolicy,
        sim_config: &SimConfig,
        report: &SimReport,
        energy_config: &EnergyConfig,
    ) -> EnergyReport {
        policy.evaluate(&EnergyContext {
            topology: &self.topology,
            routing: &self.routing,
            vcs: &self.vcs,
            sim: sim_config,
            report,
            config: energy_config,
        })
    }

    /// Apply a fault scenario to this network's topology, yielding the
    /// surviving sub-topology and alive mask.
    pub fn degrade(&self, scenario: &FaultScenario) -> DegradedTopology {
        scenario.apply(&self.topology)
    }

    /// Repair a fault scenario with a [`RepairPolicy`]: re-route and
    /// re-allocate escape VCs on the surviving sub-topology.  When the
    /// degraded fabric cannot serve every surviving pair deadlock-free
    /// within the policy's budget, the error is
    /// [`PipelineError::RepairInfeasible`], wrapping the scenario label and
    /// the underlying pipeline failure.
    pub fn repair(
        &self,
        scenario: &FaultScenario,
        policy: &dyn RepairPolicy,
        config: &netsmith_fault::RepairConfig,
    ) -> Result<RepairedNetwork, PipelineError> {
        policy
            .repair(&self.degrade(scenario), config)
            .map_err(|reason| PipelineError::RepairInfeasible {
                scenario: scenario.label(),
                reason: Box::new(reason),
            })
    }

    /// Assess resilience against a scenario set: repair every scenario
    /// with `policy` and (unless `config.simulate` is off) re-measure the
    /// degraded latency/throughput against this network's healthy
    /// baseline.  See [`netsmith_fault::assess_resilience`].
    pub fn resilience_report(
        &self,
        scenarios: &[FaultScenario],
        policy: &dyn RepairPolicy,
        config: &ResilienceConfig,
    ) -> ResilienceReport {
        assess_resilience(
            self.label(),
            &self.topology,
            &self.routing,
            &self.vcs,
            scenarios,
            policy,
            config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_topo::expert;
    use netsmith_topo::Layout;

    #[test]
    fn prepare_routes_and_allocates_expert_topologies() {
        let layout = Layout::noi_4x5();
        for topo in [expert::mesh(&layout), expert::kite_medium(&layout)] {
            for scheme in [RoutingScheme::Mclb, RoutingScheme::Ndbt] {
                let network = EvaluatedNetwork::prepare(&topo, scheme, 6, 3)
                    .unwrap_or_else(|e| panic!("{} should prepare: {e}", topo.name()));
                assert!(network.routing.is_complete());
                assert!(netsmith_route::vc::verify_deadlock_free(
                    &network.routing,
                    &network.vcs
                ));
                assert_eq!(network.metrics.num_routers, 20);
                assert!(network.label().contains(scheme.label()));
            }
        }
    }

    #[test]
    fn sweep_produces_points_for_each_load() {
        let layout = Layout::noi_4x5();
        let topo = expert::folded_torus(&layout);
        let network = EvaluatedNetwork::prepare(&topo, RoutingScheme::Mclb, 6, 3).unwrap();
        let config = SimConfig::quick();
        let curve = network.sweep(TrafficPattern::UniformRandom, &config, &[0.05, 0.3]);
        assert_eq!(curve.points.len(), 2);
        assert!(curve.points[0].latency_cycles > 0.0);
    }

    #[test]
    fn trace_replay_through_the_sim_builder() {
        use std::sync::Arc;
        let layout = Layout::noi_4x5();
        let topo = expert::folded_torus(&layout);
        let network = EvaluatedNetwork::prepare(&topo, RoutingScheme::Mclb, 6, 3).unwrap();
        let trace = Arc::new(netsmith_trace::generate_named("pointer-chase", 20, 512, 9).unwrap());
        let run = || {
            network
                .sim_builder()
                .trace(Arc::clone(&trace))
                .config(SimConfig::quick())
                .build()
                .run(0.05)
        };
        let report = run();
        assert!(report.packets_ejected > 0);
        assert!((report.offered_flits_per_node_cycle - 0.05).abs() < 1e-12);
        // Replay draws no RNG: the same builder chain reproduces the
        // report bit-for-bit.
        assert_eq!(report, run());
    }

    #[test]
    fn energy_report_compares_policies_through_the_pipeline() {
        use netsmith_energy::{AlwaysOn, LinkSleep};
        let layout = Layout::noi_4x5();
        let topo = expert::folded_torus(&layout);
        let network = EvaluatedNetwork::prepare(&topo, RoutingScheme::Mclb, 6, 3).unwrap();
        let sim_config = SimConfig::quick();
        let energy_config = EnergyConfig::default();
        let report = network.measure(TrafficPattern::UniformRandom, &sim_config, 0.02);
        let always = network.energy_report(&AlwaysOn, &sim_config, &report, &energy_config);
        let sleep = network.energy_report(
            &LinkSleep {
                idle_threshold: 0.15,
                ..LinkSleep::default()
            },
            &sim_config,
            &report,
            &energy_config,
        );
        assert!(always.total_mw() > 0.0);
        assert!(sleep.routable);
        assert!(
            sleep.total_mw() < always.total_mw(),
            "link sleep {} should beat always-on {} at 2% load",
            sleep.total_mw(),
            always.total_mw()
        );
    }

    #[test]
    fn resilience_report_through_the_pipeline() {
        use netsmith_fault::{single_link_scenarios, RerouteRepair, ResilienceConfig};
        let layout = Layout::noi_4x5();
        let topo = expert::folded_torus(&layout);
        let network = EvaluatedNetwork::prepare(&topo, RoutingScheme::Mclb, 6, 3).unwrap();
        let scenarios = single_link_scenarios(&network.topology);
        let report = network.resilience_report(
            &scenarios,
            &RerouteRepair,
            &ResilienceConfig {
                simulate: false,
                ..Default::default()
            },
        );
        // The folded torus tolerates any single link failure.
        assert!((report.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(report.total_unreachable_pairs(), 0);
        assert_eq!(report.outcomes.len(), scenarios.len());
        // The repair facade agrees scenario by scenario.
        let repaired = network
            .repair(
                &scenarios[0],
                &RerouteRepair,
                &netsmith_fault::RepairConfig::default(),
            )
            .expect("single link failure repairs");
        assert!(repaired.verify());
    }

    #[test]
    fn prepare_reports_typed_failures() {
        let layout = Layout::noi_4x5();
        // An empty topology is disconnected: every ordered pair unreachable.
        let empty = netsmith_topo::Topology::empty(
            "empty",
            layout.clone(),
            netsmith_topo::LinkClass::Small,
        );
        match EvaluatedNetwork::prepare(&empty, RoutingScheme::Mclb, 6, 3) {
            Err(PipelineError::Disconnected { pairs }) => assert_eq!(pairs, 380),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        // A 1-VC budget on the folded torus fails with the exact need.
        let torus = expert::folded_torus(&layout);
        match EvaluatedNetwork::prepare(&torus, RoutingScheme::Mclb, 1, 3) {
            Err(PipelineError::VcBudgetExceeded { needed, budget }) => {
                assert!(needed > 1);
                assert_eq!(budget, 1);
            }
            other => panic!("expected VcBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn repair_wraps_failures_with_the_scenario() {
        use netsmith_fault::Fault;
        let layout = Layout::noi_4x5();
        let mesh = expert::mesh(&layout);
        let network = EvaluatedNetwork::prepare(&mesh, RoutingScheme::Mclb, 6, 3).unwrap();
        // Severing both links of corner router 0 partitions it off.
        let scenario = FaultScenario::new(vec![Fault::link(0, 1), Fault::link(0, 5)]);
        match network.repair(
            &scenario,
            &netsmith_fault::RerouteRepair,
            &netsmith_fault::RepairConfig::default(),
        ) {
            Err(PipelineError::RepairInfeasible {
                scenario: s,
                reason,
            }) => {
                assert_eq!(s, scenario.label());
                assert!(matches!(*reason, PipelineError::Disconnected { .. }));
            }
            other => panic!("expected RepairInfeasible, got {other:?}"),
        }
    }

    #[test]
    fn sim_config_clock_tracks_class() {
        let layout = Layout::noi_4x5();
        let small =
            EvaluatedNetwork::prepare(&expert::kite_small(&layout), RoutingScheme::Mclb, 6, 3)
                .unwrap();
        assert_eq!(small.sim_config().clock_ghz, 3.6);
    }
}
