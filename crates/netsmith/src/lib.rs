//! # NetSmith
//!
//! A from-scratch reproduction of *"NetSmith: An Optimization Framework for
//! Machine-Discovered Network Topologies"* (Green & Thottethodi, ICPP 2024).
//!
//! NetSmith automatically discovers network-on-interposer (NoI) topologies
//! for general-purpose, shared-memory multicores that outperform
//! expert-designed networks (Kite, Butter Donut, Double Butterfly, Folded
//! Torus) on both latency (average hop count) and throughput (sparsest-cut
//! bandwidth), while staying within the same cost envelope (router count,
//! radix, link-length budget).
//!
//! This crate is the facade over the workspace:
//!
//! | crate | role |
//! |-------|------|
//! | [`topo`] | layouts, link classes, expert baselines, analytical metrics |
//! | [`lp`] | from-scratch LP/MILP solver (Gurobi substitute) |
//! | [`gen`] | the NetSmith generator: Table I MIP + annealing engines |
//! | [`route`] | shortest paths, NDBT, MCLB routing, deadlock-free VC allocation |
//! | [`sim`] | cycle-driven NoI simulator (gem5/HeteroGarnet substitute) |
//! | [`trace`] | compact message traces: format, deterministic replay, workload generators |
//! | [`obs`] | instrumentation: spans, counters, JSONL event sink, run manifests |
//! | [`system`] | PARSEC-style full-system speedup model |
//! | [`power`] | DSENT-style area/power model |
//! | [`energy`] | measured-activity energy policies (link sleep, DVFS) |
//! | [`fault`] | resilience: fault injection, deadlock-free repair, robustness reports |
//! | [`serve`] | lifetime serving: time-varying load, online policy, fault tape, SLA metrics |
//!
//! The [`pipeline`] module strings these together the way the paper's
//! evaluation does: discover (or pick) a topology → route it with MCLB (or
//! NDBT) → allocate escape VCs → simulate synthetic or full-system traffic
//! → report metrics, curves, speedups and power.
//!
//! ## Quick start
//!
//! ```
//! use netsmith::prelude::*;
//!
//! // Discover a latency-optimized topology for the paper's 4x5 interposer
//! // under the "medium" link-length budget (tiny search budget shown here).
//! let result = NetSmith::new(Layout::noi_4x5(), LinkClass::Medium)
//!     .objective(Objective::LatOp)
//!     .evaluations(2_000)
//!     .workers(1)
//!     .seed(1)
//!     .discover();
//!
//! // Route it with MCLB and allocate deadlock-free escape VCs.
//! let network = EvaluatedNetwork::prepare(&result.topology, RoutingScheme::Mclb, 6, 1)
//!     .expect("routable");
//! assert!(network.metrics.average_hops < 3.0);
//! ```

pub use netsmith_energy as energy;
pub use netsmith_fault as fault;
pub use netsmith_gen as gen;
pub use netsmith_lp as lp;
pub use netsmith_obs as obs;
pub use netsmith_power as power;
pub use netsmith_route as route;
pub use netsmith_serve as serve;
pub use netsmith_sim as sim;
pub use netsmith_system as system;
pub use netsmith_topo as topo;
pub use netsmith_trace as trace;

pub mod pipeline;

pub use netsmith_topo::PipelineError;
pub use pipeline::{EvaluatedNetwork, RoutingScheme};

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use crate::pipeline::{EvaluatedNetwork, RoutingScheme};
    pub use netsmith_energy::{
        AlwaysOn, Dvfs, EnergyConfig, EnergyPolicy, EnergyReport, LinkSleep,
    };
    pub use netsmith_fault::{
        assess_resilience, single_link_scenarios, single_router_scenarios, Fault, FaultModel,
        FaultScenario, RepairConfig, RepairPolicy, RerouteRepair, ResilienceConfig,
        ResilienceReport,
    };
    pub use netsmith_gen::{DiscoveryResult, NetSmith, Objective, Term, WeightedTerm};
    pub use netsmith_obs::{JsonlRecorder, MemoryRecorder, MetricsSnapshot, Obs};
    pub use netsmith_power::{area_report, power_report_from_activity, PowerConfig};
    pub use netsmith_route::{allocate_vcs, mclb_route, ndbt_route, MclbConfig, RoutingTable};
    pub use netsmith_serve::{
        serve, LoadSpec, PolicyKind, ServingConfig, ServingInputs, ServingReport, TapeSpec,
    };
    pub use netsmith_sim::{LatencyCurve, SimConfig, Sweep, SweepOptions};
    pub use netsmith_system::{evaluate_topology, parsec_suite, FullSystemConfig};
    pub use netsmith_topo::prelude::*;
    pub use netsmith_topo::Layout;
    pub use netsmith_topo::PipelineError;
    pub use netsmith_topo::{expert, LinkClass};
    pub use netsmith_trace::{Trace, TraceCursor, TraceStats};
}
