//! # netsmith-pool
//!
//! A persistent, workspace-shared worker pool.
//!
//! Before this crate, every parallel site in the workspace —
//! injection-rate sweeps (`netsmith-sim`), multi-seed annealing
//! (`netsmith-gen`) and experiment-cell execution (`netsmith-exp`) —
//! spawned fresh OS threads per call through `std::thread::scope`.  A
//! quick suite run crosses those sites tens of thousands of times, so
//! thread spawn/join overhead and oversubscription (nested scopes each
//! spawning `available_parallelism` threads) became measurable.
//!
//! [`WorkerPool`] keeps one set of OS threads alive for the process
//! lifetime and coordinates work in *epochs*: every [`WorkerPool::run`]
//! call installs a batch of tasks under the pool mutex, bumps the epoch
//! counter and wakes the workers; the submitting thread then helps drain
//! the queue and finally blocks on the batch's completion barrier.
//! Because the submitter participates, nested submissions (a sweep inside
//! an experiment cell inside the suite runner) always make progress even
//! when every pool worker is busy.
//!
//! Tasks may borrow from the submitting stack frame: [`WorkerPool::run`]
//! does not return until every task of the batch has completed (panics
//! included), which is exactly the guarantee `std::thread::scope`
//! provides, so the lifetime erasure performed internally is sound.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// A type-erased unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Cumulative activity counters of a pool since its creation, read with
/// [`WorkerPool::stats`].  The pool keeps these itself (plain relaxed
/// atomics, no dependencies) so callers — the experiment CLI publishes
/// them as `pool.*` obs counters — can snapshot activity without wrapping
/// every submission site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Batches submitted through [`WorkerPool::run`].
    pub batches: u64,
    /// Tasks across all batches.
    pub tasks: u64,
    /// Total microseconds tasks spent queued before starting to run.
    pub queue_wait_us: u64,
}

#[derive(Default)]
struct StatCells {
    batches: AtomicU64,
    tasks: AtomicU64,
    queue_wait_us: AtomicU64,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    queue: Mutex<QueueState>,
    /// Signalled when new work arrives (a new epoch) or on shutdown.
    work_ready: Condvar,
    stats: StatCells,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Monotonic batch counter; purely diagnostic, but it is the "epoch"
    /// the workers observe to distinguish spurious wakeups from real work.
    epoch: u64,
    shutdown: bool,
}

/// Completion barrier for one submitted batch.
struct Batch {
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload observed while running this batch's tasks.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn new(size: usize) -> Arc<Self> {
        Arc::new(Batch {
            remaining: Mutex::new(size),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn task_finished(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// A persistent pool of worker threads shared by sweeps, annealing and the
/// experiment runner.  See the crate docs for the coordination model.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawn a pool with `threads` persistent workers.  `threads == 0` is
    /// allowed: every batch then runs entirely on the submitting thread
    /// (useful for deterministic single-threaded debugging).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                epoch: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            stats: StatCells::default(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("netsmith-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
        }
    }

    /// The process-wide shared pool, sized to the machine (spawned on
    /// first use).  All workspace parallel sites submit here so the
    /// process never oversubscribes the CPU with nested thread scopes.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WorkerPool::new(threads)
        })
    }

    /// Number of persistent worker threads (the submitting thread adds one
    /// more unit of parallelism while a batch is in flight).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the pool's cumulative activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            batches: self.shared.stats.batches.load(Ordering::Relaxed),
            tasks: self.shared.stats.tasks.load(Ordering::Relaxed),
            queue_wait_us: self.shared.stats.queue_wait_us.load(Ordering::Relaxed),
        }
    }

    /// Run a batch of tasks to completion and return their results in
    /// submission order.  Blocks until every task has finished; if any
    /// task panicked, the first panic is resumed on the submitting thread
    /// (after the whole batch has still run to completion, so borrowed
    /// data is never observed by a still-running task after `run`
    /// returns).
    ///
    /// Tasks may borrow from the caller's stack frame (`'env`), exactly
    /// like `std::thread::scope` closures.
    pub fn run<'env, T: Send + 'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        let size = tasks.len();
        if size == 0 {
            return Vec::new();
        }
        let mut results: Vec<Option<T>> = Vec::with_capacity(size);
        results.resize_with(size, || None);
        let batch = Batch::new(size);

        self.shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.shared
            .stats
            .tasks
            .fetch_add(size as u64, Ordering::Relaxed);
        let enqueued = Instant::now();
        {
            let mut queue = self.shared.queue.lock().unwrap();
            for (slot, task) in results.iter_mut().zip(tasks) {
                // Each job writes to a distinct, caller-owned slot.  The
                // raw pointer (and the task's borrows) stay valid because
                // this function does not return before the barrier below
                // observes `remaining == 0`.
                let slot = SendPtr(slot as *mut Option<T>);
                let batch = Arc::clone(&batch);
                let shared = Arc::clone(&self.shared);
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    shared.stats.queue_wait_us.fetch_add(
                        enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64,
                        Ordering::Relaxed,
                    );
                    let outcome = catch_unwind(AssertUnwindSafe(task));
                    match outcome {
                        // Written through the wrapper (not the raw field) so
                        // the closure captures the whole `SendPtr` and stays
                        // `Send` under 2021 disjoint field capture.
                        Ok(value) => unsafe { slot.write(Some(value)) },
                        Err(payload) => {
                            let mut first = batch.panic.lock().unwrap();
                            if first.is_none() {
                                *first = Some(payload);
                            }
                        }
                    }
                    batch.task_finished();
                });
                // SAFETY: the job only dereferences borrows from the
                // caller's frame ('env) and `run` blocks until the batch
                // barrier reports completion, so no job outlives 'env.
                let job: Job = unsafe { std::mem::transmute(job) };
                queue.jobs.push_back(job);
            }
            queue.epoch += 1;
            self.shared.work_ready.notify_all();
        }

        // Help drain the queue (our batch's jobs and, harmlessly, any
        // other in-flight batch's) until our barrier opens.  Helping is
        // what makes nested submissions deadlock-free.
        loop {
            let job = {
                let mut queue = self.shared.queue.lock().unwrap();
                queue.jobs.pop_front()
            };
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        let mut remaining = batch.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).unwrap();
        }
        drop(remaining);

        if let Some(payload) = batch.panic.lock().unwrap().take() {
            std::panic::resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("batch task completed without a result"))
            .collect()
    }

    /// Run `main` on the calling thread while `helpers` are offered to the
    /// pool workers, and return `main`'s result once every helper has
    /// finished.
    ///
    /// This is the *assist* pattern the compiled simulator's intra-run
    /// parallelism uses: helpers are long-lived loops that lend the caller
    /// extra hands and exit on a caller-controlled signal.  The contract
    /// differs from [`WorkerPool::run`] in two ways:
    ///
    /// * **Helpers are optional.**  They are enqueued, not awaited before
    ///   `main` starts, and no worker is obliged to pick one up — if every
    ///   worker is busy, `main` simply runs alone.  A helper body must
    ///   therefore be pure acceleration: correctness may not depend on any
    ///   helper ever starting.
    /// * **The caller never drains helpers before `main`.**  Running a
    ///   helper inline ahead of `main` would deadlock a helper that waits
    ///   on `main`'s signal, so the calling thread runs `main` first and
    ///   only then helps drain the queue (by which point the caller must
    ///   have signalled its helpers to exit — any helper job still queued
    ///   runs, observes the signal and returns immediately).
    ///
    /// `main` must leave its helpers' exit condition set even on panic
    /// (e.g. via a drop guard); `assist` still waits for the full helper
    /// batch before resuming the panic, so borrowed data stays valid.
    /// Helper panics are resumed on the calling thread after `main`
    /// completes (`main`'s own panic takes precedence).
    pub fn assist<'env, T>(
        &self,
        helpers: Vec<Box<dyn FnOnce() + Send + 'env>>,
        main: impl FnOnce() -> T,
    ) -> T {
        if helpers.is_empty() {
            return main();
        }
        let size = helpers.len();
        let batch = Batch::new(size);
        self.shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.shared
            .stats
            .tasks
            .fetch_add(size as u64, Ordering::Relaxed);
        let enqueued = Instant::now();
        {
            let mut queue = self.shared.queue.lock().unwrap();
            for task in helpers {
                let batch = Arc::clone(&batch);
                let shared = Arc::clone(&self.shared);
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    shared.stats.queue_wait_us.fetch_add(
                        enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64,
                        Ordering::Relaxed,
                    );
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        let mut first = batch.panic.lock().unwrap();
                        if first.is_none() {
                            *first = Some(payload);
                        }
                    }
                    batch.task_finished();
                });
                // SAFETY: as in `run` — helper jobs only borrow from the
                // caller's frame ('env), and `assist` does not return (or
                // resume a panic) before the batch barrier observes every
                // helper finished.
                let job: Job = unsafe { std::mem::transmute(job) };
                queue.jobs.push_back(job);
            }
            queue.epoch += 1;
            self.shared.work_ready.notify_all();
        }

        let outcome = catch_unwind(AssertUnwindSafe(main));

        // Drain whatever is still queued (our helpers see their exit
        // signal and return immediately; other batches' jobs run
        // harmlessly), then wait out helpers already running on workers.
        loop {
            let job = {
                let mut queue = self.shared.queue.lock().unwrap();
                queue.jobs.pop_front()
            };
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        let mut remaining = batch.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).unwrap();
        }
        drop(remaining);

        match outcome {
            Ok(value) => {
                if let Some(payload) = batch.panic.lock().unwrap().take() {
                    std::panic::resume_unwind(payload);
                }
                value
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = shared.work_ready.wait(queue).unwrap();
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// A raw pointer that may cross threads.  Soundness is argued at the one
/// construction site in [`WorkerPool::run`].
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    /// The pointee must be alive and not aliased by any concurrent access;
    /// `WorkerPool::run` guarantees both for its result slots.
    unsafe fn write(&self, value: T) {
        *self.0 = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed<'env, T: Send + 'env>(
        fs: Vec<impl FnOnce() -> T + Send + 'env>,
    ) -> Vec<Box<dyn FnOnce() -> T + Send + 'env>> {
        fs.into_iter()
            .map(|f| Box::new(f) as Box<dyn FnOnce() -> T + Send + 'env>)
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let tasks = (0..64).map(|i| move || i * i).collect::<Vec<_>>();
        let results = pool.run(boxed(tasks));
        assert_eq!(results, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_may_borrow_the_callers_stack() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<&[u64]> = data.chunks(7).collect();
        let sums = pool.run(boxed(
            chunks
                .iter()
                .map(|chunk| move || chunk.iter().sum::<u64>())
                .collect::<Vec<_>>(),
        ));
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn zero_thread_pool_runs_on_the_submitter() {
        let pool = WorkerPool::new(0);
        let submitter = std::thread::current().id();
        let ids = pool.run(boxed(
            (0..8)
                .map(|_| move || std::thread::current().id())
                .collect::<Vec<_>>(),
        ));
        assert!(ids.iter().all(|&id| id == submitter));
    }

    #[test]
    fn nested_submissions_complete() {
        // A task submitted to the pool submits its own batch to the same
        // pool: the helping submitter guarantees progress even when the
        // batch count exceeds the worker count.
        let pool = Arc::new(WorkerPool::new(1));
        let outer: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..4)
            .map(|i: u64| {
                let pool = Arc::clone(&pool);
                Box::new(move || {
                    let inner = pool.run(boxed(
                        (0..4).map(|j: u64| move || i * 10 + j).collect::<Vec<_>>(),
                    ));
                    inner.iter().sum()
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let sums = pool.run(outer);
        assert_eq!(sums.len(), 4);
        assert_eq!(sums[1], 10 + 11 + 12 + 13);
    }

    #[test]
    fn panics_propagate_after_the_batch_finishes() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
                .map(|i: usize| {
                    let completed = &completed;
                    Box::new(move || {
                        if i == 3 {
                            panic!("task 3 exploded");
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.run(tasks);
        }));
        assert!(result.is_err(), "the task panic must resurface");
        // Every non-panicking task still ran: the barrier waits for the
        // whole batch before resuming the panic.
        assert_eq!(completed.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn stats_count_batches_and_tasks() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.stats(), PoolStats::default());
        pool.run(boxed((0..5).map(|i| move || i).collect::<Vec<_>>()));
        pool.run(boxed((0..3).map(|i| move || i).collect::<Vec<_>>()));
        let stats = pool.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.tasks, 8);
        // Queue wait is wall-clock and may legitimately round to zero on
        // an idle pool; it only has to be finite and monotone.
        let again = pool.stats();
        assert!(again.queue_wait_us >= stats.queue_wait_us);
    }

    #[test]
    fn assist_runs_main_inline_and_waits_for_helpers() {
        use std::sync::atomic::AtomicBool;
        let pool = WorkerPool::new(2);
        let stop = AtomicBool::new(false);
        let helped = AtomicUsize::new(0);
        let submitter = std::thread::current().id();
        let helpers: Vec<Box<dyn FnOnce() + Send>> = (0..2)
            .map(|_| {
                let stop = &stop;
                let helped = &helped;
                Box::new(move || {
                    while !stop.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                    helped.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let main_thread = pool.assist(helpers, || {
            stop.store(true, Ordering::Release);
            std::thread::current().id()
        });
        assert_eq!(main_thread, submitter);
        // assist returned, so both helpers observed the stop flag.
        assert_eq!(helped.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn assist_without_helpers_is_a_plain_call() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.assist(Vec::new(), || 41 + 1), 42);
    }

    #[test]
    fn assist_survives_a_main_panic_with_a_guarded_exit_flag() {
        use std::sync::atomic::AtomicBool;
        struct SetOnDrop<'a>(&'a AtomicBool);
        impl Drop for SetOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Release);
            }
        }
        let pool = WorkerPool::new(1);
        let stop = AtomicBool::new(false);
        let helper: Box<dyn FnOnce() + Send> = Box::new(|| {
            while !stop.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        });
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.assist(vec![helper], || {
                let _guard = SetOnDrop(&stop);
                panic!("main exploded");
            })
        }));
        assert!(result.is_err());
        // The helper exited before assist resumed the panic, so `stop`
        // (borrowed from this frame) was never used after free.
        assert!(stop.load(Ordering::Acquire));
    }

    #[test]
    fn the_global_pool_is_shared_and_sized() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
        let results = a.run(boxed((0..3).map(|i| move || i + 1).collect::<Vec<_>>()));
        assert_eq!(results, vec![1, 2, 3]);
    }
}
