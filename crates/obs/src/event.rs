//! The event model and its JSON-Lines encoding.
//!
//! Every recorder observation is an [`Event`]: a microsecond timestamp
//! (relative to the recorder's construction) plus an [`EventKind`].  The
//! encoding is one JSON object per line, written by a hand-rolled printer
//! in the same style as the `netsmith-topo` JSON codec, so the log parses
//! with that codec (and any off-the-shelf JSON-lines tooling) without this
//! crate growing a dependency.

/// An attribute value attached to spans, gauges and series.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.into())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// A key/value attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    pub key: String,
    pub value: AttrValue,
}

impl Attr {
    pub fn new(key: &str, value: impl Into<AttrValue>) -> Self {
        Attr {
            key: key.into(),
            value: value.into(),
        }
    }
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span started; `parent` is the innermost span still open on the
    /// same thread.
    SpanOpen {
        id: u64,
        parent: Option<u64>,
        name: String,
    },
    /// A span finished after `dur_us` microseconds, carrying any
    /// attributes attached while it was open.
    SpanClose {
        id: u64,
        name: String,
        dur_us: u64,
        attrs: Vec<Attr>,
    },
    /// A point-in-time measurement.
    Gauge {
        name: String,
        value: f64,
        attrs: Vec<Attr>,
    },
    /// A small embedded table: named columns × numeric rows (the epoch
    /// probe's per-epoch samples travel as one of these).
    Series {
        name: String,
        attrs: Vec<Attr>,
        columns: Vec<String>,
        rows: Vec<Vec<f64>>,
    },
    /// A monotonic counter's final total, emitted at flush.
    CounterTotal { name: String, total: u64 },
}

/// A timestamped observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the recorder was constructed.
    pub t_us: u64,
    pub kind: EventKind,
}

/// Append a JSON string literal (quoted, escaped) to `out`.
fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite JSON number.  Rust's shortest-round-trip `Display` for
/// `f64` is valid JSON for every finite value; non-finite values (which no
/// probe should produce) degrade to `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_attrs(out: &mut String, attrs: &[Attr]) {
    if attrs.is_empty() {
        return;
    }
    out.push_str(",\"attrs\":{");
    for (i, attr) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_lit(out, &attr.key);
        out.push(':');
        match &attr.value {
            AttrValue::U64(v) => out.push_str(&format!("{v}")),
            AttrValue::F64(v) => push_f64(out, *v),
            AttrValue::Str(v) => push_str_lit(out, v),
        }
    }
    out.push('}');
}

impl Event {
    /// The event as one JSON object, without a trailing newline.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!("{{\"t_us\":{}", self.t_us));
        match &self.kind {
            EventKind::SpanOpen { id, parent, name } => {
                out.push_str(&format!(",\"ev\":\"span_open\",\"id\":{id}"));
                if let Some(parent) = parent {
                    out.push_str(&format!(",\"parent\":{parent}"));
                }
                out.push_str(",\"name\":");
                push_str_lit(&mut out, name);
            }
            EventKind::SpanClose {
                id,
                name,
                dur_us,
                attrs,
            } => {
                out.push_str(&format!(",\"ev\":\"span_close\",\"id\":{id},\"name\":"));
                push_str_lit(&mut out, name);
                out.push_str(&format!(",\"dur_us\":{dur_us}"));
                push_attrs(&mut out, attrs);
            }
            EventKind::Gauge { name, value, attrs } => {
                out.push_str(",\"ev\":\"gauge\",\"name\":");
                push_str_lit(&mut out, name);
                out.push_str(",\"value\":");
                push_f64(&mut out, *value);
                push_attrs(&mut out, attrs);
            }
            EventKind::Series {
                name,
                attrs,
                columns,
                rows,
            } => {
                out.push_str(",\"ev\":\"series\",\"name\":");
                push_str_lit(&mut out, name);
                out.push_str(",\"columns\":[");
                for (i, col) in columns.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_str_lit(&mut out, col);
                }
                out.push_str("],\"rows\":[");
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    for (j, v) in row.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        push_f64(&mut out, *v);
                    }
                    out.push(']');
                }
                out.push(']');
                push_attrs(&mut out, attrs);
            }
            EventKind::CounterTotal { name, total } => {
                out.push_str(",\"ev\":\"counter\",\"name\":");
                push_str_lit(&mut out, name);
                out.push_str(&format!(",\"total\":{total}"));
            }
        }
        out.push('}');
        out
    }

    /// The name carried by the event's kind.
    pub fn name(&self) -> &str {
        match &self.kind {
            EventKind::SpanOpen { name, .. }
            | EventKind::SpanClose { name, .. }
            | EventKind::Gauge { name, .. }
            | EventKind::Series { name, .. }
            | EventKind::CounterTotal { name, .. } => name,
        }
    }
}
