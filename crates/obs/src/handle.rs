//! The cheap instrumentation handles threaded through the pipeline:
//! [`Obs`] (a cloneable, possibly-disabled recorder reference),
//! [`Counter`] (a pre-resolved atomic cell) and [`Span`] (an RAII
//! wall-clock scope).

use crate::event::{Attr, AttrValue, EventKind};
use crate::recorder::{MetricsSnapshot, Recorder};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Open span ids on this thread, innermost last.  Parent links are
    /// per-thread: a span opened on a worker thread while another thread
    /// holds a span open simply has no parent.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A handle to a [`Recorder`], or to nothing.  Every instrumented layer
/// takes one of these; the disabled (`noop`) form costs a single branch
/// per call site and allocates nothing, so it is safe to thread through
/// hot paths unconditionally.
#[derive(Clone, Default)]
pub struct Obs {
    recorder: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// The disabled handle: every operation is a no-op.
    pub fn noop() -> Self {
        Obs::default()
    }

    /// Record into `recorder`.
    pub fn to(recorder: impl Recorder + 'static) -> Self {
        Obs {
            recorder: Some(Arc::new(recorder)),
        }
    }

    /// Record into an already-shared recorder.
    pub fn from_arc(recorder: Arc<dyn Recorder>) -> Self {
        Obs {
            recorder: Some(recorder),
        }
    }

    /// Whether a recorder is attached.
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Intern a counter handle.  Resolve once outside a hot loop, then
    /// [`Counter::add`] is one relaxed atomic add (or nothing when
    /// disabled).
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.recorder.as_ref().map(|r| r.counter(name)))
    }

    /// Add to a counter by name (cold paths only — interns on every call).
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(recorder) = &self.recorder {
            recorder.counter(name).fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Record a point-in-time value.
    pub fn gauge(&self, name: &str, value: f64, attrs: Vec<Attr>) {
        if let Some(recorder) = &self.recorder {
            recorder.emit(EventKind::Gauge {
                name: name.into(),
                value,
                attrs,
            });
        }
    }

    /// Record a named table of numeric rows (e.g. the simulator's
    /// per-epoch samples).
    pub fn series(&self, name: &str, attrs: Vec<Attr>, columns: &[&str], rows: Vec<Vec<f64>>) {
        if let Some(recorder) = &self.recorder {
            recorder.emit(EventKind::Series {
                name: name.into(),
                attrs,
                columns: columns.iter().map(|&c| c.into()).collect(),
                rows,
            });
        }
    }

    /// Open a wall-clock span; it closes (and emits) when dropped.
    pub fn span(&self, name: &str) -> Span {
        let state = self.recorder.as_ref().map(|recorder| {
            let id = recorder.next_span_id();
            let parent = SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                let parent = stack.last().copied();
                stack.push(id);
                parent
            });
            recorder.emit(EventKind::SpanOpen {
                id,
                parent,
                name: name.into(),
            });
            SpanState {
                recorder: Arc::clone(recorder),
                id,
                name: name.into(),
                start: Instant::now(),
                attrs: Vec::new(),
            }
        });
        Span {
            state,
            _not_send: PhantomData,
        }
    }

    /// Aggregate the recorder's view, `None` when disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.recorder.as_ref().map(|r| r.snapshot())
    }

    /// Emit counter totals and flush any buffered sink.
    pub fn flush(&self) {
        if let Some(recorder) = &self.recorder {
            recorder.flush();
        }
    }
}

/// A pre-resolved monotonic counter.  Disabled handles skip the add with
/// one branch; enabled ones are a relaxed `fetch_add` on a shared cell.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn incr(&self) {
        self.add(1);
    }
}

struct SpanState {
    recorder: Arc<dyn Recorder>,
    id: u64,
    name: String,
    start: Instant,
    attrs: Vec<Attr>,
}

/// An open span.  Not `Send`: spans nest per thread (the parent link
/// comes from a thread-local stack), so a guard must close on the thread
/// that opened it.
pub struct Span {
    state: Option<SpanState>,
    _not_send: PhantomData<*const ()>,
}

impl Span {
    /// Attach an attribute delivered with the close event.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        if let Some(state) = &mut self.state {
            state.attrs.push(Attr::new(key, value));
        }
    }

    /// Close now (otherwise `Drop` does it).
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if stack.last() == Some(&state.id) {
                    stack.pop();
                } else {
                    // Out-of-order drop (spans closed in non-LIFO order on
                    // one thread); remove the id wherever it sits.
                    stack.retain(|&id| id != state.id);
                }
            });
            let dur_us = state.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            state.recorder.emit(EventKind::SpanClose {
                id: state.id,
                name: state.name,
                dur_us,
                attrs: state.attrs,
            });
        }
    }
}
