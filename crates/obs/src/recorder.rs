//! Recorder implementations: the [`Recorder`] trait, the shared
//! aggregation core, the in-memory recorder for tests, and the JSON-Lines
//! file sink.

use crate::event::{Event, EventKind};
use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many spans with this name closed.
    pub count: u64,
    /// Total wall-clock across them, microseconds.
    pub total_us: u64,
}

/// A point-in-time aggregate of everything a recorder has seen: counter
/// totals, closed-span summaries, last gauge values, and series counts.
/// This is what tests assert on, and what the run manifest is built from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub spans: BTreeMap<String, SpanStats>,
    /// Last recorded value per gauge name.
    pub gauges: BTreeMap<String, f64>,
    /// Number of series events per name.
    pub series: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// A counter's total, zero when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// How many spans with `name` closed.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.get(name).map(|s| s.count).unwrap_or(0)
    }
}

/// The instrumentation backend.  Implementations must be cheap to share
/// across threads: counters are handed out as [`AtomicU64`]s so hot loops
/// never re-enter the recorder, and `emit` is called only on the cold
/// paths (span open/close, gauges, series).
pub trait Recorder: Send + Sync {
    /// Intern a monotonic counter.  The same name always maps to the same
    /// cell, so totals aggregate across threads.
    fn counter(&self, name: &str) -> Arc<AtomicU64>;

    /// Record an event; the recorder stamps the timestamp.
    fn emit(&self, kind: EventKind);

    /// A fresh process-unique span id.
    fn next_span_id(&self) -> u64;

    /// Aggregate everything seen so far.
    fn snapshot(&self) -> MetricsSnapshot;

    /// Emit [`EventKind::CounterTotal`] lines for every interned counter
    /// and flush any buffered output.
    fn flush(&self);
}

/// Shared recorder internals: the timestamp epoch, span-id allocator,
/// counter registry, and running aggregates.
struct Core {
    epoch: Instant,
    next_id: AtomicU64,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    series: Mutex<BTreeMap<String, u64>>,
}

impl Default for Core {
    fn default() -> Self {
        Core {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            counters: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            series: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Core {
    fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut counters = self.counters.lock().unwrap();
        match counters.get(name) {
            Some(cell) => Arc::clone(cell),
            None => {
                let cell = Arc::new(AtomicU64::new(0));
                counters.insert(name.into(), Arc::clone(&cell));
                cell
            }
        }
    }

    fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Fold the kind into the running aggregates and stamp it.
    fn stamp(&self, kind: EventKind) -> Event {
        match &kind {
            EventKind::SpanClose { name, dur_us, .. } => {
                let mut spans = self.spans.lock().unwrap();
                let entry = spans.entry(name.clone()).or_default();
                entry.count += 1;
                entry.total_us += dur_us;
            }
            EventKind::Gauge { name, value, .. } => {
                self.gauges.lock().unwrap().insert(name.clone(), *value);
            }
            EventKind::Series { name, .. } => {
                *self.series.lock().unwrap().entry(name.clone()).or_insert(0) += 1;
            }
            EventKind::SpanOpen { .. } | EventKind::CounterTotal { .. } => {}
        }
        Event {
            t_us: self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64,
            kind,
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            spans: self.spans.lock().unwrap().clone(),
            gauges: self.gauges.lock().unwrap().clone(),
            series: self.series.lock().unwrap().clone(),
        }
    }

    /// The counter totals as `CounterTotal` kinds, in name order.
    fn counter_totals(&self) -> Vec<EventKind> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, cell)| EventKind::CounterTotal {
                name: name.clone(),
                total: cell.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// An in-memory recorder: keeps every event, for tests and for building
/// manifests without a sink file.  Cloning shares the same storage.
#[derive(Clone, Default)]
pub struct MemoryRecorder {
    inner: Arc<MemoryInner>,
}

#[derive(Default)]
struct MemoryInner {
    core: Core,
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Every event recorded so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.lock().unwrap().clone()
    }

    /// Aggregate view (also available through [`Recorder::snapshot`];
    /// inherent so callers holding the concrete type need no trait
    /// import).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.core.snapshot()
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&self, name: &str) -> Arc<AtomicU64> {
        self.inner.core.counter(name)
    }

    fn emit(&self, kind: EventKind) {
        let event = self.inner.core.stamp(kind);
        self.inner.events.lock().unwrap().push(event);
    }

    fn next_span_id(&self) -> u64 {
        self.inner.core.next_span_id()
    }

    fn snapshot(&self) -> MetricsSnapshot {
        self.inner.core.snapshot()
    }

    fn flush(&self) {
        for kind in self.inner.core.counter_totals() {
            self.emit(kind);
        }
    }
}

/// A JSON-Lines sink: every event becomes one JSON object per line,
/// buffered through a shared writer.  [`Recorder::flush`] appends one
/// `counter` line per interned counter, then flushes the buffer.
pub struct JsonlRecorder {
    core: Core,
    sink: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlRecorder {
    /// Create (truncate) `path` and record into it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Record into an arbitrary writer (tests use a `Vec<u8>`).
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlRecorder {
            core: Core::default(),
            sink: Mutex::new(BufWriter::new(writer)),
        }
    }

    fn write_event(&self, event: &Event) {
        let mut line = event.to_json_line();
        line.push('\n');
        // A sink write failure must not take down the run it observes;
        // drop the event instead.
        let _ = self.sink.lock().unwrap().write_all(line.as_bytes());
    }
}

impl Recorder for JsonlRecorder {
    fn counter(&self, name: &str) -> Arc<AtomicU64> {
        self.core.counter(name)
    }

    fn emit(&self, kind: EventKind) {
        let event = self.core.stamp(kind);
        self.write_event(&event);
    }

    fn next_span_id(&self) -> u64 {
        self.core.next_span_id()
    }

    fn snapshot(&self) -> MetricsSnapshot {
        self.core.snapshot()
    }

    fn flush(&self) {
        for kind in self.core.counter_totals() {
            self.emit(kind);
        }
        let _ = self.sink.lock().unwrap().flush();
    }
}
