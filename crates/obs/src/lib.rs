//! # netsmith-obs
//!
//! The unified instrumentation layer of the NetSmith workspace: spans,
//! monotonic counters, gauges and embedded time-series, recorded through
//! a pluggable [`Recorder`] and threaded through every pipeline layer as
//! a cheap [`Obs`] handle.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled is (almost) free.**  The pipeline passes an [`Obs`]
//!    everywhere unconditionally; the no-op form holds no recorder, so
//!    every operation is one `Option` branch and hot loops pay nothing
//!    they can measure.  Hot counters are pre-resolved to [`Counter`]
//!    handles (a bare `Option<Arc<AtomicU64>>`) outside the loop.
//! 2. **Zero dependencies.**  This crate sits beneath the simulator and
//!    annealer, builds before the vendored shims, and writes its JSON
//!    lines with its own tiny printer (same dialect as the
//!    `netsmith-topo` codec, which the tests use to parse them back).
//! 3. **Aggregates are always available.**  Every recorder keeps running
//!    totals — counters, per-name span durations, last gauges, series
//!    counts — exposed as a [`MetricsSnapshot`] for tests and for the
//!    experiment runner's per-run manifest.
//!
//! Two recorders ship: [`MemoryRecorder`] (keeps every [`Event`];
//! tests assert on it) and [`JsonlRecorder`] (streams one JSON object
//! per line to a file or writer; `--obs run.jsonl` on the experiment CLI
//! installs one).
//!
//! ```
//! use netsmith_obs::{MemoryRecorder, Obs};
//!
//! let recorder = MemoryRecorder::new();
//! let obs = Obs::to(recorder.clone());
//!
//! let moves = obs.counter("moves.accepted"); // resolve outside the loop
//! {
//!     let mut span = obs.span("anneal.sa");
//!     for _ in 0..10 {
//!         moves.incr();
//!     }
//!     span.attr("evaluations", 10u64);
//! } // span closes (and is timed) here
//!
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter("moves.accepted"), 10);
//! assert_eq!(snapshot.span_count("anneal.sa"), 1);
//!
//! // The disabled handle accepts the same calls and does nothing.
//! let off = Obs::noop();
//! off.counter("moves.accepted").incr();
//! assert!(off.snapshot().is_none());
//! ```

mod event;
mod handle;
mod recorder;

pub use event::{Attr, AttrValue, Event, EventKind};
pub use handle::{Counter, Obs, Span};
pub use recorder::{JsonlRecorder, MemoryRecorder, MetricsSnapshot, Recorder, SpanStats};
