//! Event-sink round-trip and span-invariant tests.
//!
//! The JSONL sink is parsed back with the `netsmith-topo` JSON codec —
//! the same parser the experiment CLI uses to self-verify its `--obs`
//! artifacts — and reconstructed into events, which must match what was
//! emitted.

use netsmith_obs::{Attr, AttrValue, Event, EventKind, JsonlRecorder, MemoryRecorder, Obs};
use netsmith_topo::json::Json;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Reconstruct an event from its parsed JSON line.  Numbers carry no
/// type tag, so integer-valued attribute numbers come back as `U64` —
/// the emitters below therefore use non-integral floats where a float is
/// meant, which is also what every real probe produces.
fn event_from_json(json: &Json) -> Event {
    let t_us = json.require("t_us").unwrap().as_u64().unwrap();
    let name = || json.require("name").unwrap().as_str().unwrap().to_string();
    let attrs = || -> Vec<Attr> {
        match json.get("attrs") {
            None => Vec::new(),
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(key, value)| {
                    let value = match value {
                        Json::Str(s) => AttrValue::Str(s.clone()),
                        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => AttrValue::U64(*n as u64),
                        Json::Num(n) => AttrValue::F64(*n),
                        other => panic!("unexpected attr value {other:?}"),
                    };
                    Attr {
                        key: key.clone(),
                        value,
                    }
                })
                .collect(),
            Some(other) => panic!("attrs is not an object: {other:?}"),
        }
    };
    let kind = match json.require("ev").unwrap().as_str().unwrap() {
        "span_open" => EventKind::SpanOpen {
            id: json.require("id").unwrap().as_u64().unwrap(),
            parent: json.get("parent").map(|p| p.as_u64().unwrap()),
            name: name(),
        },
        "span_close" => EventKind::SpanClose {
            id: json.require("id").unwrap().as_u64().unwrap(),
            name: name(),
            dur_us: json.require("dur_us").unwrap().as_u64().unwrap(),
            attrs: attrs(),
        },
        "gauge" => EventKind::Gauge {
            name: name(),
            value: json.require("value").unwrap().as_f64().unwrap(),
            attrs: attrs(),
        },
        "series" => EventKind::Series {
            name: name(),
            attrs: attrs(),
            columns: json
                .require("columns")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(|c| c.as_str().unwrap().to_string())
                .collect(),
            rows: json
                .require("rows")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(|row| {
                    row.as_arr()
                        .unwrap()
                        .iter()
                        .map(|v| v.as_f64().unwrap())
                        .collect()
                })
                .collect(),
        },
        "counter" => EventKind::CounterTotal {
            name: name(),
            total: json.require("total").unwrap().as_u64().unwrap(),
        },
        other => panic!("unknown event tag {other:?}"),
    };
    Event { t_us, kind }
}

/// A `Write` impl sharing its buffer, so the test can read what the
/// recorder wrote without consuming the recorder.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_sink_round_trips_every_event_kind() {
    let buf = SharedBuf::default();
    let recorder = JsonlRecorder::to_writer(Box::new(buf.clone()));

    let obs = Obs::to(recorder);
    {
        let mut outer = obs.span("suite");
        {
            let mut inner = obs.span("figure \"fig06\"\n");
            inner.attr("rows", 42u64);
            inner.attr("seconds", 1.25);
            inner.attr("label", "coherence");
        }
        outer.attr("figures", 15u64);
    }
    obs.gauge("pool.threads", 4.5, vec![Attr::new("host", "ci")]);
    obs.series(
        "sim.epochs",
        vec![Attr::new("load", 0.35)],
        &["start_cycle", "accepted_flits", "mean_latency"],
        vec![vec![0.0, 120.0, 14.5], vec![500.0, 130.0, 15.25]],
    );
    obs.counter("cache.hits").add(3);
    obs.flush();

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let mut parsed = Vec::new();
    for line in text.lines() {
        let json = Json::parse(line).unwrap_or_else(|e| panic!("line {line:?}: {e:?}"));
        parsed.push(event_from_json(&json));
    }

    // Expected event stream, with timestamps/durations taken from the
    // parsed side (they are wall-clock) and everything else exact.
    let kinds: Vec<&EventKind> = parsed.iter().map(|e| &e.kind).collect();
    match kinds.as_slice() {
        [EventKind::SpanOpen {
            id: outer_id,
            parent: None,
            name: suite,
        }, EventKind::SpanOpen {
            id: inner_id,
            parent: Some(inner_parent),
            name: figure,
        }, EventKind::SpanClose {
            id: close_inner,
            attrs: inner_attrs,
            ..
        }, EventKind::SpanClose {
            id: close_outer,
            attrs: outer_attrs,
            ..
        }, EventKind::Gauge {
            name: gauge,
            value,
            attrs: gauge_attrs,
        }, EventKind::Series {
            name: series,
            attrs: series_attrs,
            columns,
            rows,
        }, EventKind::CounterTotal {
            name: counter,
            total,
        }] => {
            assert_eq!(suite, "suite");
            assert_eq!(figure, "figure \"fig06\"\n");
            assert_eq!(inner_parent, outer_id);
            assert_eq!(close_inner, inner_id);
            assert_eq!(close_outer, outer_id);
            assert_eq!(
                inner_attrs,
                &vec![
                    Attr::new("rows", 42u64),
                    Attr::new("seconds", 1.25),
                    Attr::new("label", "coherence"),
                ]
            );
            assert_eq!(outer_attrs, &vec![Attr::new("figures", 15u64)]);
            assert_eq!(gauge, "pool.threads");
            assert_eq!(*value, 4.5);
            assert_eq!(gauge_attrs, &vec![Attr::new("host", "ci")]);
            assert_eq!(series, "sim.epochs");
            assert_eq!(series_attrs, &vec![Attr::new("load", 0.35)]);
            assert_eq!(columns, &["start_cycle", "accepted_flits", "mean_latency"]);
            assert_eq!(
                rows,
                &vec![vec![0.0, 120.0, 14.5], vec![500.0, 130.0, 15.25]]
            );
            assert_eq!(counter, "cache.hits");
            assert_eq!(*total, 3);
        }
        other => panic!("unexpected event stream: {other:#?}"),
    }

    // Timestamps never go backwards within the single-threaded stream.
    for pair in parsed.windows(2) {
        assert!(pair[0].t_us <= pair[1].t_us);
    }
}

#[test]
fn span_closes_match_opens_and_durations_are_consistent() {
    let recorder = MemoryRecorder::new();
    let obs = Obs::to(recorder.clone());

    {
        let _a = obs.span("a");
        {
            let _b = obs.span("b");
            let _c = obs.span("c");
        }
        let _d = obs.span("d");
    }

    let events = recorder.events();
    let mut open: HashMap<u64, &str> = HashMap::new();
    let mut opened = 0;
    let mut closed = 0;
    for event in &events {
        match &event.kind {
            EventKind::SpanOpen { id, name, parent } => {
                // A parent must still be open when its child opens.
                if let Some(parent) = parent {
                    assert!(open.contains_key(parent), "dangling parent {parent}");
                }
                assert!(open.insert(*id, name).is_none(), "duplicate open {id}");
                opened += 1;
            }
            EventKind::SpanClose { id, name, .. } => {
                let opened_name = open.remove(id).unwrap_or_else(|| {
                    panic!("close without open: {id} ({name})");
                });
                assert_eq!(opened_name, name);
                closed += 1;
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(opened, 4);
    assert_eq!(closed, 4);
    assert!(open.is_empty(), "spans left open: {open:?}");

    let snapshot = recorder.snapshot();
    for name in ["a", "b", "c", "d"] {
        assert_eq!(snapshot.span_count(name), 1);
    }
}

#[test]
fn noop_handle_accepts_everything_and_records_nothing() {
    let obs = Obs::noop();
    assert!(!obs.enabled());
    let counter = obs.counter("x");
    counter.add(10);
    counter.incr();
    obs.add("y", 5);
    obs.gauge("g", 1.0, vec![]);
    obs.series("s", vec![], &["c"], vec![vec![1.0]]);
    let mut span = obs.span("z");
    span.attr("k", 1u64);
    drop(span);
    obs.flush();
    assert!(obs.snapshot().is_none());
}

#[test]
fn counters_aggregate_across_clones_and_threads() {
    let recorder = MemoryRecorder::new();
    let obs = Obs::to(recorder.clone());
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let obs = obs.clone();
            std::thread::spawn(move || {
                let counter = obs.counter("work.items");
                for _ in 0..1000 {
                    counter.incr();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(recorder.snapshot().counter("work.items"), 4000);
}
