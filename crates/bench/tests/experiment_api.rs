//! Integration tests for the experiment API port:
//!
//! * Golden headers — every figure's CSV schema is column-compatible with
//!   the original hand-rolled binaries.
//! * Cache regression — two figures sharing an `NS-LatOp` candidate
//!   trigger exactly one discovery (counted via the obs `cache.*`
//!   counters) and see bit-identical topologies.

use netsmith_bench::figures;
use netsmith_exp::{
    Assertion, CandidateSpec, Cell, ExperimentSpec, Figure, ObjectiveSpec, Row, RunProfile, Runner,
    SuiteCache,
};
use netsmith_obs::{MemoryRecorder, Obs};
use std::sync::Arc;

/// The CSV headers of the original figure binaries, column for column.
const GOLDEN_HEADERS: &[(&str, &str)] = &[
    (
        "fig01_scatter",
        "topology,class,routing,avg_hops,expected_saturation_flits_per_node_cycle,cut_bound,occupancy_bound",
    ),
    // fig04 prints raw Graphviz DOT, not CSV.
    ("fig04_topology", "dot"),
    (
        "fig05_solver_progress",
        "layout,class,elapsed_ms,incumbent_avg_hops,bound_avg_hops,gap",
    ),
    (
        "fig06_synthetic",
        "traffic,class,topology,routing,offered,accepted_pkts_per_ns,latency_ns,saturated",
    ),
    (
        "fig07_routing_isolation",
        "topology,routing,measured_saturation_flits,expected_saturation_flits,cut_bound_flits,occupancy_bound_flits",
    ),
    (
        "fig08_parsec",
        "benchmark,class,topology,speedup_vs_mesh,packet_latency_reduction_vs_mesh",
    ),
    (
        "fig09_power_area",
        "topology,class,avg_link_utilization,static_power_rel_mesh,dynamic_power_rel_mesh,total_power_rel_mesh,router_area_rel_mesh,wire_area_rel_mesh,total_area_rel_mesh",
    ),
    (
        "fig10_shuffle",
        "class,topology,routing,offered,accepted_pkts_per_ns,latency_ns,saturated",
    ),
    (
        "fig11_scale48",
        "class,topology,routing,offered,accepted_pkts_per_ns,latency_ns,saturated",
    ),
    (
        "fig12_energy",
        "class,topology,routing,pattern,load,policy,static_mw,dynamic_mw,gated_savings_mw,total_mw,gated_links,energy_per_flit_pj,edp_pj_ns,latency_cycles,latency_ns,routable",
    ),
    (
        "fig13_resilience",
        "class,topology,routing,pattern,fault_set,scenarios,coverage,unreachable_pairs,baseline_sat,worst_sat,mean_sat,worst_retention,mean_latency_inflation,worst_latency_inflation",
    ),
    (
        "fig15_trace",
        "workload,class,topology,routing,offered,injected,delivered_fraction,latency_ns,p95_ns,p99_ns,saturated",
    ),
    (
        "fig16_serving",
        "class,topology,routing,policy,epochs,faults,repairs_ok,downtime_epochs,availability,pj_per_flit,low_load_pj_per_flit,p95_cycles,p99_cycles,p95_ns,p99_ns",
    ),
    (
        "fig14_pareto",
        "w_lat,w_energy,w_fault,topology,links,avg_hops,lat_score,energy_score,fault_score,critical_links,min_dir_degree,on_front",
    ),
    (
        "table02_metrics",
        "routers,name,class,routers,links,diameter,avg_hops,bisection_bw,sparsest_cut,cut_bound,occupancy_bound",
    ),
    (
        "ablation_symmetry",
        "class,objective,links,avg_hops_asymmetric,avg_hops_symmetric,hops_penalty_pct,cut_asymmetric,cut_symmetric",
    ),
];

#[test]
fn figure_headers_match_the_golden_schemas() {
    let profile = RunProfile::quick();
    for (name, build) in figures::ALL {
        let figure = build(&profile);
        let golden = GOLDEN_HEADERS
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from the golden header table"))
            .1;
        assert_eq!(
            figure.header, golden,
            "{name}: CSV schema drifted from the original binary"
        );
        // Full and quick specs share one header.
        let full = build(&RunProfile::default());
        assert_eq!(full.header, figure.header, "{name}: quick header differs");
    }
    assert_eq!(figures::ALL.len(), GOLDEN_HEADERS.len());
}

/// A minimal figure whose only candidate is NS-LatOp on the medium class.
fn latop_figure(name: &str) -> Figure {
    let mut spec = ExperimentSpec::new(name);
    spec.classes = vec![netsmith::topo::LinkClass::Medium];
    spec.candidates = vec![CandidateSpec::synth(ObjectiveSpec::LatOp)];
    spec.assertions = vec![Assertion::MinRows { count: 1 }];
    Figure::new(spec, "topology,links", |cell: &Cell<'_>| {
        vec![Row::new()
            .str(cell.candidate.topology.name())
            .int(cell.candidate.topology.num_links() as i64)]
    })
}

#[test]
fn shared_candidates_are_discovered_exactly_once_across_figures() {
    let recorder = MemoryRecorder::new();
    let obs = Obs::to(recorder.clone());
    let cache = SuiteCache::new().with_obs(obs.clone());
    let profile = RunProfile {
        evals: 400,
        workers: 1,
        ..RunProfile::default()
    };
    let runner = Runner::new(profile, &cache).with_obs(obs);

    // Two different figure specs referencing the same NS-LatOp candidate.
    let first = latop_figure("first_latop_figure");
    let second = latop_figure("second_latop_figure");
    let first_output = runner.run(&first).unwrap();
    let second_output = runner.run(&second).unwrap();
    runner.verify(&first, &first_output).unwrap();
    runner.verify(&second, &second_output).unwrap();

    // Exactly one discovery, observed through the obs counters.
    let snapshot = recorder.snapshot();
    assert_eq!(snapshot.counter("cache.misses"), 1, "one real discovery");
    assert_eq!(snapshot.counter("cache.hits"), 1, "second figure hits");
    assert_eq!(cache.discoveries(), 1);
    assert_eq!(cache.references(), 2);
    // One cell span per figure run, one discovery span in total.
    assert_eq!(snapshot.span_count("cell"), 2);
    assert_eq!(snapshot.span_count("cache.discover"), 1);

    // Both result sets carry the bit-identical topology.
    let a = &first_output.candidates[0].topology;
    let b = &second_output.candidates[0].topology;
    assert!(Arc::ptr_eq(a, b) || a.adjacency() == b.adjacency());
    assert_eq!(
        a.adjacency(),
        b.adjacency(),
        "topologies must be bit-identical"
    );
    assert_eq!(first_output.rows, second_output.rows);
}
