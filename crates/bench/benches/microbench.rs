//! Criterion microbenchmarks for the computational kernels of the
//! reproduction: LP/MILP solving, analytical metrics, path enumeration,
//! MCLB routing, VC allocation, the annealing engine and the network
//! simulator.  Sample sizes are kept small so `cargo bench --workspace`
//! finishes in minutes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netsmith::gen::anneal::{anneal, AnnealConfig};
use netsmith::gen::terms::CutEval;
use netsmith::gen::{GenerationProblem, Objective};
use netsmith::prelude::*;
use netsmith::topo::analysis::TopoAnalysis;
use netsmith_lp::{Cmp, LinExpr, MilpSolver, Model, Sense};
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
use netsmith_sim::{NetworkSim, SimConfig};
use netsmith_topo::{cuts, metrics};
use std::time::Duration;

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp");
    group.sample_size(20);
    group.bench_function("simplex_20var_lp", |b| {
        b.iter_batched(
            || {
                let mut m = Model::new(Sense::Maximize);
                let vars: Vec<_> = (0..20)
                    .map(|i| m.add_continuous(1.0 + (i % 7) as f64, format!("x{i}")))
                    .collect();
                for r in 0..12 {
                    let expr = LinExpr::from_terms(
                        vars.iter()
                            .enumerate()
                            .map(|(i, &v)| (v, 1.0 + ((i * r) % 5) as f64)),
                    );
                    m.add_constr(expr, Cmp::Le, 40.0 + r as f64);
                }
                m
            },
            |m| netsmith_lp::simplex::solve_lp(&m).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("milp_knapsack_12items", |b| {
        b.iter_batched(
            || {
                let mut m = Model::new(Sense::Maximize);
                let vars: Vec<_> = (0..12)
                    .map(|i| m.add_binary(((i * 13) % 17 + 1) as f64, format!("b{i}")))
                    .collect();
                let expr = LinExpr::from_terms(
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| (v, ((i * 7) % 11 + 1) as f64)),
                );
                m.add_constr(expr, Cmp::Le, 30.0);
                m
            },
            |m| MilpSolver::default().solve(&m).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_large(&layout);
    let mut group = c.benchmark_group("metrics");
    group.sample_size(30);
    group.bench_function("average_hops_20r", |b| {
        b.iter(|| metrics::average_hops(&kite))
    });
    group.bench_function("sparsest_cut_exhaustive_20r", |b| {
        b.iter(|| cuts::sparsest_cut_exhaustive(&kite))
    });
    group.bench_function("bisection_bandwidth_20r", |b| {
        b.iter(|| cuts::bisection_bandwidth(&kite))
    });
    let big = expert::folded_torus(&Layout::noi_8x6());
    group.bench_function("sparsest_cut_heuristic_48r", |b| {
        b.iter(|| cuts::sparsest_cut_heuristic(&big, 8, 1))
    });
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_large(&layout);
    let paths = all_shortest_paths(&kite);
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    group.bench_function("all_shortest_paths_20r", |b| {
        b.iter(|| all_shortest_paths(&kite))
    });
    group.bench_function("mclb_route_20r", |b| {
        b.iter(|| mclb_route(&paths, &MclbConfig::default()))
    });
    let table = mclb_route(&paths, &MclbConfig::default());
    group.bench_function("vc_allocation_20r", |b| {
        b.iter(|| allocate_vcs(&table, 6, 3).unwrap())
    });
    group.finish();
}

/// Objective-evaluation throughput: the from-scratch path (fresh all-pairs
/// BFS per candidate, what every annealer move cost before the cached
/// framework) vs the delta path (incremental analysis update for a
/// rewire-shaped move, what the annealer pays now).  Evaluations/sec =
/// 1 / reported time.
fn bench_objective_eval(c: &mut Criterion) {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_large(&layout);
    // A representative rewire: remove one existing link, add one valid
    // missing link (fixed endpoints keep the benchmark deterministic).
    let (ra, rb) = kite.links().next().unwrap();
    let (aa, ab) = (0usize, 6usize); // (1,1) span, absent from Kite-Large
    assert!(!kite.has_link(aa, ab));
    let mut moved = kite.clone();
    moved.remove_link(ra, rb);
    moved.add_link(aa, ab);
    let removed = [(ra, rb)];
    let added = [(aa, ab)];

    let objectives: [(&str, Objective); 3] = [
        ("latop", Objective::LatOp),
        ("faultop", Objective::fault_op_default()),
        (
            "composite3",
            Objective::composite([
                (1.0, netsmith::gen::Term::Hops),
                (1.0, netsmith::gen::Term::EnergyProxy { edp_weight: 5.0 }),
                (40.0, netsmith::gen::Term::SpareCapacity),
            ]),
        ),
    ];
    let mut group = c.benchmark_group("objective_eval");
    group.sample_size(40);
    for (label, objective) in &objectives {
        group.bench_function(&format!("{label}_scratch"), |b| {
            b.iter(|| objective.evaluate(&moved).score)
        });
        let base = TopoAnalysis::new(&kite);
        group.bench_function(&format!("{label}_delta"), |b| {
            b.iter(|| {
                let analysis = base.after_move(&moved, &removed, &added);
                objective
                    .evaluate_analysis(&moved, &analysis, CutEval::Exact)
                    .score
            })
        });
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    let problem = GenerationProblem::new(Layout::noi_4x5(), LinkClass::Medium, Objective::LatOp);
    group.bench_function("anneal_2000_evals_latop", |b| {
        b.iter(|| {
            anneal(
                &problem,
                &AnnealConfig {
                    max_evaluations: 2_000,
                    ..AnnealConfig::quick()
                },
                0.0,
                &netsmith_obs::Obs::noop(),
            )
        })
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_medium(&layout);
    let paths = all_shortest_paths(&kite);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 3).unwrap();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("sim_5000_cycles_midload", |b| {
        let config = SimConfig {
            warmup_cycles: 500,
            measure_cycles: 4_000,
            drain_cycles: 500,
            ..SimConfig::default()
        };
        let sim = NetworkSim::builder(&kite, &table)
            .vcs(&alloc)
            .pattern(TrafficPattern::UniformRandom)
            .config(config)
            .compile();
        b.iter(|| sim.run(0.3))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lp,
    bench_metrics,
    bench_routing,
    bench_objective_eval,
    bench_generation,
    bench_simulator
);
criterion_main!(benches);
