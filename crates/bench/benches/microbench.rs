//! Criterion microbenchmarks for the computational kernels of the
//! reproduction: LP/MILP solving, analytical metrics, path enumeration,
//! MCLB routing, VC allocation, the annealing engine and the network
//! simulator.  Sample sizes are kept small so `cargo bench --workspace`
//! finishes in minutes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netsmith::gen::anneal::{anneal, AnnealConfig};
use netsmith::gen::terms::CutEval;
use netsmith::gen::{GenerationProblem, Objective};
use netsmith::prelude::*;
use netsmith::topo::analysis::TopoAnalysis;
use netsmith_lp::{Cmp, LinExpr, MilpSolver, Model, Sense};
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
use netsmith_sim::{InjectionSchedule, NetworkSim, SimConfig};
use netsmith_topo::{cuts, metrics};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::time::Duration;

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp");
    group.sample_size(20);
    group.bench_function("simplex_20var_lp", |b| {
        b.iter_batched(
            || {
                let mut m = Model::new(Sense::Maximize);
                let vars: Vec<_> = (0..20)
                    .map(|i| m.add_continuous(1.0 + (i % 7) as f64, format!("x{i}")))
                    .collect();
                for r in 0..12 {
                    let expr = LinExpr::from_terms(
                        vars.iter()
                            .enumerate()
                            .map(|(i, &v)| (v, 1.0 + ((i * r) % 5) as f64)),
                    );
                    m.add_constr(expr, Cmp::Le, 40.0 + r as f64);
                }
                m
            },
            |m| netsmith_lp::simplex::solve_lp(&m).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("milp_knapsack_12items", |b| {
        b.iter_batched(
            || {
                let mut m = Model::new(Sense::Maximize);
                let vars: Vec<_> = (0..12)
                    .map(|i| m.add_binary(((i * 13) % 17 + 1) as f64, format!("b{i}")))
                    .collect();
                let expr = LinExpr::from_terms(
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| (v, ((i * 7) % 11 + 1) as f64)),
                );
                m.add_constr(expr, Cmp::Le, 30.0);
                m
            },
            |m| MilpSolver::default().solve(&m).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_large(&layout);
    let mut group = c.benchmark_group("metrics");
    group.sample_size(30);
    group.bench_function("average_hops_20r", |b| {
        b.iter(|| metrics::average_hops(&kite))
    });
    group.bench_function("sparsest_cut_exhaustive_20r", |b| {
        b.iter(|| cuts::sparsest_cut_exhaustive(&kite))
    });
    group.bench_function("bisection_bandwidth_20r", |b| {
        b.iter(|| cuts::bisection_bandwidth(&kite))
    });
    let big = expert::folded_torus(&Layout::noi_8x6());
    group.bench_function("sparsest_cut_heuristic_48r", |b| {
        b.iter(|| cuts::sparsest_cut_heuristic(&big, 8, 1))
    });
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_large(&layout);
    let paths = all_shortest_paths(&kite);
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    group.bench_function("all_shortest_paths_20r", |b| {
        b.iter(|| all_shortest_paths(&kite))
    });
    group.bench_function("mclb_route_20r", |b| {
        b.iter(|| mclb_route(&paths, &MclbConfig::default()))
    });
    let table = mclb_route(&paths, &MclbConfig::default());
    group.bench_function("vc_allocation_20r", |b| {
        b.iter(|| allocate_vcs(&table, 6, 3).unwrap())
    });
    group.finish();
}

/// Objective-evaluation throughput: the from-scratch path (fresh all-pairs
/// BFS per candidate, what every annealer move cost before the cached
/// framework) vs the delta path (incremental analysis update for a
/// rewire-shaped move, what the annealer pays now).  Evaluations/sec =
/// 1 / reported time.
fn bench_objective_eval(c: &mut Criterion) {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_large(&layout);
    // A representative rewire: remove one existing link, add one valid
    // missing link (fixed endpoints keep the benchmark deterministic).
    let (ra, rb) = kite.links().next().unwrap();
    let (aa, ab) = (0usize, 6usize); // (1,1) span, absent from Kite-Large
    assert!(!kite.has_link(aa, ab));
    let mut moved = kite.clone();
    moved.remove_link(ra, rb);
    moved.add_link(aa, ab);
    let removed = [(ra, rb)];
    let added = [(aa, ab)];

    let objectives: [(&str, Objective); 3] = [
        ("latop", Objective::LatOp),
        ("faultop", Objective::fault_op_default()),
        (
            "composite3",
            Objective::composite([
                (1.0, netsmith::gen::Term::Hops),
                (1.0, netsmith::gen::Term::EnergyProxy { edp_weight: 5.0 }),
                (40.0, netsmith::gen::Term::SpareCapacity),
            ]),
        ),
    ];
    let mut group = c.benchmark_group("objective_eval");
    group.sample_size(40);
    for (label, objective) in &objectives {
        group.bench_function(&format!("{label}_scratch"), |b| {
            b.iter(|| objective.evaluate(&moved).score)
        });
        let base = TopoAnalysis::new(&kite);
        group.bench_function(&format!("{label}_delta"), |b| {
            b.iter(|| {
                let analysis = base.after_move(&moved, &removed, &added);
                objective
                    .evaluate_analysis(&moved, &analysis, CutEval::Exact)
                    .score
            })
        });
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    let problem = GenerationProblem::new(Layout::noi_4x5(), LinkClass::Medium, Objective::LatOp);
    group.bench_function("anneal_2000_evals_latop", |b| {
        b.iter(|| {
            anneal(
                &problem,
                &AnnealConfig {
                    max_evaluations: 2_000,
                    ..AnnealConfig::quick()
                },
                0.0,
                &netsmith_obs::Obs::noop(),
            )
        })
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_medium(&layout);
    let paths = all_shortest_paths(&kite);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 3).unwrap();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("sim_5000_cycles_midload", |b| {
        let config = SimConfig {
            warmup_cycles: 500,
            measure_cycles: 4_000,
            drain_cycles: 500,
            ..SimConfig::default()
        };
        let sim = NetworkSim::builder(&kite, &table)
            .vcs(&alloc)
            .pattern(TrafficPattern::UniformRandom)
            .config(config)
            .compile();
        b.iter(|| sim.run(0.3))
    });
    group.finish();
}

/// The injection-path rework, head to head: the pre-rework draw
/// structure (one Bernoulli coin per source per cycle, modelled here
/// with the same RNG and draw shape as the legacy engine loop) vs the
/// skip-sampled schedule both engines now consume (geometric
/// inter-arrival gaps resolved against an exact-integer threshold
/// table; idle cycles draw nothing and the consumer jumps straight
/// between due cycles).  Both sides cover an identical
/// 12,000-cycle × 20-source horizon at the same offered load.
fn bench_injection_path(c: &mut Criterion) {
    let config = SimConfig::default(); // 2000 warmup + 10000 measure
    let layout = Layout::noi_4x5();
    let alive = vec![true; 20];
    let pattern = TrafficPattern::UniformRandom;
    let load = 0.3; // flits/node/cycle -> p = 0.06 per source per cycle
    let horizon = config.warmup_cycles + config.measure_cycles;
    let p = load / config.average_flits();

    let mut group = c.benchmark_group("injection_path");
    group.sample_size(40);
    group.bench_function("coin_loop_per_cycle", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(config.seed);
            let mut flits = 0u64;
            for _cycle in 0..horizon {
                for src in 0..alive.len() {
                    let coin = (rng.next_u64() >> 11) as f64 * 2f64.powi(-53);
                    if coin >= p {
                        continue;
                    }
                    if let Some(dst) = pattern.sample_destination(&layout, src, &mut rng) {
                        let class = (rng.next_u64() >> 11) as f64 * 2f64.powi(-53);
                        flits += if class < config.data_fraction { 9 } else { 1 };
                        std::hint::black_box(dst);
                    }
                }
            }
            flits
        })
    });
    group.bench_function("skip_sampling_schedule", |b| {
        b.iter(|| {
            let mut sched = InjectionSchedule::for_run(&config, load, &alive);
            let mut flits = 0u64;
            // Jump straight from due cycle to due cycle, exactly like the
            // compiled engine's idle-stretch jump.
            while let Some(due) = sched.next_due() {
                while let Some(ev) = sched.pop_due(due, &pattern, &layout, &alive) {
                    flits += ev.flits as u64;
                }
            }
            flits
        })
    });
    group.finish();
}

/// The candidate-scan rework at engine granularity: the compiled engine
/// walks packed active-link bitmaps word-by-word with precomputed
/// tie-break keys (batched), the reference engine re-scans every link's
/// VC queues each cycle (scalar).  Same network, same config, same
/// high-load point — where arbitration dominates the cycle budget — so
/// the ratio is the scan rework's payoff.
fn bench_candidate_scan(c: &mut Criterion) {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_medium(&layout);
    let paths = all_shortest_paths(&kite);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 3).unwrap();
    let sim = NetworkSim::builder(&kite, &table)
        .vcs(&alloc)
        .pattern(TrafficPattern::UniformRandom)
        .config(SimConfig::quick())
        .compile();
    let mut group = c.benchmark_group("candidate_scan");
    group.sample_size(10);
    group.bench_function("batched_compiled_engine", |b| b.iter(|| sim.run(0.6)));
    group.bench_function("scalar_reference_engine", |b| {
        b.iter(|| sim.run_reference(0.6))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lp,
    bench_metrics,
    bench_routing,
    bench_objective_eval,
    bench_generation,
    bench_simulator,
    bench_injection_path,
    bench_candidate_scan
);
criterion_main!(benches);
