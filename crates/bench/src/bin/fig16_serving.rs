//! Thin wrapper: runs the `fig16_serving` experiment spec (see
//! `netsmith_bench::figures::fig16_serving`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig16_serving::figure);
}
