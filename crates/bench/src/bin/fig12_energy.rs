//! Figure 12 (beyond the paper): energy-policy comparison across expert
//! and machine-discovered topologies under measured traffic.
//!
//! For every topology × traffic pattern × operating load, the harness
//! measures per-link activity with the cycle-driven simulator and then
//! evaluates three energy-management policies on that measurement:
//! always-on (baseline), link sleep (power-gate under-utilized links,
//! verified to keep the gated sub-topology connected and deadlock-free)
//! and DVFS (clock/voltage scaling to the measured load).  The NetSmith
//! line-up gains an `NS-EnergyOp` topology synthesized with the energy
//! objective.
//!
//! `--quick` restricts the sweep to the medium-class line-up with reduced
//! simulation windows and a small discovery budget (the CI smoke
//! configuration); the full run sweeps all three classes.
//!
//! The binary asserts the headline property before exiting: at the lowest
//! load, link sleep burns strictly less total power than always-on on
//! every configuration, and every gated configuration remains routable.

use netsmith::energy::{standard_policies, EnergyConfig};
use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_bench::{evals_budget, prepare, workers, HARNESS_SEED};
use netsmith_system::parsec_suite;
use netsmith_topo::Topology;

/// The idle threshold used by the link-sleep policy: links busy less than
/// this fraction of the measurement window are gating candidates.
const IDLE_THRESHOLD: f64 = 0.12;

fn discover_energyop(layout: &Layout, class: LinkClass, quick: bool) -> Topology {
    NetSmith::new(layout.clone(), class)
        .objective(Objective::EnergyOp { edp_weight: 25.0 })
        .evaluations(if quick { 1_500 } else { evals_budget() })
        .workers(if quick { 2 } else { workers() })
        .seed(HARNESS_SEED ^ 0xE7E9)
        .discover()
        .topology
}

fn lineup_for_class(
    layout: &Layout,
    class: LinkClass,
    quick: bool,
) -> Vec<(Topology, RoutingScheme)> {
    let mut lineup: Vec<(Topology, RoutingScheme)> = expert::baselines_for_class(layout, class)
        .into_iter()
        .map(|t| (t, RoutingScheme::Ndbt))
        .collect();
    lineup.push((discover_energyop(layout, class, quick), RoutingScheme::Mclb));
    lineup
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let layout = Layout::noi_4x5();
    let energy_cfg = EnergyConfig::default();
    // The low point must be genuinely idle (sparse topologies keep their
    // few links busy even at 5% load); the high point sits below
    // saturation for every topology in the line-up.
    let loads = [0.02, 0.3];

    let classes: &[LinkClass] = if quick {
        &[LinkClass::Medium]
    } else {
        &LinkClass::STANDARD
    };

    // Traffic: uniform and shuffle everywhere, plus PARSEC-derived hotspot
    // mixtures (the least and most network-bound benchmarks) in the full run.
    let mut patterns: Vec<(String, TrafficPattern)> = vec![
        ("uniform_random".into(), TrafficPattern::UniformRandom),
        ("shuffle".into(), TrafficPattern::Shuffle),
    ];
    if !quick {
        for w in parsec_suite() {
            if w.name == "swaptions" || w.name == "canneal" {
                patterns.push((format!("parsec_{}", w.name), w.traffic_pattern(&layout)));
            }
        }
    }

    println!(
        "class,topology,routing,pattern,load,{}",
        EnergyReport::csv_header()
    );
    // (label, load, policy, total_mw, routable) rows of the lowest load,
    // kept for the exit assertion.
    let mut low_load_rows: Vec<(String, String, f64, bool)> = Vec::new();

    for &class in classes {
        for (topo, scheme) in lineup_for_class(&layout, class, quick) {
            let network = prepare(&topo, scheme);
            let mut sim_cfg = network.sim_config();
            if quick {
                sim_cfg.warmup_cycles = 500;
                sim_cfg.measure_cycles = 3_000;
                sim_cfg.drain_cycles = 1_500;
            }
            for (pattern_name, pattern) in &patterns {
                for &load in &loads {
                    let report = network.measure(pattern.clone(), &sim_cfg, load);
                    for policy in standard_policies(IDLE_THRESHOLD) {
                        let energy =
                            network.energy_report(policy.as_ref(), &sim_cfg, &report, &energy_cfg);
                        println!(
                            "{},{},{},{},{:.2},{}",
                            class.name(),
                            topo.name(),
                            scheme.label(),
                            pattern_name,
                            load,
                            energy.to_csv_row()
                        );
                        if load == loads[0] {
                            low_load_rows.push((
                                format!("{}/{}/{pattern_name}", class.name(), topo.name()),
                                energy.policy.clone(),
                                energy.total_mw(),
                                energy.routable,
                            ));
                        }
                    }
                }
                eprintln!(
                    "# {}/{} under {pattern_name}: measured activity drives the policies",
                    class.name(),
                    network.label()
                );
            }
        }
    }

    // Headline assertion: at the lowest load, link sleep strictly beats
    // always-on on every configuration and every gated configuration is
    // routable + deadlock-free.
    let mut checked = 0usize;
    for (label, policy, sleep_total, routable) in low_load_rows
        .iter()
        .filter(|(_, p, _, _)| p.starts_with("link_sleep"))
        .map(|(l, p, t, r)| (l, p, *t, *r))
    {
        let always_total = low_load_rows
            .iter()
            .find(|(l, p, _, _)| l == label && p == "always_on")
            .map(|(_, _, t, _)| *t)
            .unwrap_or_else(|| panic!("{label}: missing always-on baseline"));
        assert!(
            routable,
            "{label}: gated configuration is not routable ({policy})"
        );
        assert!(
            sleep_total < always_total,
            "{label}: link sleep {sleep_total:.3} mW is not below always-on {always_total:.3} mW"
        );
        checked += 1;
    }
    eprintln!(
        "# verified on {checked} configurations: link sleep < always-on at {} flits/node/cycle, \
         all gated sub-topologies routable and deadlock-free",
        loads[0]
    );
}
