//! Thin wrapper: runs the `fig12_energy` experiment spec (see
//! `netsmith_bench::figures::fig12_energy`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig12_energy::figure);
}
