//! Figure 6: synthetic-traffic latency/throughput curves for the 20-router
//! (4x5) NoIs — (a) coherence traffic (uniform random, 50/50 control/data
//! packets) and (b) memory traffic (requests to the memory-controller
//! routers).  Expert topologies use NDBT routing, NetSmith topologies use
//! MCLB, every NoI is clocked per its link-length class.

use netsmith::prelude::*;
use netsmith_bench::{class_lineup, load_grid, prepare};

fn main() {
    let layout = Layout::noi_4x5();
    let loads = load_grid();
    println!("traffic,class,topology,routing,offered,accepted_pkts_per_ns,latency_ns,saturated");
    for (traffic_label, pattern) in [
        ("coherence", TrafficPattern::UniformRandom),
        ("memory", TrafficPattern::Memory),
    ] {
        for class in LinkClass::STANDARD {
            for (topo, scheme) in class_lineup(&layout, class) {
                let network = prepare(&topo, scheme);
                let config = network.sim_config();
                let curve = network.sweep(pattern.clone(), &config, &loads);
                for p in &curve.points {
                    println!(
                        "{},{},{},{},{:.3},{:.4},{:.2},{}",
                        traffic_label,
                        class.name(),
                        topo.name(),
                        scheme.label(),
                        p.offered,
                        p.accepted_packets_per_ns,
                        p.latency_ns,
                        p.saturated
                    );
                }
                eprintln!(
                    "# {traffic_label}/{}/{}: saturation {:.3} packets/node/ns",
                    class.name(),
                    network.label(),
                    curve.saturation_packets_per_ns(&config)
                );
            }
        }
    }
}
