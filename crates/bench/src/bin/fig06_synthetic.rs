//! Thin wrapper: runs the `fig06_synthetic` experiment spec (see
//! `netsmith_bench::figures::fig06_synthetic`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig06_synthetic::figure);
}
