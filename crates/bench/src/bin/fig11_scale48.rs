//! Thin wrapper: runs the `fig11_scale48` experiment spec (see
//! `netsmith_bench::figures::fig11_scale48`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig11_scale48::figure);
}
