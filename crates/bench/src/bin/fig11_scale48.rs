//! Figure 11: synthetic uniform-random traffic on the 48-router (8x6)
//! interposer — the scalability study.  Expert topologies that have a
//! published scaling rule are extended to 8x6; NetSmith topologies are
//! regenerated for the larger layout.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_bench::{discover, load_grid, prepare};

fn main() {
    let layout = Layout::noi_8x6();
    let loads = load_grid();

    println!("class,topology,routing,offered,accepted_pkts_per_ns,latency_ns,saturated");
    for class in LinkClass::STANDARD {
        // Scalable expert baselines (Kite-Large does not scale to even
        // column counts, LPBT fails to produce connected graphs — the paper
        // makes the same exclusions).
        let mut lineup: Vec<(netsmith_topo::Topology, RoutingScheme)> = Vec::new();
        match class {
            LinkClass::Small => {
                lineup.push((expert::mesh(&layout), RoutingScheme::Ndbt));
                lineup.push((expert::kite_small(&layout), RoutingScheme::Ndbt));
            }
            LinkClass::Medium => {
                lineup.push((expert::folded_torus(&layout), RoutingScheme::Ndbt));
                lineup.push((expert::kite_medium(&layout), RoutingScheme::Ndbt));
            }
            LinkClass::Large => {
                lineup.push((expert::butter_donut(&layout), RoutingScheme::Ndbt));
                lineup.push((expert::double_butterfly(&layout), RoutingScheme::Ndbt));
            }
            LinkClass::Custom(_) => {}
        }
        let ns = discover(&layout, class, Objective::LatOp);
        lineup.push((ns.topology, RoutingScheme::Mclb));

        for (topo, scheme) in lineup {
            let network = prepare(&topo, scheme);
            let config = network.sim_config();
            let curve = network.sweep(TrafficPattern::UniformRandom, &config, &loads);
            for p in &curve.points {
                println!(
                    "{},{},{},{:.3},{:.4},{:.2},{}",
                    class.name(),
                    topo.name(),
                    scheme.label(),
                    p.offered,
                    p.accepted_packets_per_ns,
                    p.latency_ns,
                    p.saturated
                );
            }
            eprintln!(
                "# 48-router {}/{}: saturation {:.3} packets/node/ns",
                class.name(),
                network.label(),
                curve.saturation_packets_per_ns(&config)
            );
        }
    }
}
