//! The experiment suite: runs every registered figure spec against one
//! shared candidate-discovery cache and fails on any declared assertion.
//! `--quick` is the CI smoke configuration (< 60 s); the final stderr
//! summary logs the suite-wide cache effectiveness.

fn main() {
    netsmith_exp::cli::run_suite(netsmith_bench::figures::ALL);
}
