//! Thin wrapper: runs the `fig14_pareto` experiment spec (see
//! `netsmith_bench::figures::fig14_pareto`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig14_pareto::figure);
}
