//! Figure 14 (beyond the paper): Pareto synthesis over latency × energy ×
//! resilience.
//!
//! The composable objective framework makes multi-criteria synthesis a
//! first-class workload: any non-negative weighting of objective terms is
//! itself an objective.  This harness sweeps a grid of weight vectors
//! `(w_lat, w_energy, w_fault)` over the three single-objective axes
//! (`LatOp` hops, the `EnergyOp` static-power + EDP proxy, and `FaultOp`'s
//! hops + articulation penalty − spare-capacity reward), synthesizes one
//! topology per weight point with the annealer's cached/delta evaluation
//! path, scores every discovered topology on all three axes, and prints
//! the resulting trade-off surface as CSV with a non-dominated (Pareto
//! front) flag per row.
//!
//! Mixed weight points normalize each axis by the mesh baseline's score so
//! a unit of weight means roughly "one mesh" on every axis; pure corner
//! points use the axis objective's own decomposition verbatim, which makes
//! the corner runs bit-identical to the single-objective runs — the basis
//! for the exit assertions.
//!
//! `--quick` restricts the sweep to the corner points plus the balanced
//! center with a small discovery budget (the CI smoke configuration).
//!
//! The binary asserts before exiting that (1) every pure-weight corner
//! recovers the single-objective winner exactly (same score on its axis),
//! and (2) the reported Pareto front is mutually non-dominated and
//! non-empty.

use netsmith::gen::{Objective, WeightedTerm};
use netsmith::prelude::*;
use netsmith_bench::{evals_budget, workers, HARNESS_SEED};
use netsmith_topo::resilience::{critical_link_pairs, min_directional_degree};
use netsmith_topo::Topology;

/// EDP weight of the energy axis (the `fig12_energy` proxy setting).
const EDP_WEIGHT: f64 = 5.0;

/// The three single-objective axes of the sweep.
fn axis_objectives() -> [Objective; 3] {
    [
        Objective::LatOp,
        Objective::EnergyOp {
            edp_weight: EDP_WEIGHT,
        },
        Objective::fault_op_default(),
    ]
}

/// The composite objective for one weight vector.  Corners reuse the axis
/// decomposition verbatim (identical annealing trajectory to the pure
/// objective); mixed points scale each axis by `weight / norm`.
fn composite_for(weights: [f64; 3], norms: [f64; 3]) -> Objective {
    let axes = axis_objectives();
    let active: Vec<usize> = (0..3).filter(|&i| weights[i] > 0.0).collect();
    assert!(!active.is_empty(), "all-zero weight vector");
    if let [only] = active[..] {
        return Objective::Composite(axes[only].decomposition());
    }
    // Fold by term so the axes' shared terms (Hops appears in both the
    // LatOp and FaultOp decompositions) collapse into one weighted entry
    // and the composite's name stays unambiguous.
    let mut terms: Vec<(f64, netsmith::gen::Term)> = Vec::new();
    for i in active {
        let scale = weights[i] / norms[i];
        for WeightedTerm { weight, term } in axes[i].decomposition() {
            match terms.iter_mut().find(|(_, t)| *t == term) {
                Some((w, _)) => *w += scale * weight,
                None => terms.push((scale * weight, term)),
            }
        }
    }
    Objective::composite(terms)
}

fn discover(layout: &Layout, class: LinkClass, objective: Objective, quick: bool) -> Topology {
    NetSmith::new(layout.clone(), class)
        .objective(objective)
        .evaluations(if quick { 1_500 } else { evals_budget() })
        .workers(if quick { 2 } else { workers() })
        .seed(HARNESS_SEED ^ 0x14)
        .discover()
        .topology
}

/// `p` dominates `q` when it is no worse on every axis and strictly better
/// on at least one (all scores are minimized).
fn dominates(p: &[f64; 3], q: &[f64; 3]) -> bool {
    let eps = 1e-9;
    p.iter().zip(q.iter()).all(|(a, b)| *a <= b + eps)
        && p.iter().zip(q.iter()).any(|(a, b)| *a < b - eps)
}

struct SweepPoint {
    weights: [f64; 3],
    topology: Topology,
    axis_scores: [f64; 3],
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let layout = Layout::noi_4x5();
    let class = LinkClass::Medium;
    let axes = axis_objectives();

    // Mesh-baseline normalization so mixed weights mean "meshes per axis".
    let mesh = expert::mesh(&layout);
    let norms = axes
        .clone()
        .map(|o| o.evaluate(&mesh).score.abs().max(f64::MIN_POSITIVE));

    let corner_points: [[f64; 3]; 3] = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
    let mut weight_grid: Vec<[f64; 3]> = corner_points.to_vec();
    weight_grid.push([1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]);
    if !quick {
        weight_grid.extend([
            [0.5, 0.5, 0.0],
            [0.5, 0.0, 0.5],
            [0.0, 0.5, 0.5],
            [0.6, 0.2, 0.2],
            [0.2, 0.6, 0.2],
            [0.2, 0.2, 0.6],
        ]);
    }

    // Single-objective reference winners, same seed and budget as the
    // sweep (the corner points must reproduce these exactly).
    let single_winners: Vec<Topology> = axes
        .clone()
        .into_iter()
        .map(|o| discover(&layout, class, o, quick))
        .collect();

    let points: Vec<SweepPoint> = weight_grid
        .iter()
        .map(|&weights| {
            let topology = discover(&layout, class, composite_for(weights, norms), quick);
            let axis_scores = axes.clone().map(|o| o.evaluate(&topology).score);
            SweepPoint {
                weights,
                topology,
                axis_scores,
            }
        })
        .collect();

    let on_front: Vec<bool> = points
        .iter()
        .map(|p| {
            !points
                .iter()
                .any(|q| dominates(&q.axis_scores, &p.axis_scores))
        })
        .collect();

    println!(
        "w_lat,w_energy,w_fault,topology,links,avg_hops,lat_score,energy_score,fault_score,\
         critical_links,min_dir_degree,on_front"
    );
    for (point, front) in points.iter().zip(on_front.iter()) {
        let [wl, we, wf] = point.weights;
        let [ls, es, fs] = point.axis_scores;
        println!(
            "{wl:.3},{we:.3},{wf:.3},{},{},{:.3},{ls:.3},{es:.3},{fs:.3},{},{},{front}",
            point.topology.name(),
            point.topology.num_links(),
            netsmith_topo::metrics::average_hops(&point.topology),
            critical_link_pairs(&point.topology).len(),
            min_directional_degree(&point.topology),
        );
    }

    // Assertion 1: pure corners recover the single-objective winners — the
    // corner composite is the same term list, seed and budget, so its score
    // on its own axis must match exactly.
    for (axis, (&weights, winner)) in corner_points.iter().zip(&single_winners).enumerate() {
        let corner = points
            .iter()
            .find(|p| p.weights == weights)
            .expect("corner point swept");
        let winner_score = axes[axis].evaluate(winner).score;
        assert!(
            (corner.axis_scores[axis] - winner_score).abs() < 1e-9,
            "corner {weights:?}: composite score {} != single-objective winner {}",
            corner.axis_scores[axis],
            winner_score
        );
        eprintln!(
            "# corner {weights:?} recovers {} (axis score {winner_score:.3})",
            winner.name()
        );
    }

    // Assertion 2: the reported front is non-empty and mutually
    // non-dominated.
    let front: Vec<&SweepPoint> = points
        .iter()
        .zip(on_front.iter())
        .filter(|(_, &f)| f)
        .map(|(p, _)| p)
        .collect();
    assert!(!front.is_empty(), "empty Pareto front");
    for a in &front {
        for b in &front {
            assert!(
                !dominates(&a.axis_scores, &b.axis_scores),
                "front point {:?} dominates front point {:?}",
                a.weights,
                b.weights
            );
        }
    }
    eprintln!(
        "# Pareto front: {}/{} weight points non-dominated over (latency, energy, resilience)",
        front.len(),
        points.len()
    );
}
