//! Thin wrapper: runs the `fig05_solver_progress` experiment spec (see
//! `netsmith_bench::figures::fig05_solver_progress`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig05_solver_progress::figure);
}
