//! Figure 5: solver progress — the objective-bounds gap narrowing over
//! time — for the latency-optimized (LatOp) search on the 20-router (a),
//! 30-router (b) and 48-router (c) layouts, for each link-length class.
//!
//! The paper runs Gurobi for minutes (20 routers) to days (48 routers); the
//! reproduction's annealing engine runs for seconds to minutes, but the
//! qualitative shape is the same: small classes converge to (near-)zero gap
//! quickly, large classes plateau at a residual gap yet still beat every
//! expert design.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_bench::discover;

fn main() {
    println!("layout,class,elapsed_ms,incumbent_avg_hops,bound_avg_hops,gap");
    for (label, layout) in [
        ("4x5", Layout::noi_4x5()),
        ("6x5", Layout::noi_6x5()),
        ("8x6", Layout::noi_8x6()),
    ] {
        let n = layout.num_routers() as f64;
        let pairs = n * (n - 1.0);
        for class in LinkClass::STANDARD {
            let result = discover(&layout, class, Objective::LatOp);
            for s in result.progress.samples() {
                println!(
                    "{},{},{:.1},{:.4},{:.4},{:.4}",
                    label,
                    class.name(),
                    s.elapsed.as_secs_f64() * 1e3,
                    s.incumbent / pairs,
                    s.bound / pairs,
                    s.gap
                );
            }
            eprintln!(
                "# {label} {}: final gap {:.1}% (avg hops {:.3}, bound {:.3})",
                class.name(),
                result.gap * 100.0,
                result.objective.average_hops,
                result.bound / pairs
            );
        }
    }
}
