//! Thin wrapper: runs the `fig01_scatter` experiment spec (see
//! `netsmith_bench::figures::fig01_scatter`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig01_scatter::figure);
}
