//! Figure 1: analytical latency vs expected saturation-throughput scatter
//! of every NoI topology (expert, LPBT-style and NetSmith) on the 20-router
//! 4x5 interposer.
//!
//! Output columns: topology, class, routing, average hops (latency proxy,
//! Y axis), expected saturation throughput in flits/node/cycle (X axis,
//! the tighter of the cut and occupancy bounds combined with the routed
//! maximum channel load).

use netsmith::prelude::*;
use netsmith_bench::{class_lineup, prepare};
use netsmith_topo::bounds::ThroughputBounds;

fn main() {
    let layout = Layout::noi_4x5();
    println!("topology,class,routing,avg_hops,expected_saturation_flits_per_node_cycle,cut_bound,occupancy_bound");
    for class in LinkClass::STANDARD {
        for (topo, scheme) in class_lineup(&layout, class) {
            let network = prepare(&topo, scheme);
            let bounds = ThroughputBounds::compute(&topo);
            let routed_bound = network
                .routing
                .uniform_channel_loads()
                .saturation_injection_rate()
                * netsmith_sim::SimConfig::default().average_flits();
            let expected = bounds.limiting().min(routed_bound);
            println!(
                "{},{},{},{:.3},{:.4},{:.4},{:.4}",
                topo.name(),
                class.name(),
                scheme.label(),
                network.metrics.average_hops,
                expected,
                bounds.cut_bound,
                bounds.occupancy_bound
            );
        }
    }
    eprintln!("# Figure 1: lower-right (low latency, high throughput) is better; NS-* points should dominate.");
}
