//! Table II: topology metrics (#links, diameter, average hops, bisection
//! bandwidth) for the 20-router (4x5) and 30-router (6x5) configurations,
//! covering the expert designs, the LPBT-style baselines, and the NetSmith
//! LatOp/SCOp topologies of every link class.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_bench::discover;
use netsmith_topo::metrics::TopologyMetrics;

fn main() {
    println!("routers,{}", TopologyMetrics::csv_header());
    for layout in [Layout::noi_4x5(), Layout::noi_6x5()] {
        let routers = layout.num_routers();
        for class in LinkClass::STANDARD {
            for topo in expert::baselines_for_class(&layout, class) {
                println!("{},{}", routers, TopologyMetrics::compute(&topo).csv_row());
            }
            for objective in [Objective::LatOp, Objective::SCOp] {
                let ns = discover(&layout, class, objective);
                println!(
                    "{},{}",
                    routers,
                    TopologyMetrics::compute(&ns.topology).csv_row()
                );
                eprintln!(
                    "# {} ({} routers): objective-bounds gap {:.1}%",
                    ns.topology.name(),
                    routers,
                    ns.gap * 100.0
                );
            }
        }
    }
}
