//! Thin wrapper: runs the `table02_metrics` experiment spec (see
//! `netsmith_bench::figures::table02_metrics`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::table02_metrics::figure);
}
