//! Thin wrapper: runs the `fig15_trace` experiment spec (see
//! `netsmith_bench::figures::fig15_trace`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig15_trace::figure);
}
