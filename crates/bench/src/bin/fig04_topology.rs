//! Thin wrapper: runs the `fig04_topology` experiment spec (see
//! `netsmith_bench::figures::fig04_topology`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig04_topology::figure);
}
