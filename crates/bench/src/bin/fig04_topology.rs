//! Figure 4: an example latency-optimized NetSmith medium topology, printed
//! as Graphviz DOT with the sparsest-cut partition coloured (red vs blue)
//! and bidirectional/unidirectional links drawn solid/dashed, plus the
//! adjacency listing and link-span histogram.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_bench::discover;
use netsmith_topo::{cuts, viz};

fn main() {
    let layout = Layout::noi_4x5();
    let ns = discover(&layout, LinkClass::Medium, Objective::LatOp);
    let cut = cuts::sparsest_cut(&ns.topology);
    println!("{}", viz::to_dot(&ns.topology, Some(&cut)));
    eprintln!(
        "# adjacency listing:\n{}",
        viz::adjacency_listing(&ns.topology)
    );
    eprintln!(
        "# link span histogram: {:?}",
        ns.topology.link_span_histogram()
    );
    eprintln!(
        "# sparsest cut: {} fwd / {} bwd crossing links over partition {:?} (bisection: {})",
        cut.crossing_forward, cut.crossing_backward, cut.partition, cut.is_bisection
    );
    eprintln!(
        "# avg hops {:.3}, links {}, symmetric: {}",
        ns.objective.average_hops,
        ns.topology.num_links(),
        ns.topology.is_symmetric()
    );
}
