//! Figure 13 (beyond the paper): resilience under permanent faults across
//! expert and machine-discovered topologies.
//!
//! For every topology the harness builds the fault-scenario sets of the
//! study — every single link failure (exhaustive), sampled double link
//! failures, and single router failures — repairs each scenario with the
//! default re-route policy (fresh shortest paths + MCLB + escape VCs on
//! the surviving sub-topology, deadlock freedom verified), and reports
//! routability coverage plus unreachable-pair counts.  On a sampled
//! subset it also re-simulates the workload on the repaired fabric
//! (failed routers masked out of traffic generation) and reports degraded
//! saturation throughput and latency inflation against the healthy
//! baseline.  The NetSmith line-up gains an `NS-FaultOp` topology
//! synthesized with the fault-tolerance objective (no articulation links,
//! spare min-cut capacity) next to the latency-only `NS-LatOp` baseline.
//!
//! `--quick` restricts the sweep to the medium class with a reduced
//! line-up, smaller scenario samples and a small discovery budget (the CI
//! smoke configuration); the full run sweeps all three classes and both
//! traffic patterns.
//!
//! The binary asserts the headline properties before exiting: every
//! single-link-failure scenario on every `NS-FaultOp` topology re-routes
//! deadlock-free via the repair policy (100% coverage), and NS-FaultOp
//! degrades at least as gracefully as the latency-only baseline (mean
//! coverage over the link/router fault sets, never lower).

use netsmith::fault::{
    single_link_scenarios, single_router_scenarios, FaultModel, FaultScenario, RerouteRepair,
    ResilienceConfig, ResilienceReport,
};
use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_bench::{evals_budget, prepare, workers, HARNESS_SEED};
use netsmith_topo::resilience::critical_link_pairs;
use netsmith_topo::Topology;

fn discover(layout: &Layout, class: LinkClass, objective: Objective, quick: bool) -> Topology {
    NetSmith::new(layout.clone(), class)
        .objective(objective)
        .evaluations(if quick { 1_500 } else { evals_budget() })
        .workers(if quick { 2 } else { workers() })
        .seed(HARNESS_SEED ^ 0xFA17)
        .discover()
        .topology
}

fn lineup_for_class(
    layout: &Layout,
    class: LinkClass,
    quick: bool,
) -> Vec<(Topology, RoutingScheme)> {
    let mut lineup: Vec<(Topology, RoutingScheme)> = if quick {
        vec![(expert::mesh(layout), RoutingScheme::Ndbt)]
    } else {
        expert::baselines_for_class(layout, class)
            .into_iter()
            .map(|t| (t, RoutingScheme::Ndbt))
            .collect()
    };
    lineup.push((
        discover(layout, class, Objective::LatOp, quick),
        RoutingScheme::Mclb,
    ));
    lineup.push((
        discover(layout, class, Objective::fault_op_default(), quick),
        RoutingScheme::Mclb,
    ));
    lineup
}

/// The per-topology fault sets of the study, exhaustive where the space is
/// small and seeded samples elsewhere.
fn fault_sets(topo: &Topology, quick: bool) -> Vec<(&'static str, Vec<FaultScenario>)> {
    vec![
        ("1link", single_link_scenarios(topo)),
        (
            "2link",
            FaultModel::links(2, HARNESS_SEED).sample_scenarios(topo, if quick { 3 } else { 10 }),
        ),
        (
            "1router",
            if quick {
                FaultModel {
                    link_faults: 0,
                    router_faults: 1,
                    seed: HARNESS_SEED,
                }
                .sample_scenarios(topo, 3)
            } else {
                single_router_scenarios(topo)
            },
        ),
    ]
}

fn csv_row(
    class: LinkClass,
    network_label: &str,
    pattern: &str,
    set_name: &str,
    report: &ResilienceReport,
) -> String {
    let opt = |v: Option<f64>| v.map(|x| format!("{x:.4}")).unwrap_or_default();
    format!(
        "{},{},{},{},{},{:.4},{},{},{},{},{},{},{}",
        class.name(),
        network_label.replace(" / ", ","),
        pattern,
        set_name,
        report.outcomes.len(),
        report.coverage(),
        report.total_unreachable_pairs(),
        opt(report.baseline_saturation_flits_per_node_cycle),
        opt(report.worst_saturation()),
        opt(report.mean_saturation()),
        opt(report.worst_saturation_retention()),
        opt(report.mean_latency_inflation()),
        opt(report.worst_latency_inflation()),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let layout = Layout::noi_4x5();
    let classes: &[LinkClass] = if quick {
        &[LinkClass::Medium]
    } else {
        &LinkClass::STANDARD
    };
    let patterns: &[TrafficPattern] = if quick {
        &[TrafficPattern::UniformRandom]
    } else {
        &[TrafficPattern::UniformRandom, TrafficPattern::Shuffle]
    };

    println!(
        "class,topology,routing,pattern,fault_set,scenarios,coverage,unreachable_pairs,\
         baseline_sat,worst_sat,mean_sat,worst_retention,mean_latency_inflation,\
         worst_latency_inflation"
    );

    // (class, topology, fault_set) -> structural coverage, for the exit
    // assertions.
    let mut structural: Vec<(String, String, String, f64)> = Vec::new();

    for &class in classes {
        for (topo, scheme) in lineup_for_class(&layout, class, quick) {
            let network = prepare(&topo, scheme);
            let mut sim_cfg = SimConfig::quick();
            sim_cfg.clock_ghz = class.clock_ghz();

            // Structural pass: exhaustive repair verification over the full
            // fault sets (pattern-independent, so computed once).
            for (set_name, scenarios) in fault_sets(&topo, quick) {
                let report = network.resilience_report(
                    &scenarios,
                    &RerouteRepair,
                    &ResilienceConfig {
                        simulate: false,
                        ..Default::default()
                    },
                );
                println!(
                    "{}",
                    csv_row(class, &network.label(), "structural", set_name, &report)
                );
                structural.push((
                    class.name(),
                    topo.name().to_string(),
                    set_name.to_string(),
                    report.coverage(),
                ));
            }

            // Measured pass: re-simulate a sampled scenario subset per
            // traffic pattern on the repaired fabrics.
            for pattern in patterns {
                // Faulty scenarios only: the healthy baseline is measured
                // separately inside assess_resilience, and including it
                // here would dilute the degraded aggregates.
                let sampled: Vec<FaultScenario> = {
                    let count = if quick { 2 } else { 4 };
                    let mut s =
                        FaultModel::links(1, HARNESS_SEED ^ 1).sample_scenarios(&topo, count);
                    if !quick {
                        s.extend(FaultModel::links(2, HARNESS_SEED ^ 2).sample_scenarios(&topo, 3));
                        s.extend(
                            FaultModel {
                                link_faults: 0,
                                router_faults: 1,
                                seed: HARNESS_SEED ^ 3,
                            }
                            .sample_scenarios(&topo, 3),
                        );
                    }
                    s
                };
                let report = network.resilience_report(
                    &sampled,
                    &RerouteRepair,
                    &ResilienceConfig {
                        sim: sim_cfg.clone(),
                        pattern: pattern.clone(),
                        simulate: true,
                        ..Default::default()
                    },
                );
                println!(
                    "{}",
                    csv_row(class, &network.label(), &pattern.name(), "sampled", &report)
                );
            }
            eprintln!(
                "# {}/{}: {} critical links",
                class.name(),
                network.label(),
                critical_link_pairs(&topo).len()
            );
        }
    }

    // Headline assertions.
    //
    // 1. Every NS-FaultOp single-link-failure scenario re-routed
    //    deadlock-free: exhaustive coverage is exactly 1.0.
    let mut faultop_checked = 0usize;
    for (class, topo, set, coverage) in &structural {
        if topo.starts_with("NS-FaultOp") && set == "1link" {
            assert!(
                (*coverage - 1.0).abs() < 1e-12,
                "{class}/{topo}: single-link coverage {coverage} < 100%"
            );
            faultop_checked += 1;
        }
    }
    assert!(faultop_checked > 0, "no NS-FaultOp topologies were checked");

    // 2. Graceful degradation: per class, NS-FaultOp's mean coverage over
    //    the structural fault sets is never below the latency-only
    //    baseline's.
    for &class in classes {
        let mean_for = |prefix: &str| -> f64 {
            let values: Vec<f64> = structural
                .iter()
                .filter(|(c, t, _, _)| *c == class.name() && t.starts_with(prefix))
                .map(|(_, _, _, cov)| *cov)
                .collect();
            assert!(!values.is_empty(), "{class:?}: no {prefix} rows");
            values.iter().sum::<f64>() / values.len() as f64
        };
        let faultop = mean_for("NS-FaultOp");
        let latop = mean_for("NS-LatOp");
        assert!(
            faultop >= latop - 1e-9,
            "{}: NS-FaultOp coverage {faultop:.4} degrades worse than NS-LatOp {latop:.4}",
            class.name()
        );
        eprintln!(
            "# {}: mean structural coverage NS-FaultOp {faultop:.4} vs NS-LatOp {latop:.4}",
            class.name()
        );
    }
    eprintln!(
        "# verified: {faultop_checked} NS-FaultOp configurations keep 100% single-link \
         routability, all repairs deadlock-free"
    );
}
