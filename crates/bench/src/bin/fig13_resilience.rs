//! Thin wrapper: runs the `fig13_resilience` experiment spec (see
//! `netsmith_bench::figures::fig13_resilience`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig13_resilience::figure);
}
