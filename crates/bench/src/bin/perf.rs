//! The tracked performance target (`BENCH_10.json`).
//!
//! Measures simulator throughput on the fig08/fig11 simulation
//! configurations, a trace-replay throughput probe (the fig15 workload:
//! an ON/OFF hotspot trace replayed across the load grid), the
//! `sim_5000_cycles_midload` criterion scenario (min/median/IQR computed
//! here over a configurable sample count), the disabled-instrumentation
//! overhead of the obs layer (an annealing run — the per-move counter hot
//! path — timed under the no-op recorder vs a live in-memory recorder),
//! a `serving_horizon` probe (a fig16-style closed-loop link-sleep
//! lifetime on the folded torus, timed end to end), and `suite --quick`
//! wall-clock, then writes everything — alongside the frozen pre-rework
//! baseline — to `BENCH_10.json` at the workspace root.
//!
//! Modes:
//! * default / `--record` — measure and rewrite `BENCH_10.json` (with
//!   `--probe`, measure and print just that probe; the file is only
//!   rewritten by a full record).
//! * `--check` — parse the committed `BENCH_10.json` and gate every probe
//!   against its recorded value: the flit-throughput probes must stay
//!   above `recorded flits/sec ÷ tolerance`, the timed probes below
//!   `recorded × tolerance`.  The tolerance (`PERF_CHECK_TOLERANCE`,
//!   default 1.25×) absorbs container scheduling noise — sustained
//!   regressions past 25% fail CI directly, per-probe, not just through
//!   suite wall-clock.
//!
//! Flags:
//! * `--probe <name>` — run a single probe (one of `fig08_sim`,
//!   `fig11_sim`, `trace_replay`, `sim_5000_cycles_midload`,
//!   `obs_overhead`, `serving_horizon`, `suite_quick`) so hot-loop
//!   iteration doesn't pay for the full suite each time.
//! * `--samples <n>` — sample count for the median-based probes
//!   (default 15).
//!
//! The sibling `suite` binary must already be built; CI builds the whole
//! workspace in release before invoking this target.

use netsmith_exp::json::Json;
use netsmith_gen::anneal::{anneal, AnnealConfig};
use netsmith_gen::{GenerationProblem, Objective};
use netsmith_obs::{MemoryRecorder, Obs};
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
use netsmith_sim::{NetworkSim, SimConfig};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::{expert, Layout, LinkClass, Topology};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Instant;

/// Pre-rework numbers, measured with this exact harness at the commit
/// before the compiled flat-state engine landed (1-core container; only
/// ratios against `current` are meaningful across machines).
const BASELINE_FIG08_FLITS_PER_SEC: f64 = 9_452_136.0;
const BASELINE_FIG11_FLITS_PER_SEC: f64 = 4_376_432.0;
const BASELINE_SIM5000_MEDIAN_MS: f64 = 4.425;
const BASELINE_SUITE_QUICK_SECONDS: f64 = 25.4;

const DEFAULT_SAMPLES: usize = 15;

/// Evaluation budget of the obs overhead probe (small enough that the
/// 2 × 15-sample protocol stays in single-digit seconds).
const OBS_OVERHEAD_EVALS: u64 = 5_000;

const PROBES: &[&str] = &[
    "fig08_sim",
    "fig11_sim",
    "trace_replay",
    "sim_5000_cycles_midload",
    "obs_overhead",
    "serving_horizon",
    "suite_quick",
];

fn bench_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_10.json")
}

/// Sweep repetitions for the single-sweep throughput probes: each sweep
/// is only tens to hundreds of milliseconds, where scheduler jitter on a
/// shared box is a ±15% effect, so both `--record` and `--check` keep
/// the best of three consecutive sweeps — the repeatable ceiling rather
/// than one draw — and the `--check` floors stay meaningful.
const THROUGHPUT_REPS: usize = 3;

fn best_of(mut sweep: impl FnMut() -> SimBenchResult) -> SimBenchResult {
    let mut best = sweep();
    for _ in 1..THROUGHPUT_REPS {
        let r = sweep();
        if r.seconds < best.seconds {
            best = r;
        }
    }
    best
}

struct SimBenchResult {
    flits: u64,
    seconds: f64,
}

impl SimBenchResult {
    fn flits_per_sec(&self) -> f64 {
        self.flits as f64 / self.seconds
    }
}

/// Route + allocate each topology, then time construction and all runs
/// (identical protocol to the recorded baseline: preparation outside the
/// clock, `NetworkSim` construction and every load point inside it).
fn sim_bench(topos: &[Topology], loads: &[f64], config: &SimConfig) -> SimBenchResult {
    let mut prepared = Vec::new();
    for topo in topos {
        let paths = all_shortest_paths(topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).expect("fits in 6 VCs");
        prepared.push((topo, table, alloc));
    }
    let mut flits = 0u64;
    let start = Instant::now();
    for (topo, table, alloc) in &prepared {
        let sim = NetworkSim::builder(topo, table)
            .vcs(alloc)
            .pattern(TrafficPattern::UniformRandom)
            .config(config.clone())
            .compile();
        for &load in loads {
            let report = sim.run(load);
            flits += report.activity.total_link_flits();
        }
    }
    SimBenchResult {
        flits,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn fig08_bench(config: &SimConfig) -> SimBenchResult {
    let layout = Layout::noi_4x5();
    best_of(|| {
        sim_bench(
            &[expert::mesh(&layout), expert::folded_torus(&layout)],
            &[0.05, 0.1, 0.2, 0.3],
            config,
        )
    })
}

fn fig11_bench(config: &SimConfig) -> SimBenchResult {
    best_of(|| {
        sim_bench(
            &[expert::folded_torus(&Layout::noi_8x6())],
            &netsmith_sim::sweep::default_load_grid(),
            config,
        )
    })
}

/// Trace-replay throughput: the fig15 bursty-hotspot trace replayed on
/// the folded torus across the default load grid, timed with the same
/// protocol as `sim_bench` (preparation outside the clock, construction
/// and every load point inside it).  Replay is RNG-free, so the flit
/// count is a fixed function of the trace and grid.
fn trace_replay_bench(config: &SimConfig) -> SimBenchResult {
    let layout = Layout::noi_4x5();
    let torus = expert::folded_torus(&layout);
    let paths = all_shortest_paths(&torus);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 42).expect("fits in 6 VCs");
    let trace = std::sync::Arc::new(
        netsmith_trace::generate_named("onoff-hotspot", 20, 4_096, 15).unwrap(),
    );
    let loads = netsmith_sim::sweep::default_load_grid();
    best_of(|| {
        let mut flits = 0u64;
        let start = Instant::now();
        let sim = NetworkSim::builder(&torus, &table)
            .vcs(&alloc)
            .trace(std::sync::Arc::clone(&trace))
            .config(config.clone())
            .compile();
        for &load in &loads {
            let report = sim.run(load);
            flits += report.activity.total_link_flits();
        }
        SimBenchResult {
            flits,
            seconds: start.elapsed().as_secs_f64(),
        }
    })
}

/// Order statistics of a timed sample set, in milliseconds.  Quartiles
/// are taken at the `len/4` and `3*len/4` sorted ranks — crude, but
/// stable across sample counts and enough to read run-to-run spread.
struct SampleStats {
    min_ms: f64,
    median_ms: f64,
    iqr_ms: f64,
    samples: usize,
}

fn sample_stats(mut samples: Vec<f64>) -> SampleStats {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    SampleStats {
        min_ms: samples[0],
        median_ms: samples[n / 2],
        iqr_ms: samples[(3 * n) / 4] - samples[n / 4],
        samples: n,
    }
}

/// Run times of the criterion `sim_5000_cycles_midload` scenario.
fn sim5000_stats(samples: usize) -> SampleStats {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_medium(&layout);
    let paths = all_shortest_paths(&kite);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 3).unwrap();
    let config = SimConfig {
        warmup_cycles: 500,
        measure_cycles: 4_000,
        drain_cycles: 500,
        ..SimConfig::default()
    };
    let sim = NetworkSim::builder(&kite, &table)
        .vcs(&alloc)
        .pattern(TrafficPattern::UniformRandom)
        .config(config)
        .compile();
    sample_stats(
        (0..samples.max(1))
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(sim.run(0.3));
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    )
}

struct ObsOverheadResult {
    noop_median_ms: f64,
    memory_median_ms: f64,
}

impl ObsOverheadResult {
    fn enabled_over_noop(&self) -> f64 {
        self.memory_median_ms / self.noop_median_ms
    }
}

/// Disabled-instrumentation overhead of the obs layer: median wall-clock
/// of a fixed annealing run — the per-move counter/span hot path — under
/// the no-op recorder vs a live in-memory recorder.  The no-op number is
/// what every unobserved run pays; the ratio documents how cheap turning
/// the recorder on is.
fn obs_overhead(samples: usize) -> ObsOverheadResult {
    let problem = GenerationProblem::new(Layout::noi_4x5(), LinkClass::Medium, Objective::LatOp);
    let config = AnnealConfig {
        max_evaluations: OBS_OVERHEAD_EVALS,
        ..AnnealConfig::quick()
    };
    let median_ms = |obs: &Obs| {
        sample_stats(
            (0..samples.max(1))
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(anneal(&problem, &config, 0.0, obs));
                    start.elapsed().as_secs_f64() * 1e3
                })
                .collect(),
        )
        .median_ms
    };
    ObsOverheadResult {
        noop_median_ms: median_ms(&Obs::noop()),
        memory_median_ms: median_ms(&Obs::to(MemoryRecorder::new())),
    }
}

/// Horizon length of the serving probe: long enough that the per-epoch
/// compile/run/gate cycle dominates, short enough for a sub-second probe.
const SERVING_PROBE_EPOCHS: u64 = 48;

/// End-to-end serving-loop times: a fig16-style closed-loop link-sleep
/// lifetime (diurnal load, one fault, online repair and re-gating every
/// epoch) on the folded torus.  This is the whole `netsmith-serve` path —
/// load process, policy decision, per-epoch compiled runs, energy
/// accounting, histogram merging — so it catches regressions the
/// steady-state simulator probes cannot see.
fn serving_horizon_stats(samples: usize) -> SampleStats {
    use netsmith_serve::{serve, LoadSpec, PolicyKind, ServingConfig, ServingInputs, TapeSpec};
    let layout = Layout::noi_4x5();
    let torus = expert::folded_torus(&layout);
    let paths = all_shortest_paths(&torus);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 42).expect("fits in 6 VCs");
    let config = ServingConfig {
        epochs: SERVING_PROBE_EPOCHS,
        load: LoadSpec {
            period_epochs: 24,
            ..LoadSpec::default()
        },
        tape: TapeSpec {
            expected_faults: 1.0,
            seed: 0x00BE_9C10,
        },
        policy: PolicyKind::LinkSleep {
            idle_threshold: 0.12,
        },
        seed: 0x00BE_9C10,
        ..ServingConfig::default()
    };
    let inputs = ServingInputs::new(&torus, &table, &alloc);
    sample_stats(
        (0..samples.max(1))
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(serve(&inputs, &config, &netsmith_obs::Obs::noop()));
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    )
}

/// Wall-clock of a full `suite --quick` run (stdout discarded; stderr — the
/// per-figure progress log — passes through).
fn suite_quick_seconds() -> f64 {
    let suite = std::env::current_exe()
        .expect("current_exe")
        .with_file_name("suite");
    let start = Instant::now();
    let status = Command::new(&suite)
        .arg("--quick")
        .stdout(Stdio::null())
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {}: {e}", suite.display()));
    assert!(status.success(), "suite --quick failed: {status}");
    start.elapsed().as_secs_f64()
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Indented printer for the committed artifact (the compact `Display`
/// form parses identically; this one diffs better).
fn pretty(json: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match json {
        Json::Obj(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in members.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                out.push_str(&Json::Str(key.clone()).to_string());
                out.push_str(": ");
                pretty(value, indent + 1, out);
                if i + 1 < members.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

fn print_sim(name: &str, r: &SimBenchResult, baseline: f64) {
    eprintln!(
        "{name}: {} flits in {:.3}s = {:.0} flits/sec ({:.1}x baseline)",
        r.flits,
        r.seconds,
        r.flits_per_sec(),
        r.flits_per_sec() / baseline,
    );
}

fn record(probe: Option<&str>, samples: usize) {
    let config = SimConfig::for_class(LinkClass::Medium);
    let run = |name: &str| probe.is_none() || probe == Some(name);

    let mut fig08 = None;
    if run("fig08_sim") {
        eprintln!("# perf: fig08_sim");
        let r = fig08_bench(&config);
        print_sim("fig08_sim", &r, BASELINE_FIG08_FLITS_PER_SEC);
        fig08 = Some(r);
    }

    let mut fig11 = None;
    if run("fig11_sim") {
        eprintln!("# perf: fig11_sim");
        let r = fig11_bench(&config);
        print_sim("fig11_sim", &r, BASELINE_FIG11_FLITS_PER_SEC);
        fig11 = Some(r);
    }

    let mut trace = None;
    if run("trace_replay") {
        eprintln!("# perf: trace_replay");
        let r = trace_replay_bench(&config);
        eprintln!(
            "trace_replay: {} flits in {:.3}s = {:.0} flits/sec",
            r.flits,
            r.seconds,
            r.flits_per_sec(),
        );
        trace = Some(r);
    }

    let mut sim5000 = None;
    if run("sim_5000_cycles_midload") {
        eprintln!("# perf: sim_5000_cycles_midload");
        let s = sim5000_stats(samples);
        eprintln!(
            "sim_5000_cycles_midload: median {:.3} ms, min {:.3} ms, IQR {:.3} ms \
             over {} samples ({:.1}x baseline)",
            s.median_ms,
            s.min_ms,
            s.iqr_ms,
            s.samples,
            BASELINE_SIM5000_MEDIAN_MS / s.median_ms,
        );
        sim5000 = Some(s);
    }

    let mut obs = None;
    if run("obs_overhead") {
        eprintln!("# perf: obs_overhead");
        let o = obs_overhead(samples);
        eprintln!(
            "obs_overhead: anneal {OBS_OVERHEAD_EVALS} evals, noop {:.3} ms, \
             in-memory {:.3} ms ({:.2}x)",
            o.noop_median_ms,
            o.memory_median_ms,
            o.enabled_over_noop(),
        );
        obs = Some(o);
    }

    let mut serving = None;
    if run("serving_horizon") {
        eprintln!("# perf: serving_horizon");
        let s = serving_horizon_stats(samples);
        eprintln!(
            "serving_horizon: {SERVING_PROBE_EPOCHS} epochs, median {:.3} ms, min {:.3} ms, \
             IQR {:.3} ms over {} samples",
            s.median_ms, s.min_ms, s.iqr_ms, s.samples,
        );
        serving = Some(s);
    }

    let mut suite_seconds = None;
    if run("suite_quick") {
        eprintln!("# perf: suite --quick");
        let s = suite_quick_seconds();
        eprintln!(
            "suite --quick: {s:.1}s ({:.1}x baseline)",
            BASELINE_SUITE_QUICK_SECONDS / s,
        );
        suite_seconds = Some(s);
    }

    if probe.is_some() {
        // Single-probe iteration: print-only, keep the committed artifact.
        return;
    }
    let (fig08, fig11, trace) = (fig08.unwrap(), fig11.unwrap(), trace.unwrap());
    let (sim5000, obs, serving) = (sim5000.unwrap(), obs.unwrap(), serving.unwrap());
    let suite_seconds = suite_seconds.unwrap();

    let sim_section = |r: &SimBenchResult, baseline: f64| {
        obj(vec![
            ("flits", Json::Num(r.flits as f64)),
            ("seconds", Json::Num(round3(r.seconds))),
            ("flits_per_sec", Json::Num(r.flits_per_sec().round())),
            (
                "speedup_vs_baseline",
                Json::Num(round3(r.flits_per_sec() / baseline)),
            ),
        ])
    };
    let doc = obj(vec![
        ("bench", Json::Num(10.0)),
        (
            "note",
            Json::Str(
                "throughput trajectory for the reworked hot loop (batched \
                 injection schedules, fused arbitrate/commit, calendar-queue \
                 idle jumps); regenerate with \
                 `cargo run --release -p netsmith-bench --bin perf`"
                    .into(),
            ),
        ),
        (
            "baseline",
            obj(vec![
                (
                    "fig08_sim_flits_per_sec",
                    Json::Num(BASELINE_FIG08_FLITS_PER_SEC),
                ),
                (
                    "fig11_sim_flits_per_sec",
                    Json::Num(BASELINE_FIG11_FLITS_PER_SEC),
                ),
                (
                    "sim_5000_cycles_midload_median_ms",
                    Json::Num(BASELINE_SIM5000_MEDIAN_MS),
                ),
                (
                    "suite_quick_seconds",
                    Json::Num(BASELINE_SUITE_QUICK_SECONDS),
                ),
            ]),
        ),
        (
            "current",
            obj(vec![
                (
                    "fig08_sim",
                    sim_section(&fig08, BASELINE_FIG08_FLITS_PER_SEC),
                ),
                (
                    "fig11_sim",
                    sim_section(&fig11, BASELINE_FIG11_FLITS_PER_SEC),
                ),
                (
                    // New probe in bench 7 (trace replay landed with it), so
                    // there is no pre-rework baseline to compare against.
                    "trace_replay",
                    obj(vec![
                        ("flits", Json::Num(trace.flits as f64)),
                        ("seconds", Json::Num(round3(trace.seconds))),
                        ("flits_per_sec", Json::Num(trace.flits_per_sec().round())),
                    ]),
                ),
                (
                    "sim_5000_cycles_midload",
                    obj(vec![
                        ("median_ms", Json::Num(round3(sim5000.median_ms))),
                        ("min_ms", Json::Num(round3(sim5000.min_ms))),
                        ("iqr_ms", Json::Num(round3(sim5000.iqr_ms))),
                        ("samples", Json::Num(sim5000.samples as f64)),
                        (
                            "speedup_vs_baseline",
                            Json::Num(round3(BASELINE_SIM5000_MEDIAN_MS / sim5000.median_ms)),
                        ),
                    ]),
                ),
                (
                    // New probe in bench 8 (landed with the obs layer):
                    // the no-op recorder must keep unobserved runs at
                    // pre-instrumentation speed, so the interesting
                    // figure is the enabled/noop ratio, not a baseline.
                    "obs_overhead",
                    obj(vec![
                        ("anneal_evals", Json::Num(OBS_OVERHEAD_EVALS as f64)),
                        ("noop_median_ms", Json::Num(round3(obs.noop_median_ms))),
                        ("memory_median_ms", Json::Num(round3(obs.memory_median_ms))),
                        (
                            "enabled_over_noop",
                            Json::Num(round3(obs.enabled_over_noop())),
                        ),
                    ]),
                ),
                (
                    // New probe in bench 10 (landed with netsmith-serve):
                    // times the whole closed-loop serving path, so there
                    // is no earlier baseline to compare against.
                    "serving_horizon",
                    obj(vec![
                        ("epochs", Json::Num(SERVING_PROBE_EPOCHS as f64)),
                        ("median_ms", Json::Num(round3(serving.median_ms))),
                        ("min_ms", Json::Num(round3(serving.min_ms))),
                        ("iqr_ms", Json::Num(round3(serving.iqr_ms))),
                        ("samples", Json::Num(serving.samples as f64)),
                    ]),
                ),
                (
                    "suite_quick",
                    obj(vec![
                        ("seconds", Json::Num(round3(suite_seconds))),
                        (
                            "speedup_vs_baseline",
                            Json::Num(round3(BASELINE_SUITE_QUICK_SECONDS / suite_seconds)),
                        ),
                    ]),
                ),
            ]),
        ),
    ]);
    let mut text = String::new();
    pretty(&doc, 0, &mut text);
    text.push('\n');
    Json::parse(&text).expect("emitted BENCH_10.json must parse");
    let path = bench_path();
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("# perf: wrote {}", path.display());
}

/// Read `current.<probe>.<field>` out of the committed artifact.
fn recorded(doc: &Json, probe: &str, field: &str) -> f64 {
    doc.require("current")
        .and_then(|c| c.require(probe))
        .and_then(|s| s.require(field))
        .and_then(Json::as_f64)
        .unwrap_or_else(|e| panic!("BENCH_10.json: current.{probe}.{field}: {e}"))
}

fn check(probe: Option<&str>, samples: usize) {
    let path = bench_path();
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let doc = Json::parse(&text).expect("BENCH_10.json must parse");
    // The tolerance absorbs run-to-run container noise (the probes are
    // single-shot wall-clock measurements on a shared box); 25% headroom
    // keeps the gates quiet on scheduling jitter while still catching
    // any real hot-loop regression.
    let tolerance = std::env::var("PERF_CHECK_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.25);
    eprintln!("# perf --check: tolerance {tolerance}x over recorded values");
    let config = SimConfig::for_class(LinkClass::Medium);
    let run = |name: &str| probe.is_none() || probe == Some(name);
    let mut checked = 0u32;

    // Throughput floor: measured flits/sec >= recorded / tolerance.
    let mut gate_fps = |name: &str, r: &SimBenchResult| {
        let rec = recorded(&doc, name, "flits_per_sec");
        let floor = rec / tolerance;
        let got = r.flits_per_sec();
        assert!(
            got >= floor,
            "{name} regressed: {got:.0} flits/sec < floor {floor:.0} \
             ({rec:.0} recorded / {tolerance} tolerance)"
        );
        eprintln!("# perf --check: {name} {got:.0} flits/sec >= {floor:.0}, ok");
        checked += 1;
    };
    if run("fig08_sim") {
        gate_fps("fig08_sim", &fig08_bench(&config));
    }
    if run("fig11_sim") {
        gate_fps("fig11_sim", &fig11_bench(&config));
    }
    if run("trace_replay") {
        gate_fps("trace_replay", &trace_replay_bench(&config));
    }

    // Latency ceilings: measured time <= recorded * tolerance.
    if run("sim_5000_cycles_midload") {
        let rec = recorded(&doc, "sim_5000_cycles_midload", "median_ms");
        let limit = rec * tolerance;
        let got = sim5000_stats(samples).median_ms;
        assert!(
            got <= limit,
            "sim_5000_cycles_midload regressed: median {got:.3} ms > {limit:.3} ms \
             ({rec:.3} ms recorded x {tolerance} tolerance)"
        );
        eprintln!(
            "# perf --check: sim_5000_cycles_midload median {got:.3} ms <= {limit:.3} ms, ok"
        );
        checked += 1;
    }
    if run("obs_overhead") {
        let rec = recorded(&doc, "obs_overhead", "noop_median_ms");
        let limit = rec * tolerance;
        let got = obs_overhead(samples).noop_median_ms;
        assert!(
            got <= limit,
            "obs_overhead regressed: noop median {got:.3} ms > {limit:.3} ms \
             ({rec:.3} ms recorded x {tolerance} tolerance)"
        );
        eprintln!("# perf --check: obs_overhead noop {got:.3} ms <= {limit:.3} ms, ok");
        checked += 1;
    }
    if run("serving_horizon") {
        let rec = recorded(&doc, "serving_horizon", "median_ms");
        let limit = rec * tolerance;
        let got = serving_horizon_stats(samples).median_ms;
        assert!(
            got <= limit,
            "serving_horizon regressed: median {got:.3} ms > {limit:.3} ms \
             ({rec:.3} ms recorded x {tolerance} tolerance)"
        );
        eprintln!("# perf --check: serving_horizon median {got:.3} ms <= {limit:.3} ms, ok");
        checked += 1;
    }
    if run("suite_quick") {
        let rec = recorded(&doc, "suite_quick", "seconds");
        let limit = rec * tolerance;
        let got = suite_quick_seconds();
        assert!(
            got <= limit,
            "suite --quick regressed: {got:.1}s > {limit:.1}s \
             ({rec:.1}s recorded x {tolerance} tolerance)"
        );
        eprintln!("# perf --check: suite --quick {got:.1}s <= {limit:.1}s, ok");
        checked += 1;
    }
    assert!(checked > 0, "no probe matched {probe:?}");
    eprintln!("# perf --check: {checked} probe(s) ok");
}

fn usage() -> ! {
    eprintln!(
        "usage: perf [--record | --check] [--probe <name>] [--samples <n>]\n\
         probes: {}",
        PROBES.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode_check = false;
    let mut probe: Option<String> = None;
    let mut samples = DEFAULT_SAMPLES;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--record" => mode_check = false,
            "--check" => mode_check = true,
            "--probe" => {
                let name = it.next().unwrap_or_else(|| usage());
                if !PROBES.contains(&name.as_str()) {
                    eprintln!("unknown probe {name:?}");
                    usage();
                }
                probe = Some(name.clone());
            }
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if mode_check {
        check(probe.as_deref(), samples);
    } else {
        record(probe.as_deref(), samples);
    }
}
