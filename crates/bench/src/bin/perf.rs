//! The tracked performance target (`BENCH_8.json`).
//!
//! Measures simulator throughput on the fig08/fig11 simulation
//! configurations, a trace-replay throughput probe (the fig15 workload:
//! an ON/OFF hotspot trace replayed across the load grid), the
//! `sim_5000_cycles_midload` criterion scenario (medians computed here,
//! over the same 15-sample protocol used to record the pre-rework
//! baseline), the disabled-instrumentation overhead of the obs layer
//! (an annealing run — the per-move counter hot path — timed under the
//! no-op recorder vs a live in-memory recorder), and `suite --quick`
//! wall-clock, then writes everything — alongside the frozen pre-rework
//! baseline — to `BENCH_8.json` at the workspace root.
//!
//! Modes:
//! * default / `--record` — measure and rewrite `BENCH_8.json`.
//! * `--check` — parse the committed `BENCH_8.json`, re-run
//!   `suite --quick`, and fail when wall-clock regresses more than
//!   `PERF_CHECK_TOLERANCE` (default 1.25×) over the recorded value.
//!
//! The sibling `suite` binary must already be built; CI builds the whole
//! workspace in release before invoking this target.

use netsmith_exp::json::Json;
use netsmith_gen::anneal::{anneal, AnnealConfig};
use netsmith_gen::{GenerationProblem, Objective};
use netsmith_obs::{MemoryRecorder, Obs};
use netsmith_route::paths::all_shortest_paths;
use netsmith_route::{allocate_vcs, mclb_route, MclbConfig};
use netsmith_sim::{NetworkSim, SimConfig};
use netsmith_topo::traffic::TrafficPattern;
use netsmith_topo::{expert, Layout, LinkClass, Topology};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Instant;

/// Pre-rework numbers, measured with this exact harness at the commit
/// before the compiled flat-state engine landed (1-core container; only
/// ratios against `current` are meaningful across machines).
const BASELINE_FIG08_FLITS_PER_SEC: f64 = 9_452_136.0;
const BASELINE_FIG11_FLITS_PER_SEC: f64 = 4_376_432.0;
const BASELINE_SIM5000_MEDIAN_MS: f64 = 4.425;
const BASELINE_SUITE_QUICK_SECONDS: f64 = 25.4;

const MEDIAN_SAMPLES: usize = 15;

/// Evaluation budget of the obs overhead probe (small enough that the
/// 2 × 15-sample protocol stays in single-digit seconds).
const OBS_OVERHEAD_EVALS: u64 = 5_000;

fn bench_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_8.json")
}

struct SimBenchResult {
    flits: u64,
    seconds: f64,
}

impl SimBenchResult {
    fn flits_per_sec(&self) -> f64 {
        self.flits as f64 / self.seconds
    }
}

/// Route + allocate each topology, then time construction and all runs
/// (identical protocol to the recorded baseline: preparation outside the
/// clock, `NetworkSim` construction and every load point inside it).
fn sim_bench(topos: &[Topology], loads: &[f64], config: &SimConfig) -> SimBenchResult {
    let mut prepared = Vec::new();
    for topo in topos {
        let paths = all_shortest_paths(topo);
        let table = mclb_route(&paths, &MclbConfig::default());
        let alloc = allocate_vcs(&table, 6, 42).expect("fits in 6 VCs");
        prepared.push((topo, table, alloc));
    }
    let mut flits = 0u64;
    let start = Instant::now();
    for (topo, table, alloc) in &prepared {
        let sim = NetworkSim::builder(topo, table)
            .vcs(alloc)
            .pattern(TrafficPattern::UniformRandom)
            .config(config.clone())
            .compile();
        for &load in loads {
            let report = sim.run(load);
            flits += report.activity.total_link_flits();
        }
    }
    SimBenchResult {
        flits,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Trace-replay throughput: the fig15 bursty-hotspot trace replayed on
/// the folded torus across the default load grid, timed with the same
/// protocol as `sim_bench` (preparation outside the clock, construction
/// and every load point inside it).  Replay is RNG-free, so the flit
/// count is a fixed function of the trace and grid.
fn trace_replay_bench(config: &SimConfig) -> SimBenchResult {
    let layout = Layout::noi_4x5();
    let torus = expert::folded_torus(&layout);
    let paths = all_shortest_paths(&torus);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 42).expect("fits in 6 VCs");
    let trace = std::sync::Arc::new(
        netsmith_trace::generate_named("onoff-hotspot", 20, 4_096, 15).unwrap(),
    );
    let loads = netsmith_sim::sweep::default_load_grid();
    let mut flits = 0u64;
    let start = Instant::now();
    let sim = NetworkSim::builder(&torus, &table)
        .vcs(&alloc)
        .trace(trace)
        .config(config.clone())
        .compile();
    for &load in &loads {
        let report = sim.run(load);
        flits += report.activity.total_link_flits();
    }
    SimBenchResult {
        flits,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Median run time of the criterion `sim_5000_cycles_midload` scenario.
fn sim5000_median_ms() -> f64 {
    let layout = Layout::noi_4x5();
    let kite = expert::kite_medium(&layout);
    let paths = all_shortest_paths(&kite);
    let table = mclb_route(&paths, &MclbConfig::default());
    let alloc = allocate_vcs(&table, 6, 3).unwrap();
    let config = SimConfig {
        warmup_cycles: 500,
        measure_cycles: 4_000,
        drain_cycles: 500,
        ..SimConfig::default()
    };
    let sim = NetworkSim::builder(&kite, &table)
        .vcs(&alloc)
        .pattern(TrafficPattern::UniformRandom)
        .config(config)
        .compile();
    let mut samples: Vec<f64> = (0..MEDIAN_SAMPLES)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(sim.run(0.3));
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[MEDIAN_SAMPLES / 2]
}

struct ObsOverheadResult {
    noop_median_ms: f64,
    memory_median_ms: f64,
}

impl ObsOverheadResult {
    fn enabled_over_noop(&self) -> f64 {
        self.memory_median_ms / self.noop_median_ms
    }
}

/// Disabled-instrumentation overhead of the obs layer: median wall-clock
/// of a fixed annealing run — the per-move counter/span hot path — under
/// the no-op recorder vs a live in-memory recorder.  The no-op number is
/// what every unobserved run pays; the ratio documents how cheap turning
/// the recorder on is.
fn obs_overhead() -> ObsOverheadResult {
    let problem = GenerationProblem::new(Layout::noi_4x5(), LinkClass::Medium, Objective::LatOp);
    let config = AnnealConfig {
        max_evaluations: OBS_OVERHEAD_EVALS,
        ..AnnealConfig::quick()
    };
    let median_ms = |obs: &Obs| {
        let mut samples: Vec<f64> = (0..MEDIAN_SAMPLES)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(anneal(&problem, &config, 0.0, obs));
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[MEDIAN_SAMPLES / 2]
    };
    ObsOverheadResult {
        noop_median_ms: median_ms(&Obs::noop()),
        memory_median_ms: median_ms(&Obs::to(MemoryRecorder::new())),
    }
}

/// Wall-clock of a full `suite --quick` run (stdout discarded; stderr — the
/// per-figure progress log — passes through).
fn suite_quick_seconds() -> f64 {
    let suite = std::env::current_exe()
        .expect("current_exe")
        .with_file_name("suite");
    let start = Instant::now();
    let status = Command::new(&suite)
        .arg("--quick")
        .stdout(Stdio::null())
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {}: {e}", suite.display()));
    assert!(status.success(), "suite --quick failed: {status}");
    start.elapsed().as_secs_f64()
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// Indented printer for the committed artifact (the compact `Display`
/// form parses identically; this one diffs better).
fn pretty(json: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match json {
        Json::Obj(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in members.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                out.push_str(&Json::Str(key.clone()).to_string());
                out.push_str(": ");
                pretty(value, indent + 1, out);
                if i + 1 < members.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

fn record() {
    let layout = Layout::noi_4x5();
    let config = SimConfig::for_class(LinkClass::Medium);

    eprintln!("# perf: fig08_sim");
    let fig08 = sim_bench(
        &[expert::mesh(&layout), expert::folded_torus(&layout)],
        &[0.05, 0.1, 0.2, 0.3],
        &config,
    );
    eprintln!(
        "fig08_sim: {} flits in {:.3}s = {:.0} flits/sec ({:.1}x baseline)",
        fig08.flits,
        fig08.seconds,
        fig08.flits_per_sec(),
        fig08.flits_per_sec() / BASELINE_FIG08_FLITS_PER_SEC,
    );

    eprintln!("# perf: fig11_sim");
    let fig11 = sim_bench(
        &[expert::folded_torus(&Layout::noi_8x6())],
        &netsmith_sim::sweep::default_load_grid(),
        &config,
    );
    eprintln!(
        "fig11_sim: {} flits in {:.3}s = {:.0} flits/sec ({:.1}x baseline)",
        fig11.flits,
        fig11.seconds,
        fig11.flits_per_sec(),
        fig11.flits_per_sec() / BASELINE_FIG11_FLITS_PER_SEC,
    );

    eprintln!("# perf: trace_replay");
    let trace = trace_replay_bench(&config);
    eprintln!(
        "trace_replay: {} flits in {:.3}s = {:.0} flits/sec",
        trace.flits,
        trace.seconds,
        trace.flits_per_sec(),
    );

    eprintln!("# perf: sim_5000_cycles_midload");
    let median_ms = sim5000_median_ms();
    eprintln!(
        "sim_5000_cycles_midload median: {median_ms:.3} ms ({:.1}x baseline)",
        BASELINE_SIM5000_MEDIAN_MS / median_ms,
    );

    eprintln!("# perf: obs_overhead");
    let obs = obs_overhead();
    eprintln!(
        "obs_overhead: anneal {OBS_OVERHEAD_EVALS} evals, noop {:.3} ms, \
         in-memory {:.3} ms ({:.2}x)",
        obs.noop_median_ms,
        obs.memory_median_ms,
        obs.enabled_over_noop(),
    );

    eprintln!("# perf: suite --quick");
    let suite_seconds = suite_quick_seconds();
    eprintln!(
        "suite --quick: {suite_seconds:.1}s ({:.1}x baseline)",
        BASELINE_SUITE_QUICK_SECONDS / suite_seconds,
    );

    let sim_section = |r: &SimBenchResult, baseline: f64| {
        obj(vec![
            ("flits", Json::Num(r.flits as f64)),
            ("seconds", Json::Num(round3(r.seconds))),
            ("flits_per_sec", Json::Num(r.flits_per_sec().round())),
            (
                "speedup_vs_baseline",
                Json::Num(round3(r.flits_per_sec() / baseline)),
            ),
        ])
    };
    let doc = obj(vec![
        ("bench", Json::Num(8.0)),
        (
            "note",
            Json::Str(
                "throughput baseline for the compiled flat-state simulator \
                 plus the obs-layer overhead probe; regenerate with \
                 `cargo run --release -p netsmith-bench --bin perf`"
                    .into(),
            ),
        ),
        (
            "baseline",
            obj(vec![
                (
                    "fig08_sim_flits_per_sec",
                    Json::Num(BASELINE_FIG08_FLITS_PER_SEC),
                ),
                (
                    "fig11_sim_flits_per_sec",
                    Json::Num(BASELINE_FIG11_FLITS_PER_SEC),
                ),
                (
                    "sim_5000_cycles_midload_median_ms",
                    Json::Num(BASELINE_SIM5000_MEDIAN_MS),
                ),
                (
                    "suite_quick_seconds",
                    Json::Num(BASELINE_SUITE_QUICK_SECONDS),
                ),
            ]),
        ),
        (
            "current",
            obj(vec![
                (
                    "fig08_sim",
                    sim_section(&fig08, BASELINE_FIG08_FLITS_PER_SEC),
                ),
                (
                    "fig11_sim",
                    sim_section(&fig11, BASELINE_FIG11_FLITS_PER_SEC),
                ),
                (
                    // New probe in bench 7 (trace replay landed with it), so
                    // there is no pre-rework baseline to compare against.
                    "trace_replay",
                    obj(vec![
                        ("flits", Json::Num(trace.flits as f64)),
                        ("seconds", Json::Num(round3(trace.seconds))),
                        ("flits_per_sec", Json::Num(trace.flits_per_sec().round())),
                    ]),
                ),
                (
                    "sim_5000_cycles_midload",
                    obj(vec![
                        ("median_ms", Json::Num(round3(median_ms))),
                        ("samples", Json::Num(MEDIAN_SAMPLES as f64)),
                        (
                            "speedup_vs_baseline",
                            Json::Num(round3(BASELINE_SIM5000_MEDIAN_MS / median_ms)),
                        ),
                    ]),
                ),
                (
                    // New probe in bench 8 (landed with the obs layer):
                    // the no-op recorder must keep unobserved runs at
                    // pre-instrumentation speed, so the interesting
                    // figure is the enabled/noop ratio, not a baseline.
                    "obs_overhead",
                    obj(vec![
                        ("anneal_evals", Json::Num(OBS_OVERHEAD_EVALS as f64)),
                        ("noop_median_ms", Json::Num(round3(obs.noop_median_ms))),
                        ("memory_median_ms", Json::Num(round3(obs.memory_median_ms))),
                        (
                            "enabled_over_noop",
                            Json::Num(round3(obs.enabled_over_noop())),
                        ),
                    ]),
                ),
                (
                    "suite_quick",
                    obj(vec![
                        ("seconds", Json::Num(round3(suite_seconds))),
                        (
                            "speedup_vs_baseline",
                            Json::Num(round3(BASELINE_SUITE_QUICK_SECONDS / suite_seconds)),
                        ),
                    ]),
                ),
            ]),
        ),
    ]);
    let mut text = String::new();
    pretty(&doc, 0, &mut text);
    text.push('\n');
    Json::parse(&text).expect("emitted BENCH_8.json must parse");
    let path = bench_path();
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("# perf: wrote {}", path.display());
}

fn check() {
    let path = bench_path();
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let doc = Json::parse(&text).expect("BENCH_8.json must parse");
    let recorded = doc
        .require("current")
        .and_then(|c| c.require("suite_quick"))
        .and_then(|s| s.require("seconds"))
        .and_then(Json::as_f64)
        .expect("BENCH_8.json: current.suite_quick.seconds");
    let tolerance = std::env::var("PERF_CHECK_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.25);
    eprintln!("# perf --check: recorded suite --quick {recorded:.1}s, tolerance {tolerance}x");
    let measured = suite_quick_seconds();
    let limit = recorded * tolerance;
    assert!(
        measured <= limit,
        "suite --quick regressed: {measured:.1}s > {limit:.1}s \
         ({recorded:.1}s recorded x {tolerance} tolerance)"
    );
    eprintln!("# perf --check: suite --quick {measured:.1}s <= {limit:.1}s, ok");
}

fn main() {
    let mode = std::env::args().nth(1);
    match mode.as_deref() {
        None | Some("--record") => record(),
        Some("--check") => check(),
        Some(other) => {
            eprintln!("usage: perf [--record | --check]  (unknown argument {other:?})");
            std::process::exit(2);
        }
    }
}
