//! Thin wrapper: runs the `fig09_power_area` experiment spec (see
//! `netsmith_bench::figures::fig09_power_area`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig09_power_area::figure);
}
