//! Figure 9: NoI power (static + dynamic) and area (routers + wires)
//! relative to the mesh baseline, using the DSENT-style model fed with the
//! simulator's measured per-link activity at a moderate operating point
//! (the hand-picked scalar utilization of the original harness is gone —
//! every flit is charged the wire it actually crossed).

use netsmith::power::{area_report, power_report_from_activity, relative_to, PowerConfig};
use netsmith::prelude::*;
use netsmith_bench::{class_lineup, prepare};

fn main() {
    let layout = Layout::noi_4x5();
    let power_cfg = PowerConfig::default();
    let operating_load = 0.3; // flits/node/cycle, below saturation for all topologies

    // Mesh baseline (small class clock).
    let mesh = prepare(&expert::mesh(&layout), RoutingScheme::Ndbt);
    let mesh_cfg = mesh.sim_config();
    let mesh_report = mesh.measure(TrafficPattern::UniformRandom, &mesh_cfg, operating_load);
    let mesh_power =
        power_report_from_activity(&mesh.topology, &power_cfg, &mesh_cfg, &mesh_report.activity);
    let mesh_area = area_report(&mesh.topology, &power_cfg);

    println!("topology,class,avg_link_utilization,static_power_rel_mesh,dynamic_power_rel_mesh,total_power_rel_mesh,router_area_rel_mesh,wire_area_rel_mesh,total_area_rel_mesh");
    for class in LinkClass::STANDARD {
        for (topo, scheme) in class_lineup(&layout, class) {
            let network = prepare(&topo, scheme);
            let cfg = network.sim_config();
            let report = network.measure(TrafficPattern::UniformRandom, &cfg, operating_load);
            let power =
                power_report_from_activity(&network.topology, &power_cfg, &cfg, &report.activity);
            let area = area_report(&topo, &power_cfg);
            println!(
                "{},{},{:.4},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
                topo.name(),
                class.name(),
                report.activity.avg_link_utilization(),
                relative_to(power.static_mw, mesh_power.static_mw),
                relative_to(power.dynamic_mw, mesh_power.dynamic_mw),
                relative_to(power.total_mw(), mesh_power.total_mw()),
                relative_to(area.router_mm2, mesh_area.router_mm2),
                relative_to(area.wire_mm2, mesh_area.wire_mm2),
                relative_to(area.total_mm2(), mesh_area.total_mm2()),
            );
        }
    }
    eprintln!("# leakage should stay flat across topologies; dynamic power and wire area grow with link length;");
    eprintln!("# large-class topologies trade lower clocks (lower dynamic power) for more wire.");
}
