//! Thin wrapper: runs the `ablation_symmetry` experiment spec (see
//! `netsmith_bench::figures::ablation_symmetry`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::ablation_symmetry::figure);
}
