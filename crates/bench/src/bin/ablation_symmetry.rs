//! Ablation (paper Section III-B and III-A(c)): asymmetric vs symmetric
//! links.  The paper reports that forcing symmetric links loses under 3%
//! average hops and nothing in bandwidth, while asymmetric links buy ~3%
//! throughput; this binary regenerates both variants for every class and
//! prints the comparison.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_bench::{evals_budget, workers, HARNESS_SEED};
use netsmith_topo::cuts;

fn main() {
    let layout = Layout::noi_4x5();
    println!("class,objective,links,avg_hops_asymmetric,avg_hops_symmetric,hops_penalty_pct,cut_asymmetric,cut_symmetric");
    for class in LinkClass::STANDARD {
        for objective in [Objective::LatOp, Objective::SCOp] {
            let base = NetSmith::new(layout.clone(), class)
                .objective(objective.clone())
                .evaluations(evals_budget())
                .workers(workers())
                .seed(HARNESS_SEED ^ 0xA5)
                .discover();
            let sym = NetSmith::new(layout.clone(), class)
                .objective(objective.clone())
                .symmetric_links(true)
                .evaluations(evals_budget())
                .workers(workers())
                .seed(HARNESS_SEED ^ 0xA5)
                .discover();
            let cut_a = cuts::sparsest_cut(&base.topology).normalized_bandwidth;
            let cut_s = cuts::sparsest_cut(&sym.topology).normalized_bandwidth;
            println!(
                "{},{},{},{:.3},{:.3},{:.2},{:.4},{:.4}",
                class.name(),
                objective.short_name(),
                base.topology.num_links(),
                base.objective.average_hops,
                sym.objective.average_hops,
                (sym.objective.average_hops / base.objective.average_hops - 1.0) * 100.0,
                cut_a,
                cut_s
            );
        }
    }
    eprintln!("# the symmetric-link penalty should stay in the low single digits (paper: < 3%).");
}
