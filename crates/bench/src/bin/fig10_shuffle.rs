//! Thin wrapper: runs the `fig10_shuffle` experiment spec (see
//! `netsmith_bench::figures::fig10_shuffle`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig10_shuffle::figure);
}
