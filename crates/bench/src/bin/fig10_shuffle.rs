//! Figure 10: latency/throughput under the gem5 "shuffle" permutation for
//! the 20-router NoIs, including the shuffle-optimized NetSmith topology
//! ("NS ShufOpt") generated with the pattern-weighted objective.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_bench::{
    class_lineup, discover, evals_budget, load_grid, prepare, workers, HARNESS_SEED,
};

fn main() {
    let layout = Layout::noi_4x5();
    let loads = load_grid();
    let shuffle_demand = TrafficPattern::Shuffle.demand_matrix(&layout);

    println!("class,topology,routing,offered,accepted_pkts_per_ns,latency_ns,saturated");
    for class in LinkClass::STANDARD {
        let mut lineup = class_lineup(&layout, class);
        // Shuffle-optimized NetSmith topology for this class.
        let shufopt = NetSmith::new(layout.clone(), class)
            .objective(Objective::PatternLatOp(shuffle_demand.clone()))
            .evaluations(evals_budget())
            .workers(workers())
            .seed(HARNESS_SEED ^ 0x5875)
            .discover();
        lineup.push((shufopt.topology, RoutingScheme::Mclb));

        for (topo, scheme) in lineup {
            let network = prepare(&topo, scheme);
            let config = network.sim_config();
            let curve = network.sweep(TrafficPattern::Shuffle, &config, &loads);
            for p in &curve.points {
                println!(
                    "{},{},{},{:.3},{:.4},{:.2},{}",
                    class.name(),
                    topo.name(),
                    scheme.label(),
                    p.offered,
                    p.accepted_packets_per_ns,
                    p.latency_ns,
                    p.saturated
                );
            }
            eprintln!(
                "# {}/{}: shuffle saturation {:.3} packets/node/ns",
                class.name(),
                network.label(),
                curve.saturation_packets_per_ns(&config)
            );
        }
    }
    let _ = discover; // the helper is re-exported for consistency with other figures
}
