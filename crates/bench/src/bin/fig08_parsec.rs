//! Thin wrapper: runs the `fig08_parsec` experiment spec (see
//! `netsmith_bench::figures::fig08_parsec`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig08_parsec::figure);
}
