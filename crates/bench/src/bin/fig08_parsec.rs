//! Figure 8: PARSEC execution-time speedup (bars) and packet-latency
//! reduction (markers) relative to the mesh baseline, for the small, medium
//! and large topology classes.  Benchmarks are ordered by L2 MPKI exactly
//! like the paper's X axis.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_bench::{discover, prepare};

fn main() {
    let layout = Layout::noi_4x5();
    let config = FullSystemConfig::default();
    let mesh = prepare(&expert::mesh(&layout), RoutingScheme::Ndbt);

    // One expert and two NetSmith topologies per class, as in the figure.
    let mut networks = Vec::new();
    for class in LinkClass::STANDARD {
        for topo in expert::baselines_for_class(&layout, class) {
            networks.push((class, prepare(&topo, RoutingScheme::Ndbt)));
        }
        for objective in [Objective::LatOp, Objective::SCOp] {
            let ns = discover(&layout, class, objective);
            networks.push((class, prepare(&ns.topology, RoutingScheme::Mclb)));
        }
    }

    println!("benchmark,class,topology,speedup_vs_mesh,packet_latency_reduction_vs_mesh");
    for profile in parsec_suite() {
        let base = evaluate_topology(
            &profile,
            &mesh.topology,
            &mesh.routing,
            Some(&mesh.vcs),
            &config,
        );
        for (class, network) in &networks {
            let r = evaluate_topology(
                &profile,
                &network.topology,
                &network.routing,
                Some(&network.vcs),
                &config,
            );
            println!(
                "{},{},{},{:.4},{:.4}",
                profile.name,
                class.name(),
                network.topology.name(),
                r.speedup_over(&base),
                r.latency_reduction_over(&base)
            );
        }
    }
    eprintln!("# geometric-mean speedups by topology:");
    for (class, network) in &networks {
        let mut product = 1.0f64;
        let mut count = 0;
        for profile in parsec_suite() {
            let base = evaluate_topology(
                &profile,
                &mesh.topology,
                &mesh.routing,
                Some(&mesh.vcs),
                &config,
            );
            let r = evaluate_topology(
                &profile,
                &network.topology,
                &network.routing,
                Some(&network.vcs),
                &config,
            );
            product *= r.speedup_over(&base);
            count += 1;
        }
        eprintln!(
            "#   {} ({}): {:.3}x",
            network.topology.name(),
            class.name(),
            product.powf(1.0 / count as f64)
        );
    }
}
