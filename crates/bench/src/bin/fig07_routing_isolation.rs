//! Thin wrapper: runs the `fig07_routing_isolation` experiment spec (see
//! `netsmith_bench::figures::fig07_routing_isolation`) with the uniform
//! `--quick` / `--json` / `--seed` CLI.

fn main() {
    netsmith_exp::cli::run_figure(netsmith_bench::figures::fig07_routing_isolation::figure);
}
