//! Figure 7: isolating NetSmith's topology benefit from its routing
//! benefit.  Every *large-class* topology is simulated under both NDBT and
//! MCLB routing; the analytical cut-based and occupancy-based bounds are
//! printed alongside the measured saturation throughput.

use netsmith::prelude::*;
use netsmith_bench::{class_lineup, load_grid, prepare};
use netsmith_topo::bounds::ThroughputBounds;

fn main() {
    let layout = Layout::noi_4x5();
    let loads = load_grid();
    println!("topology,routing,measured_saturation_flits,expected_saturation_flits,cut_bound_flits,occupancy_bound_flits");
    for (topo, _) in class_lineup(&layout, LinkClass::Large) {
        let bounds = ThroughputBounds::compute(&topo);
        for scheme in [RoutingScheme::Ndbt, RoutingScheme::Mclb] {
            let network = prepare(&topo, scheme);
            let config = network.sim_config();
            let curve = network.sweep(TrafficPattern::UniformRandom, &config, &loads);
            let expected = network
                .routing
                .uniform_channel_loads()
                .saturation_injection_rate()
                * config.average_flits();
            println!(
                "{},{},{:.4},{:.4},{:.4},{:.4}",
                topo.name(),
                scheme.label(),
                curve.saturation_flits_per_node_cycle(),
                expected.min(bounds.limiting()),
                bounds.cut_bound,
                bounds.occupancy_bound
            );
        }
    }
    eprintln!(
        "# MCLB should raise every topology's measured saturation towards its analytical bound;"
    );
    eprintln!(
        "# NetSmith topologies should remain ahead even when the expert designs also use MCLB."
    );
}
