//! Shared harness code for the per-figure experiment binaries.
//!
//! Every binary reads two environment variables:
//!
//! * `NETSMITH_EVALS` — per-worker annealing budget for topology discovery
//!   (default 30 000; the EXPERIMENTS.md numbers were produced with the
//!   default unless noted).
//! * `NETSMITH_WORKERS` — parallel annealing workers (default 4).
//!
//! and prints CSV to stdout plus human-readable notes to stderr, so results
//! can be captured with a plain shell redirect.

use netsmith::gen::Objective;
use netsmith::prelude::*;
use netsmith_topo::Topology;

/// Per-worker evaluation budget, from `NETSMITH_EVALS`.
pub fn evals_budget() -> u64 {
    std::env::var("NETSMITH_EVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000)
}

/// Worker count, from `NETSMITH_WORKERS`.
pub fn workers() -> usize {
    std::env::var("NETSMITH_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Deterministic seed shared by the harness binaries so repeated runs
/// reproduce the same topologies.
pub const HARNESS_SEED: u64 = 20_240_402;

/// Discover a NetSmith topology for a layout/class/objective with the
/// harness budget.
pub fn discover(layout: &Layout, class: LinkClass, objective: Objective) -> DiscoveryResult {
    NetSmith::new(layout.clone(), class)
        .objective(objective)
        .evaluations(evals_budget())
        .workers(workers())
        .seed(HARNESS_SEED ^ class.clock_ghz().to_bits() ^ 0xABCD)
        .discover()
}

/// The standard per-class line-up the paper compares (expert baselines with
/// their link class, plus NS-LatOp and NS-SCOp for the same class).
pub fn class_lineup(layout: &Layout, class: LinkClass) -> Vec<(Topology, RoutingScheme)> {
    let mut lineup: Vec<(Topology, RoutingScheme)> = expert::baselines_for_class(layout, class)
        .into_iter()
        .map(|t| (t, RoutingScheme::Ndbt))
        .collect();
    let latop = discover(layout, class, Objective::LatOp);
    let scop = discover(layout, class, Objective::SCOp);
    lineup.push((latop.topology, RoutingScheme::Mclb));
    lineup.push((scop.topology, RoutingScheme::Mclb));
    lineup
}

/// Prepare a topology for simulation, panicking with a useful message when
/// it cannot be routed within the paper's 6-VC budget.
pub fn prepare(topo: &Topology, scheme: RoutingScheme) -> EvaluatedNetwork {
    EvaluatedNetwork::prepare(topo, scheme, 6, HARNESS_SEED)
        .unwrap_or_else(|| panic!("{} cannot be routed within 6 VCs", topo.name()))
}

/// The load grid used by the synthetic-traffic figures (flits/node/cycle).
pub fn load_grid() -> Vec<f64> {
    netsmith_sim::sweep::default_load_grid()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        assert!(evals_budget() > 0);
        assert!(workers() >= 1);
    }

    #[test]
    fn class_lineup_contains_ns_entries() {
        // Use a tiny budget for the test.
        std::env::set_var("NETSMITH_EVALS", "400");
        std::env::set_var("NETSMITH_WORKERS", "1");
        let layout = Layout::noi_4x5();
        let lineup = class_lineup(&layout, LinkClass::Small);
        assert!(lineup.iter().any(|(t, _)| t.name().starts_with("NS-LatOp")));
        assert!(lineup.iter().any(|(t, _)| t.name().starts_with("NS-SCOp")));
        assert!(lineup.len() >= 4);
        std::env::remove_var("NETSMITH_EVALS");
        std::env::remove_var("NETSMITH_WORKERS");
    }
}
