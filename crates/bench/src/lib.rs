//! Shared harness code for the per-figure experiment binaries.
//!
//! Every figure is a [`netsmith_exp`] experiment: a declarative spec
//! (candidates × workloads × assertions) plus the figure's measurement
//! code, registered in [`figures::ALL`].  The thin binaries in `src/bin/`
//! hand their figure to [`netsmith_exp::cli::run_figure`], so each one
//! accepts the same `--quick` / `--json` / `--seed` flags; the `suite`
//! binary runs every registered figure against one shared candidate cache.
//!
//! Budget configuration flows through [`RunProfile`] (construct it directly
//! in tests); the historical `NETSMITH_EVALS` / `NETSMITH_WORKERS`
//! environment variables remain as fallbacks for scripted runs.

pub mod figures;

pub use netsmith_exp::RunProfile;

/// Deterministic seed shared by the harness binaries so repeated runs
/// reproduce the same topologies.
pub const HARNESS_SEED: u64 = netsmith_exp::DEFAULT_SEED;

/// The load grid used by the synthetic-traffic figures (flits/node/cycle).
pub fn load_grid() -> Vec<f64> {
    netsmith_sim::sweep::default_load_grid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsmith_exp::{ObjectiveSpec, Runner, SuiteCache};

    #[test]
    fn run_profile_routes_budget_without_touching_the_environment() {
        // The budget travels through the struct, not process-global state:
        // no `std::env::set_var` anywhere in this test.
        let profile = RunProfile {
            evals: 400,
            workers: 1,
            ..RunProfile::default()
        };
        let cache = SuiteCache::new();
        let runner = Runner::new(profile, &cache);
        let candidate = runner.resolve_synth(
            netsmith_exp::LayoutSpec::Noi4x5,
            netsmith::topo::LinkClass::Medium,
            &ObjectiveSpec::LatOp,
            false,
        );
        assert_eq!(candidate.topology.name(), "NS-LatOp-medium");
        let discovery = candidate.discovery.as_ref().unwrap();
        // One worker, 400-evaluation budget — exactly as routed.
        assert!(discovery.evaluations >= 400);
        assert!(discovery.evaluations < 4_000);
    }

    #[test]
    fn every_figure_is_registered_once() {
        let mut names: Vec<&str> = figures::ALL.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 16, "all sixteen figure binaries registered");
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "figure names must be unique");
    }
}
